//! Unary inclusion dependency discovery.
//!
//! [`spider`] is the paper's IND algorithm of choice (§2.1); the holistic
//! pipelines run it while the input is being read, sharing I/O and the
//! sorted dictionaries produced for PLI construction. [`inverted_index_inds`]
//! is the De Marchi baseline and [`naive_inds`] the quadratic testing oracle.

mod inverted;
mod naive;
mod nary;
mod spider;
mod types;

pub use inverted::inverted_index_inds;
pub use naive::naive_inds;
pub use nary::{nary_ind_holds, nary_inds, NaryInd};
pub use spider::{spider, spider_with_stats, SpiderStats};
pub use types::{format_inds, Ind};
