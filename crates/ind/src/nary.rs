//! n-ary inclusion dependency discovery (De Marchi et al.'s MIND scheme).
//!
//! The paper restricts itself to unary INDs because only those feed the
//! holistic UCC/FD pruning, noting that "without any loss of generality,
//! we could discover n-ary INDs as well" (§2.1). This module supplies that
//! generalization: an n-ary IND `(X₁..Xₙ) ⊆ (Y₁..Yₙ)` holds when every
//! row's tuple of dependent values appears as some row's tuple of
//! referenced values.
//!
//! Discovery is level-wise: valid unary INDs are the base level; level
//! n+1 candidates combine a level-n IND with a unary IND such that every
//! *projection* (dropping one position) is a known valid n-ary IND — the
//! apriori property of INDs — and survivors are validated by hashing the
//! projected tuples.
//!
//! Conventions: positions use pairwise-distinct columns on each side, the
//! dependent and referenced lists are disjoint as mappings (`Xᵢ ≠ Yᵢ`),
//! and sides are kept in *sorted-by-dependent* canonical order so each
//! semantic IND is reported once. NULL handling follows the unary
//! convention: a dependent tuple containing a NULL is skipped.

use std::collections::HashSet;

use muds_table::Table;

use crate::spider::spider;
use crate::types::Ind;

/// An n-ary inclusion dependency between two equal-length column lists.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NaryInd {
    /// Dependent columns, sorted ascending (canonical form).
    pub dependent: Vec<usize>,
    /// Referenced columns, positionally aligned with `dependent`.
    pub referenced: Vec<usize>,
}

impl NaryInd {
    /// Arity of the IND.
    pub fn arity(&self) -> usize {
        self.dependent.len()
    }
}

impl std::fmt::Display for NaryInd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let dep: Vec<String> = self.dependent.iter().map(|c| c.to_string()).collect();
        let rf: Vec<String> = self.referenced.iter().map(|c| c.to_string()).collect();
        write!(f, "({}) ⊆ ({})", dep.join(","), rf.join(","))
    }
}

/// Validates one n-ary IND by hashing projected tuples.
pub fn nary_ind_holds(table: &Table, dependent: &[usize], referenced: &[usize]) -> bool {
    assert_eq!(dependent.len(), referenced.len());
    let referenced_tuples: HashSet<Vec<&str>> = (0..table.num_rows())
        .filter_map(|r| {
            referenced.iter().map(|&c| table.column(c).value(r)).collect::<Option<Vec<&str>>>()
        })
        .collect();
    (0..table.num_rows()).all(|r| {
        match dependent.iter().map(|&c| table.column(c).value(r)).collect::<Option<Vec<&str>>>() {
            None => true, // tuple contains NULL: skipped on the dependent side
            Some(tuple) => referenced_tuples.contains(&tuple),
        }
    })
}

/// Discovers all n-ary INDs up to `max_arity` (inclusive). Arity-1 results
/// come from SPIDER; higher arities are built level-wise.
pub fn nary_inds(table: &Table, max_arity: usize) -> Vec<NaryInd> {
    let unary: Vec<Ind> = spider(table);
    let mut results: Vec<NaryInd> = unary
        .iter()
        .map(|i| NaryInd { dependent: vec![i.dependent], referenced: vec![i.referenced] })
        .collect();
    if max_arity < 2 {
        return results;
    }

    let mut level: HashSet<NaryInd> = results.iter().cloned().collect();
    let mut current: Vec<NaryInd> = results.clone();
    for _arity in 2..=max_arity {
        let mut next: Vec<NaryInd> = Vec::new();
        let mut seen: HashSet<NaryInd> = HashSet::new();
        for base in &current {
            for u in &unary {
                // Canonical order: append only larger dependent columns.
                // lint:allow(panic): every NaryInd starts from a unary IND,
                // so the dependent side always has at least one column.
                let last_dep = *base.dependent.last().expect("non-empty");
                if u.dependent <= last_dep {
                    continue;
                }
                // Distinct columns within each side.
                if base.dependent.contains(&u.dependent) || base.referenced.contains(&u.referenced)
                {
                    continue;
                }
                let mut dep = base.dependent.clone();
                dep.push(u.dependent);
                let mut rf = base.referenced.clone();
                rf.push(u.referenced);
                let candidate = NaryInd { dependent: dep, referenced: rf };
                if !seen.insert(candidate.clone()) {
                    continue;
                }
                // Apriori prune: every projection must be valid.
                let prunable = (0..candidate.arity()).any(|drop| {
                    let d: Vec<usize> = candidate
                        .dependent
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != drop)
                        .map(|(_, &c)| c)
                        .collect();
                    let r: Vec<usize> = candidate
                        .referenced
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != drop)
                        .map(|(_, &c)| c)
                        .collect();
                    !level.contains(&NaryInd { dependent: d, referenced: r })
                });
                if prunable {
                    continue;
                }
                if nary_ind_holds(table, &candidate.dependent, &candidate.referenced) {
                    next.push(candidate);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        level = next.iter().cloned().collect();
        results.extend(next.iter().cloned());
        current = next;
    }
    results.sort();
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nary(dep: &[usize], rf: &[usize]) -> NaryInd {
        NaryInd { dependent: dep.to_vec(), referenced: rf.to_vec() }
    }

    /// A table where (A,B) ⊆ (C,D) holds as a binary IND.
    fn binary_table() -> Table {
        Table::from_rows(
            "t",
            &["A", "B", "C", "D"],
            &[vec!["1", "x", "1", "x"], vec!["2", "y", "2", "y"], vec!["1", "x", "3", "z"]],
        )
        .unwrap()
    }

    #[test]
    fn binary_ind_found() {
        let t = binary_table();
        let inds = nary_inds(&t, 2);
        assert!(inds.contains(&nary(&[0, 1], &[2, 3])), "expected (A,B) ⊆ (C,D), got {inds:?}");
    }

    #[test]
    fn tuple_semantics_not_columnwise() {
        // A ⊆ C and B ⊆ D hold columnwise, but the pair (2, x) never occurs
        // as a (C, D) tuple → (A,B) ⊄ (C,D).
        let t = Table::from_rows(
            "t",
            &["A", "B", "C", "D"],
            &[vec!["1", "x", "1", "y"], vec!["2", "y", "2", "x"]],
        )
        .unwrap();
        assert!(nary_ind_holds(&t, &[0], &[2]));
        assert!(nary_ind_holds(&t, &[1], &[3]));
        assert!(!nary_ind_holds(&t, &[0, 1], &[2, 3]));
        let inds = nary_inds(&t, 2);
        assert!(!inds.contains(&nary(&[0, 1], &[2, 3])));
    }

    #[test]
    fn arity_one_matches_spider() {
        let t = binary_table();
        let unary: Vec<NaryInd> = nary_inds(&t, 1);
        let expected: Vec<NaryInd> =
            spider(&t).iter().map(|i| nary(&[i.dependent], &[i.referenced])).collect();
        assert_eq!(unary, expected);
    }

    #[test]
    fn null_tuples_skipped_on_dependent_side() {
        let t = Table::from_rows(
            "t",
            &["A", "B", "C", "D"],
            &[vec!["1", "", "1", "x"], vec!["1", "x", "1", "x"]],
        )
        .unwrap();
        // The (1, NULL) tuple is skipped, so (A,B) ⊆ (C,D) holds.
        assert!(nary_ind_holds(&t, &[0, 1], &[2, 3]));
    }

    #[test]
    fn randomized_cross_check_against_bruteforce() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(2025);
        for case in 0..40 {
            let cols = rng.gen_range(2..=4);
            let rows = rng.gen_range(2..=12);
            let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let data: Vec<Vec<String>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.gen_range(0..3).to_string()).collect())
                .collect();
            let t = Table::from_rows("t", &name_refs, &data).unwrap();
            let got: HashSet<NaryInd> =
                nary_inds(&t, 2).into_iter().filter(|i| i.arity() == 2).collect();
            // Brute force all canonical binary candidates.
            let mut want: HashSet<NaryInd> = HashSet::new();
            for d1 in 0..cols {
                for d2 in d1 + 1..cols {
                    for r1 in 0..cols {
                        for r2 in 0..cols {
                            // Positionwise-distinct convention (Xᵢ ≠ Yᵢ),
                            // matching the unary level.
                            if r1 == r2 || r1 == d1 || r2 == d2 {
                                continue;
                            }
                            if nary_ind_holds(&t, &[d1, d2], &[r1, r2]) {
                                want.insert(nary(&[d1, d2], &[r1, r2]));
                            }
                        }
                    }
                }
            }
            assert_eq!(got, want, "case {case}");
        }
    }
}
