//! Quadratic ground-truth IND oracle for testing.

use std::collections::HashSet;

use muds_table::Table;

use crate::types::Ind;

/// Checks every ordered column pair with hash-set containment. O(n² · rows);
/// used as the reference implementation in tests and experiments.
pub fn naive_inds(table: &Table) -> Vec<Ind> {
    let n = table.num_columns();
    let value_sets: Vec<HashSet<&str>> = table
        .columns()
        .iter()
        .map(|c| c.sorted_distinct_values().iter().map(|s| s.as_str()).collect())
        .collect();
    let mut inds = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j && value_sets[i].is_subset(&value_sets[j]) {
                inds.push(Ind::new(i, j));
            }
        }
    }
    inds.sort();
    inds
}

#[cfg(test)]
mod tests {
    use super::*;
    use muds_table::Table;

    #[test]
    fn simple_inclusion() {
        let t = Table::from_rows("t", &["A", "B"], &[vec!["1", "1"], vec!["2", "1"]]).unwrap();
        // B = {1} ⊆ A = {1,2}.
        assert_eq!(naive_inds(&t), vec![Ind::new(1, 0)]);
    }

    #[test]
    fn empty_table_all_vacuous() {
        let rows: Vec<Vec<&str>> = vec![];
        let t = Table::from_rows("t", &["A", "B"], &rows).unwrap();
        assert_eq!(naive_inds(&t).len(), 2);
    }
}
