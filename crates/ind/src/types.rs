//! Unary inclusion dependency representation.

use std::fmt;

/// A unary inclusion dependency `dependent ⊆ referenced`: every non-null
/// value of the dependent column occurs in the referenced column.
///
/// Columns are schema positions of a single relation — the paper restricts
/// IND discovery to one relation because UCCs and FDs are single-relation
/// metadata (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ind {
    /// The contained column (X in `X ⊆ Y`).
    pub dependent: usize,
    /// The containing column (Y in `X ⊆ Y`).
    pub referenced: usize,
}

impl Ind {
    /// Creates `dependent ⊆ referenced`.
    pub fn new(dependent: usize, referenced: usize) -> Self {
        Ind { dependent, referenced }
    }
}

impl fmt::Display for Ind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ⊆ [{}]", self.dependent, self.referenced)
    }
}

/// Renders INDs with column names for human-readable output.
pub fn format_inds(inds: &[Ind], names: &[&str]) -> Vec<String> {
    inds.iter().map(|i| format!("{} ⊆ {}", names[i.dependent], names[i.referenced])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_display() {
        let a = Ind::new(0, 1);
        let b = Ind::new(0, 2);
        assert!(a < b);
        assert_eq!(a.to_string(), "[0] ⊆ [1]");
    }

    #[test]
    fn formatting_with_names() {
        let out = format_inds(&[Ind::new(0, 2)], &["id", "x", "ref"]);
        assert_eq!(out, vec!["id ⊆ ref"]);
    }
}
