//! SPIDER: unary IND discovery by synchronized merge of sorted value lists.
//!
//! Bauckmann et al.'s algorithm (§2.1 of the paper) runs in two phases:
//! a *sorting phase* producing a duplicate-free sorted value list per column
//! — which in this workspace falls out of dictionary encoding for free, the
//! I/O-sharing synergy §3 highlights — and a *comparison phase* that sweeps
//! all lists simultaneously in value order. At each step the group of
//! columns holding the current smallest value can only be included in one
//! another, so every group member's candidate set is intersected with the
//! group (Table 1 of the paper walks through an example).
//!
//! The implementation keeps SPIDER's early-discarding optimization: a column
//! whose candidates are exhausted and which no other column still references
//! is dropped from the merge.
//!
//! The sorting phase is where SPIDER parallelizes: it happens inside
//! `Column::from_values` (a parallel sort of each dictionary), so by the
//! time this module runs, only the inherently sequential synchronized merge
//! remains. NULL semantics are inherited from the dictionary too — NULLs
//! never appear in `sorted_distinct_values`, so they are skipped on the
//! dependent side; the inverted-index baseline reads the same lists, which
//! keeps the two IND algorithms agreeing on NULL-laden tables by
//! construction (pinned by `null_semantics_differential` in
//! `inverted.rs` and the `null_semantics` integration suite).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use muds_lattice::ColumnSet;
use muds_table::Table;

use crate::types::Ind;

/// Work counters for a SPIDER run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpiderStats {
    /// Distinct values pulled from the merged streams.
    pub values_processed: u64,
    /// Value groups formed (each triggers candidate intersections).
    pub groups_formed: u64,
    /// Columns discarded before their stream ended.
    pub columns_discarded: u64,
    /// Heap pops during the synchronized merge (one per column per shared
    /// value — the comparison phase's unit of work).
    pub merge_steps: u64,
    /// Per-column dictionary values read into the merge (initial loads plus
    /// cursor advances).
    pub values_read: u64,
}

impl SpiderStats {
    /// Publishes the counters into the ambient [`muds_obs::Metrics`]
    /// registry (no-op without one).
    fn flush(&self, inds_found: usize) {
        muds_obs::add("spider.values_processed", self.values_processed);
        muds_obs::add("spider.groups_formed", self.groups_formed);
        muds_obs::add("spider.columns_discarded", self.columns_discarded);
        muds_obs::add("spider.merge_steps", self.merge_steps);
        muds_obs::add("spider.values_read", self.values_read);
        muds_obs::add("spider.inds_found", inds_found as u64);
    }
}

/// Discovers all unary INDs between the columns of `table` using SPIDER.
///
/// NULL semantics: null (empty) values are skipped on the dependent side —
/// a column's dictionary contains only its non-null values — so an all-null
/// column is included in every other column.
pub fn spider(table: &Table) -> Vec<Ind> {
    spider_with_stats(table).0
}

/// [`spider`] with work counters.
pub fn spider_with_stats(table: &Table) -> (Vec<Ind>, SpiderStats) {
    let n = table.num_columns();
    let mut stats = SpiderStats::default();

    // refs[i]: columns that might still include column i (excluding i).
    let all = ColumnSet::full(n);
    let mut refs: Vec<ColumnSet> = (0..n).map(|i| all.without(i)).collect();
    // rev[j]: columns i that still consider j a candidate referencer.
    let mut rev: Vec<ColumnSet> = (0..n).map(|j| all.without(j)).collect();
    let mut active: Vec<bool> = vec![true; n];

    // Min-heap of (next value, column). Dictionaries are already sorted and
    // duplicate-free.
    let mut cursors: Vec<usize> = vec![0; n];
    let mut heap: BinaryHeap<Reverse<(&str, usize)>> = BinaryHeap::new();
    for (i, col) in table.columns().iter().enumerate() {
        if let Some(v) = col.sorted_distinct_values().first() {
            stats.values_read += 1;
            heap.push(Reverse((v.as_str(), i)));
        }
        // Columns with no non-null values never constrain anything; they
        // keep their full candidate set (vacuous inclusion).
    }

    let mut group_cols: Vec<usize> = Vec::new();
    while let Some(&Reverse((value, _))) = heap.peek() {
        // Collect the group of columns whose current value equals `value`.
        group_cols.clear();
        let current = value;
        while let Some(&Reverse((v, col))) = heap.peek() {
            if v != current {
                break;
            }
            heap.pop();
            stats.merge_steps += 1;
            group_cols.push(col);
        }
        stats.values_processed += 1;
        stats.groups_formed += 1;
        let group = ColumnSet::from_indices(group_cols.iter().copied());

        // Intersect candidates of every group member with the group.
        for &col in &group_cols {
            let before = refs[col];
            let after = before.intersection(&group).without(col);
            if after != before {
                for removed in before.difference(&after).iter() {
                    if removed != col {
                        rev[removed].remove(col);
                    }
                }
                refs[col] = after;
            }
        }

        // Advance and possibly discard group members.
        for &col in &group_cols {
            if !active[col] {
                continue;
            }
            // Early discard: col constrains nothing and nobody references it.
            if refs[col].is_empty() && rev[col].is_empty() {
                active[col] = false;
                stats.columns_discarded += 1;
                continue;
            }
            cursors[col] += 1;
            let dict = table.column(col).sorted_distinct_values();
            if let Some(v) = dict.get(cursors[col]) {
                stats.values_read += 1;
                heap.push(Reverse((v.as_str(), col)));
            } else {
                // Stream ended: col can no longer serve as a referencer for
                // columns that still have values — but that is enforced
                // naturally, since col stops appearing in groups.
            }
        }
    }

    let mut inds = Vec::new();
    for (i, r) in refs.iter().enumerate() {
        for j in r.iter() {
            inds.push(Ind::new(i, j));
        }
    }
    inds.sort();
    stats.flush(inds.len());
    (inds, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_inds;
    use muds_table::Table;

    #[test]
    fn paper_table1_example() {
        // Table 1 of the paper: A = {w,x,y,z} (from w,w,x,y,z rows),
        // B = {x,z}, C = {w,x,z}. Expected INDs: B ⊆ A, C ⊆ A, B ⊆ C.
        let t = Table::from_rows(
            "t1",
            &["A", "B", "C"],
            &[
                vec!["w", "z", "x"],
                vec!["w", "x", "x"],
                vec!["x", "z", "w"],
                vec!["y", "z", "z"],
                vec!["z", "z", "z"],
            ],
        )
        .unwrap();
        let inds = spider(&t);
        let want = vec![Ind::new(1, 0), Ind::new(1, 2), Ind::new(2, 0)];
        assert_eq!(inds, want);
    }

    #[test]
    fn identical_columns_include_each_other() {
        let t = Table::from_rows("t", &["A", "B"], &[vec!["1", "1"], vec!["2", "2"]]).unwrap();
        let inds = spider(&t);
        assert_eq!(inds, vec![Ind::new(0, 1), Ind::new(1, 0)]);
    }

    #[test]
    fn no_inclusions() {
        let t = Table::from_rows("t", &["A", "B"], &[vec!["1", "3"], vec!["2", "4"]]).unwrap();
        assert!(spider(&t).is_empty());
    }

    #[test]
    fn all_null_column_is_included_everywhere() {
        let t = Table::from_rows("t", &["A", "B", "C"], &[vec!["1", "", "9"], vec!["2", "", "8"]])
            .unwrap();
        let inds = spider(&t);
        assert!(inds.contains(&Ind::new(1, 0)));
        assert!(inds.contains(&Ind::new(1, 2)));
        // Nothing depends on the all-null column.
        assert!(!inds.iter().any(|i| i.referenced == 1));
    }

    #[test]
    fn nulls_skipped_on_dependent_side() {
        // B's non-null values {1} ⊆ A = {1,2}; A ⊄ B.
        let t = Table::from_rows("t", &["A", "B"], &[vec!["1", "1"], vec!["2", ""]]).unwrap();
        assert_eq!(spider(&t), vec![Ind::new(1, 0)]);
    }

    #[test]
    fn proper_subset_chain() {
        // C ⊆ B ⊆ A with distinct sizes.
        let t = Table::from_rows(
            "t",
            &["A", "B", "C"],
            &[vec!["1", "1", "1"], vec!["2", "2", "1"], vec!["3", "1", "1"]],
        )
        .unwrap();
        let inds = spider(&t);
        assert!(inds.contains(&Ind::new(2, 1)));
        assert!(inds.contains(&Ind::new(2, 0)));
        assert!(inds.contains(&Ind::new(1, 0)));
        assert!(!inds.contains(&Ind::new(0, 1)));
    }

    #[test]
    fn stats_count_distinct_values() {
        let t =
            Table::from_rows("t", &["A", "B"], &[vec!["a", "b"], vec!["b", "c"], vec!["c", "a"]])
                .unwrap();
        let (_, stats) = spider_with_stats(&t);
        // Values a, b, c shared; 3 groups.
        assert_eq!(stats.groups_formed, 3);
        // Both columns hold all three values: six heap pops, six reads.
        assert_eq!(stats.merge_steps, 6);
        assert_eq!(stats.values_read, 6);
    }

    #[test]
    fn stats_flush_into_ambient_registry() {
        let metrics = muds_obs::Metrics::new();
        let _guard = metrics.install();
        let t = Table::from_rows("t", &["A", "B"], &[vec!["1", "1"], vec!["2", "2"]]).unwrap();
        let (inds, stats) = spider_with_stats(&t);
        let snap = metrics.drain_snapshot();
        assert_eq!(snap.counter("spider.merge_steps"), stats.merge_steps);
        assert_eq!(snap.counter("spider.values_read"), stats.values_read);
        assert_eq!(snap.counter("spider.inds_found"), inds.len() as u64);
    }

    #[test]
    fn single_column_table_has_no_inds() {
        let t = Table::from_rows("t", &["A"], &[vec!["1"]]).unwrap();
        assert!(spider(&t).is_empty());
    }

    #[test]
    fn randomized_cross_check_with_naive() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(77);
        for case in 0..150 {
            let cols = rng.gen_range(1..=6);
            let rows = rng.gen_range(0..=25);
            let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let data: Vec<Vec<String>> = (0..rows)
                .map(|_| {
                    (0..cols)
                        .map(|_| {
                            let v = rng.gen_range(0..6);
                            if v == 0 {
                                String::new()
                            } else {
                                v.to_string()
                            }
                        })
                        .collect()
                })
                .collect();
            let t = Table::from_rows("t", &name_refs, &data).unwrap();
            assert_eq!(spider(&t), naive_inds(&t), "case {case}");
        }
    }
}
