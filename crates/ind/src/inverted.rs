//! De Marchi et al.'s inverted-index IND discovery — the pre-SPIDER
//! baseline (§7 of the paper).
//!
//! Builds an inverted index from each distinct value to the set of columns
//! containing it, then intersects every column's candidate set with the
//! column set of each of its values. Asymptotically similar to SPIDER but
//! materializes the full index (no early discarding, higher memory).
//!
//! NULL semantics deliberately match SPIDER's: the index is built from
//! `Column::sorted_distinct_values`, which excludes NULLs, so NULL rows are
//! skipped on the dependent side and an all-NULL column is vacuously
//! included in every other column. Because both algorithms consume the very
//! same per-column lists, they cannot disagree on tables with NULLs or
//! empty strings — `null_semantics_differential` below exercises exactly
//! those shapes.

use std::collections::HashMap;

use muds_lattice::ColumnSet;
use muds_table::Table;

use crate::types::Ind;

/// Discovers all unary INDs via the inverted-index method.
pub fn inverted_index_inds(table: &Table) -> Vec<Ind> {
    let n = table.num_columns();
    let mut index: HashMap<&str, ColumnSet> = HashMap::new();
    for (i, col) in table.columns().iter().enumerate() {
        for v in col.sorted_distinct_values() {
            index.entry(v.as_str()).or_insert_with(ColumnSet::empty).insert(i);
        }
    }

    let all = ColumnSet::full(n);
    let mut refs: Vec<ColumnSet> = (0..n).map(|i| all.without(i)).collect();
    // lint:allow(hash-order): per-column refs accumulate via set
    // intersection, which is commutative and associative, so the final
    // refs are independent of value-group order; covered by the
    // tests/determinism.rs matrix.
    for group in index.values() {
        for col in group.iter() {
            refs[col] = refs[col].intersection(group).without(col);
        }
    }

    let mut inds = Vec::new();
    for (i, r) in refs.iter().enumerate() {
        for j in r.iter() {
            inds.push(Ind::new(i, j));
        }
    }
    inds.sort();
    inds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_inds;
    use crate::spider::spider;
    use muds_table::Table;

    #[test]
    fn agrees_with_spider_on_paper_example() {
        let t = Table::from_rows(
            "t1",
            &["A", "B", "C"],
            &[
                vec!["w", "z", "x"],
                vec!["w", "x", "x"],
                vec!["x", "z", "w"],
                vec!["y", "z", "z"],
                vec!["z", "z", "z"],
            ],
        )
        .unwrap();
        assert_eq!(inverted_index_inds(&t), spider(&t));
    }

    #[test]
    fn null_semantics_differential() {
        // Hand-built NULL shapes: all-NULL column, partially-NULL columns,
        // a column whose only non-null value is shared, and a no-row table.
        // SPIDER, the inverted index, and the naive checker must agree on
        // every one of them.
        let tables = vec![
            Table::from_rows(
                "nulls",
                &["full", "partial", "all_null", "shared"],
                &[vec!["1", "1", "", "1"], vec!["2", "", "", ""], vec!["3", "2", "", ""]],
            )
            .unwrap(),
            Table::from_rows("all-null-pair", &["x", "y"], &[vec!["", ""], vec!["", ""]]).unwrap(),
            Table::from_rows("empty", &["a", "b"], &Vec::<Vec<&str>>::new()).unwrap(),
        ];
        for t in &tables {
            let want = naive_inds(t);
            assert_eq!(spider(t), want, "spider on {}", t.name());
            assert_eq!(inverted_index_inds(t), want, "inverted on {}", t.name());
        }
        // The all-NULL column is included everywhere and references nothing.
        let t = &tables[0];
        let inds = inverted_index_inds(t);
        for j in [0usize, 1, 3] {
            assert!(inds.contains(&Ind::new(2, j)));
        }
        assert!(!inds.iter().any(|i| i.referenced == 2));
    }

    #[test]
    fn randomized_cross_check_with_naive() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(99);
        for case in 0..100 {
            let cols = rng.gen_range(1..=5);
            let rows = rng.gen_range(0..=20);
            let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let data: Vec<Vec<String>> = (0..rows)
                .map(|_| {
                    (0..cols)
                        .map(|_| {
                            let v = rng.gen_range(0..5);
                            if v == 0 {
                                String::new()
                            } else {
                                v.to_string()
                            }
                        })
                        .collect()
                })
                .collect();
            let t = Table::from_rows("t", &name_refs, &data).unwrap();
            assert_eq!(inverted_index_inds(&t), naive_inds(&t), "case {case}");
        }
    }
}
