//! Dep-Miner-style FD discovery from difference sets (Lopes et al.;
//! FastFDs by Wyss et al. is the same family).
//!
//! The row-based dual of the lattice algorithms: a candidate `X → a` is
//! violated exactly by a row pair that agrees on X and disagrees on `a`.
//! So the minimal left-hand sides for `a` are the **minimal hitting sets**
//! of the family `{ (R \ ag) \ {a} : ag agree set with a ∉ ag }` — every
//! valid lhs must "hit" (disagree somewhere with) every pair that
//! disagrees on `a`. Reuses the MMCS dualizer that also powers DUCC's hole
//! detection, which makes this a ~hundred-line algorithm.
//!
//! Not part of the paper's evaluation; included as the row-based
//! cross-validation family its related-work section discusses (§7), and as
//! an independent oracle in the test suite.

use muds_lattice::{minimal_hitting_sets, ColumnSet};
use muds_pli::agree_sets;
use muds_table::Table;

use crate::types::FdSet;

/// Discovers all minimal FDs via difference sets.
pub fn depminer_fds(table: &Table) -> FdSet {
    let n = table.num_columns();
    let r = ColumnSet::full(n);
    let agree = agree_sets(table);
    let mut fds = FdSet::new();

    for a in 0..n {
        let universe = r.without(a);
        if table.column(a).distinct_count() <= 1 {
            // Constant column: determined by the empty set, minimally.
            fds.insert(ColumnSet::empty(), a);
            continue;
        }
        // Difference sets for rhs a: complements (within R \ {a}) of the
        // agree sets of pairs that disagree on a. Pairs that disagree on
        // `a` while agreeing *nowhere* are not materialized as agree sets;
        // their constraint is the full universe, which also encodes that
        // `∅ → a` fails for any non-constant column — so it is always
        // added (it is implied by every other edge and therefore harmless
        // when redundant).
        let mut difference_sets: Vec<ColumnSet> =
            agree.iter().filter(|ag| !ag.contains(a)).map(|ag| universe.difference(ag)).collect();
        difference_sets.push(universe);
        // Pairs agreeing on everything but `a` make the rhs underivable —
        // their difference set is empty and no lhs exists (the hitting-set
        // computation returns nothing).
        for lhs in minimal_hitting_sets(&difference_sets, &universe) {
            fds.insert(lhs, a);
        }
    }
    fds
}

/// Discovers all minimal UCCs from maximal agree sets — the row-based dual
/// used by Gordian-style algorithms: a column combination is unique iff no
/// row pair agrees on all of it, i.e. iff it hits the complement of every
/// (maximal) agree set.
pub fn agree_set_uccs(table: &Table) -> Vec<ColumnSet> {
    let n = table.num_columns();
    let r = ColumnSet::full(n);
    let maximal = muds_pli::maximal_sets(&agree_sets(table));
    // Duplicate rows agree on everything: complement is empty → no UCC.
    let mut edges: Vec<ColumnSet> = maximal.iter().map(|ag| r.difference(ag)).collect();
    if table.num_rows() >= 2 {
        // With two or more rows the empty set is never unique; the full-set
        // edge encodes that (and covers pairs whose agree set is empty,
        // which are not materialized). Redundant otherwise, hence harmless.
        edges.push(r);
    }
    let mut uccs = minimal_hitting_sets(&edges, &r);
    // A table with < 2 rows has no agree sets at all: hitting sets of the
    // empty family = {∅}, which is correct (the empty set is unique).
    uccs.sort();
    uccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_minimal_fds;
    use muds_ucc::naive_minimal_uccs;

    #[test]
    fn matches_naive_on_known_table() {
        let t = Table::from_rows(
            "t",
            &["id", "grp", "val"],
            &[vec!["1", "a", "x"], vec!["2", "a", "x"], vec!["3", "b", "y"], vec!["4", "b", "y"]],
        )
        .unwrap();
        assert_eq!(depminer_fds(&t).to_sorted_vec(), naive_minimal_fds(&t).to_sorted_vec());
        assert_eq!(agree_set_uccs(&t), naive_minimal_uccs(&t));
    }

    #[test]
    fn constants_and_duplicate_free_degenerates() {
        let t = Table::from_rows("t", &["k", "v"], &[vec!["c", "1"], vec!["c", "2"]]).unwrap();
        let fds = depminer_fds(&t);
        assert!(fds.contains(&ColumnSet::empty(), 0), "constant k ← ∅");
        // Single-row table: every column constant, ∅ the only UCC.
        let t1 = Table::from_rows("t", &["a", "b"], &[vec!["1", "2"]]).unwrap();
        assert_eq!(depminer_fds(&t1).to_sorted_vec(), naive_minimal_fds(&t1).to_sorted_vec());
        assert_eq!(agree_set_uccs(&t1), vec![ColumnSet::empty()]);
    }

    #[test]
    fn duplicate_rows_leave_no_uccs() {
        let t = Table::from_rows("t", &["a"], &[vec!["1"], vec!["1"]]).unwrap();
        assert!(agree_set_uccs(&t).is_empty());
    }

    #[test]
    fn randomized_cross_check() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(303);
        for case in 0..120 {
            let cols = rng.gen_range(1..=6);
            let rows = rng.gen_range(1..=22);
            let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let data: Vec<Vec<String>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.gen_range(0..3).to_string()).collect())
                .collect();
            let t = Table::from_rows("t", &name_refs, &data).unwrap().dedup_rows();
            assert_eq!(
                depminer_fds(&t).to_sorted_vec(),
                naive_minimal_fds(&t).to_sorted_vec(),
                "FDs case {case}"
            );
            assert_eq!(agree_set_uccs(&t), naive_minimal_uccs(&t), "UCCs case {case}");
        }
    }
}
