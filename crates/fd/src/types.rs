//! Functional dependency representation.
//!
//! FDs are stored in the shape the paper's algorithms use: a map from a
//! left-hand side [`ColumnSet`] to the set of right-hand side columns it
//! (minimally) determines. MUDS' shadowed-FD phase performs look-ups of the
//! form `FDs[connector]` (Algorithm 2, line 5), which this representation
//! serves in O(1).

use std::collections::HashMap;
use std::fmt;

use muds_lattice::{ColumnSet, SetTrie};

/// A single functional dependency `lhs → rhs` with one right-hand-side
/// column (the canonical form: `X → YZ` is the two FDs `X → Y`, `X → Z`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fd {
    /// Determinant column set. May be empty (constant right-hand side).
    pub lhs: ColumnSet,
    /// Determined column.
    pub rhs: usize,
}

impl Fd {
    pub fn new(lhs: ColumnSet, rhs: usize) -> Self {
        Fd { lhs, rhs }
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} → {}", self.lhs.letters(), ColumnSet::single(self.rhs).letters())
    }
}

/// A collection of FDs keyed by left-hand side.
#[derive(Debug, Clone, Default)]
pub struct FdSet {
    by_lhs: HashMap<ColumnSet, ColumnSet>,
    count: usize,
}

impl FdSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `lhs → rhs`. Returns true if it was new.
    pub fn insert(&mut self, lhs: ColumnSet, rhs: usize) -> bool {
        let entry = self.by_lhs.entry(lhs).or_insert_with(ColumnSet::empty);
        if entry.contains(rhs) {
            false
        } else {
            entry.insert(rhs);
            self.count += 1;
            true
        }
    }

    /// Inserts `lhs → A` for every `A ∈ rhs`.
    pub fn insert_all(&mut self, lhs: ColumnSet, rhs: &ColumnSet) {
        for a in rhs.iter() {
            self.insert(lhs, a);
        }
    }

    /// The right-hand sides recorded for exactly this `lhs` (the
    /// `FDs[connector]` look-up of Algorithm 2).
    pub fn rhs_of(&self, lhs: &ColumnSet) -> ColumnSet {
        self.by_lhs.get(lhs).copied().unwrap_or_else(ColumnSet::empty)
    }

    /// Membership test for an exact `(lhs, rhs)` pair.
    pub fn contains(&self, lhs: &ColumnSet, rhs: usize) -> bool {
        self.by_lhs.get(lhs).is_some_and(|r| r.contains(rhs))
    }

    /// Number of `(lhs, rhs)` pairs.
    pub fn len(&self) -> usize {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterates `(lhs, rhs-set)` entries in arbitrary order.
    pub fn iter_entries(&self) -> impl Iterator<Item = (&ColumnSet, &ColumnSet)> {
        // lint:allow(hash-order): documented as arbitrary order; every
        // ordered consumer goes through to_sorted_vec or minimize, which
        // canonicalize (pinned by the tests/determinism.rs matrix).
        self.by_lhs.iter().filter(|(_, r)| !r.is_empty())
    }

    /// Flattens into sorted canonical `Fd`s.
    pub fn to_sorted_vec(&self) -> Vec<Fd> {
        // lint:allow(hash-order): the flattened vec is fully sorted on
        // the line below, erasing map iteration order from the result.
        let mut out: Vec<Fd> = self
            .by_lhs
            .iter()
            .flat_map(|(lhs, rhs)| rhs.iter().map(move |a| Fd::new(*lhs, a)))
            .collect();
        out.sort();
        out
    }

    /// Returns the subset of FDs whose left-hand sides are minimal per
    /// right-hand side: drops `X → A` whenever some recorded `Y → A` has
    /// `Y ⊂ X`. Pure set algebra (no data access); used as the final
    /// minimality guard of the holistic algorithms.
    pub fn minimize(&self) -> FdSet {
        // Group left-hand sides per rhs.
        let mut per_rhs: HashMap<usize, Vec<ColumnSet>> = HashMap::new();
        for (lhs, rhs) in self.iter_entries() {
            for a in rhs.iter() {
                per_rhs.entry(a).or_default().push(*lhs);
            }
        }
        let mut out = FdSet::new();
        // lint:allow(hash-order): rhs groups are independent — each group
        // writes only its own rhs bit into `out`, and within a group the
        // (cardinality, set) sort below fully canonicalizes trie growth;
        // covered by the tests/determinism.rs matrix.
        for (a, mut lhss) in per_rhs {
            // Insert in ascending cardinality; a trie catches dominated sets.
            // Ties break on the set itself: `by_lhs` iterates in hash order,
            // and a cardinality-only (stable) sort would leak that order into
            // the trie's growth — probe counters are part of the determinism
            // contract pinned by tests/determinism.rs.
            lhss.sort_unstable_by_key(|l| (l.cardinality(), *l));
            let mut trie = SetTrie::new();
            for lhs in lhss {
                if !trie.contains_subset_of(&lhs) {
                    trie.insert(lhs);
                    out.insert(lhs, a);
                }
            }
        }
        out
    }

    /// Renders all FDs with column letters, sorted — for test diffs and
    /// example output.
    pub fn display_sorted(&self) -> Vec<String> {
        self.to_sorted_vec().iter().map(|fd| fd.to_string()).collect()
    }
}

impl FromIterator<Fd> for FdSet {
    fn from_iter<I: IntoIterator<Item = Fd>>(iter: I) -> Self {
        let mut s = FdSet::new();
        for fd in iter {
            s.insert(fd.lhs, fd.rhs);
        }
        s
    }
}

impl PartialEq for FdSet {
    fn eq(&self, other: &Self) -> bool {
        self.to_sorted_vec() == other.to_sorted_vec()
    }
}

impl Eq for FdSet {}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(cols: &[usize]) -> ColumnSet {
        ColumnSet::from_indices(cols.iter().copied())
    }

    #[test]
    fn insert_and_lookup() {
        let mut s = FdSet::new();
        assert!(s.insert(cs(&[0, 1]), 2));
        assert!(!s.insert(cs(&[0, 1]), 2));
        assert!(s.insert(cs(&[0, 1]), 3));
        assert_eq!(s.len(), 2);
        assert_eq!(s.rhs_of(&cs(&[0, 1])), cs(&[2, 3]));
        assert!(s.contains(&cs(&[0, 1]), 2));
        assert!(!s.contains(&cs(&[0]), 2));
        assert_eq!(s.rhs_of(&cs(&[9])), ColumnSet::empty());
    }

    #[test]
    fn sorted_vec_is_canonical() {
        let mut s = FdSet::new();
        s.insert(cs(&[1]), 0);
        s.insert(cs(&[0]), 1);
        let v = s.to_sorted_vec();
        assert_eq!(v.len(), 2);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let mut a = FdSet::new();
        a.insert(cs(&[0]), 1);
        a.insert(cs(&[2]), 3);
        let mut b = FdSet::new();
        b.insert(cs(&[2]), 3);
        b.insert(cs(&[0]), 1);
        assert_eq!(a, b);
    }

    #[test]
    fn minimize_drops_dominated_lhs() {
        let mut s = FdSet::new();
        s.insert(cs(&[0]), 2);
        s.insert(cs(&[0, 1]), 2); // dominated by {0} → 2
        s.insert(cs(&[0, 1]), 3); // kept: different rhs
        let m = s.minimize();
        assert_eq!(m.len(), 2);
        assert!(m.contains(&cs(&[0]), 2));
        assert!(m.contains(&cs(&[0, 1]), 3));
        assert!(!m.contains(&cs(&[0, 1]), 2));
    }

    #[test]
    fn minimize_keeps_empty_lhs_and_drops_everything_else() {
        let mut s = FdSet::new();
        s.insert(ColumnSet::empty(), 1);
        s.insert(cs(&[0]), 1);
        let m = s.minimize();
        assert_eq!(m.len(), 1);
        assert!(m.contains(&ColumnSet::empty(), 1));
    }

    #[test]
    fn insert_all_expands_rhs() {
        let mut s = FdSet::new();
        s.insert_all(cs(&[0]), &cs(&[1, 2, 3]));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn display_renders_letters() {
        let fd = Fd::new(cs(&[0, 2]), 1);
        assert_eq!(fd.to_string(), "AC → B");
    }
}
