//! Approximate functional dependencies (TANE's g₃-error extension).
//!
//! The TANE paper the reproduction builds on defines *approximate* FDs:
//! `X → A` holds with error `g₃(X → A)` = the minimum fraction of rows that
//! must be removed for the FD to hold exactly. Profiling real (dirty) data
//! often needs `g₃ ≤ ε` rather than exact dependencies — the same
//! motivation behind CORDS' "soft FDs" the paper's related work discusses
//! (§7).
//!
//! `g₃` is computable directly from the stripped partition of X: within
//! each cluster, keep the most frequent A-value and count the rest as
//! violations. Discovery is level-wise over the lattice with the standard
//! monotonicity pruning: `g₃` never increases when the left-hand side
//! grows, so supersets of satisfying left-hand sides are pruned
//! (approximate FDs generalize exact ones, which are the ε = 0 case).

use std::collections::HashMap;

use muds_lattice::{apriori_gen, first_level, ColumnSet, SetTrie};
use muds_pli::PliCache;

use crate::types::FdSet;

/// Computes `g₃(lhs → rhs)`: the fraction of rows violating the FD.
///
/// Zero iff the FD holds exactly; at most `1 - 1/rows` otherwise.
pub fn g3_error(cache: &mut PliCache<'_>, lhs: &ColumnSet, rhs: usize) -> f64 {
    let table = cache.table();
    let rows = table.num_rows();
    if rows == 0 || lhs.contains(rhs) {
        return 0.0;
    }
    let rhs_codes: Vec<u32> = table.column(rhs).codes().to_vec();
    let pli = cache.get(lhs);
    let mut violations = 0usize;
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for cluster in pli.clusters() {
        counts.clear();
        for &row in cluster {
            *counts.entry(rhs_codes[row as usize]).or_insert(0) += 1;
        }
        let keep = counts.values().copied().max().unwrap_or(0);
        violations += cluster.len() - keep;
    }
    violations as f64 / rows as f64
}

/// Discovers all minimal approximate FDs with `g₃ ≤ epsilon`.
///
/// `epsilon = 0.0` reproduces exact minimal-FD discovery. Minimality is
/// with respect to the approximate relation: no proper subset of the
/// left-hand side satisfies the threshold.
pub fn approximate_fds(cache: &mut PliCache<'_>, epsilon: f64) -> FdSet {
    assert!((0.0..1.0).contains(&epsilon), "epsilon must be in [0, 1), got {epsilon}");
    let n = cache.table().num_columns();
    let r = ColumnSet::full(n);
    let mut fds = FdSet::new();
    // Per-rhs tries of discovered minimal lhs, for superset pruning.
    let mut found: HashMap<usize, SetTrie> = HashMap::new();

    // Level 0: the empty lhs (near-constant columns).
    for a in 0..n {
        if g3_error(cache, &ColumnSet::empty(), a) <= epsilon {
            fds.insert(ColumnSet::empty(), a);
            found.entry(a).or_default().insert(ColumnSet::empty());
        }
    }

    let mut level = first_level(&r);
    while !level.is_empty() {
        let mut survivors: Vec<ColumnSet> = Vec::with_capacity(level.len());
        for x in level {
            let mut useful = false;
            for a in r.difference(&x).iter() {
                // Superset of a known satisfying lhs: not minimal for a.
                if found.get(&a).is_some_and(|t| t.contains_subset_of(&x)) {
                    continue;
                }
                useful = true;
                if g3_error(cache, &x, a) <= epsilon {
                    fds.insert(x, a);
                    found.entry(a).or_default().insert(x);
                }
            }
            // A lhs already covered for every rhs cannot yield anything new
            // at higher levels either.
            if useful {
                survivors.push(x);
            }
        }
        level = apriori_gen(&survivors);
    }
    fds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_minimal_fds;
    use muds_table::Table;

    fn cs(cols: &[usize]) -> ColumnSet {
        ColumnSet::from_indices(cols.iter().copied())
    }

    #[test]
    fn g3_error_values() {
        // a: g g g h h ; b: 1 1 2 3 3 → within g-cluster keep 2 of 3.
        let t = Table::from_rows(
            "t",
            &["a", "b"],
            &[vec!["g", "1"], vec!["g", "1"], vec!["g", "2"], vec!["h", "3"], vec!["h", "3"]],
        )
        .unwrap();
        let mut cache = PliCache::new(&t);
        let err = g3_error(&mut cache, &cs(&[0]), 1);
        assert!((err - 0.2).abs() < 1e-9, "expected 1/5 violation, got {err}");
        // b → a holds exactly.
        assert_eq!(g3_error(&mut cache, &cs(&[1]), 0), 0.0);
        // Trivial FDs have zero error.
        assert_eq!(g3_error(&mut cache, &cs(&[1]), 1), 0.0);
    }

    #[test]
    fn epsilon_zero_matches_exact_discovery() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(21);
        for case in 0..60 {
            let cols = rng.gen_range(1..=5);
            let rows = rng.gen_range(1..=20);
            let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let data: Vec<Vec<String>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.gen_range(0..3).to_string()).collect())
                .collect();
            let t = Table::from_rows("t", &name_refs, &data).unwrap().dedup_rows();
            let mut cache = PliCache::new(&t);
            assert_eq!(
                approximate_fds(&mut cache, 0.0).to_sorted_vec(),
                naive_minimal_fds(&t).to_sorted_vec(),
                "case {case}"
            );
        }
    }

    #[test]
    fn dirty_fd_surfaces_at_matching_epsilon() {
        // a → b holds except for one dirty row out of ten.
        let mut rows: Vec<Vec<String>> = (0..10)
            .map(|i| vec![format!("g{}", i / 2), format!("v{}", i / 2), i.to_string()])
            .collect();
        rows[9][1] = "dirty".into();
        let t = Table::from_rows("t", &["a", "b", "id"], &rows).unwrap();
        let mut cache = PliCache::new(&t);
        let exact = approximate_fds(&mut cache, 0.0);
        assert!(!exact.contains(&cs(&[0]), 1), "dirty row breaks the exact FD");
        let approx = approximate_fds(&mut cache, 0.1);
        assert!(approx.contains(&cs(&[0]), 1), "ε = 0.1 tolerates one violation in ten");
    }

    #[test]
    fn larger_epsilon_gives_smaller_or_equal_lhs() {
        // Monotonicity: any lhs minimal at ε₁ is a superset of (or equal
        // to) some lhs minimal at ε₂ ≥ ε₁, per rhs.
        let t = Table::from_rows(
            "t",
            &["a", "b", "c"],
            &[
                vec!["1", "x", "p"],
                vec!["1", "x", "q"],
                vec!["2", "y", "p"],
                vec!["2", "z", "q"],
                vec!["3", "z", "p"],
            ],
        )
        .unwrap();
        let mut cache = PliCache::new(&t);
        let tight = approximate_fds(&mut cache, 0.0);
        let loose = approximate_fds(&mut cache, 0.4);
        for fd in tight.to_sorted_vec() {
            let covered = loose
                .to_sorted_vec()
                .iter()
                .any(|l| l.rhs == fd.rhs && l.lhs.is_subset_of(&fd.lhs));
            assert!(covered, "{fd} not dominated at larger epsilon");
        }
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn invalid_epsilon_rejected() {
        let t = Table::from_rows("t", &["a"], &[vec!["1"]]).unwrap();
        let mut cache = PliCache::new(&t);
        let _ = approximate_fds(&mut cache, 1.5);
    }
}
