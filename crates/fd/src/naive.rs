//! Exponential ground-truth FD oracle for testing.

use std::collections::HashMap;

use muds_lattice::ColumnSet;
use muds_table::Table;

use crate::types::FdSet;

/// Discovers all minimal FDs by enumerating every left-hand side (including
/// the empty set, which determines constant columns). Exponential; only for
/// narrow tables in tests and walkthrough examples.
pub fn naive_minimal_fds(table: &Table) -> FdSet {
    let n = table.num_columns();
    assert!(n <= 16, "naive FD discovery is exponential; {n} columns is too many");
    let mut out = FdSet::new();
    for rhs in 0..n {
        // Enumerate lhs candidates over the other columns by ascending
        // cardinality, keeping only minimal valid ones.
        let others: Vec<usize> = (0..n).filter(|&c| c != rhs).collect();
        let m = others.len();
        let mut masks: Vec<u32> = (0..(1u32 << m)).collect();
        masks.sort_by_key(|mask| mask.count_ones());
        let mut minimal: Vec<ColumnSet> = Vec::new();
        'mask: for mask in masks {
            let lhs = ColumnSet::from_indices(
                others.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, &c)| c),
            );
            for m in &minimal {
                if m.is_subset_of(&lhs) {
                    continue 'mask; // not minimal
                }
            }
            if holds(table, &lhs, rhs) {
                minimal.push(lhs);
                out.insert(lhs, rhs);
            }
        }
    }
    out
}

/// Direct FD check by grouping rows on the lhs projection.
pub fn holds(table: &Table, lhs: &ColumnSet, rhs: usize) -> bool {
    let cols: Vec<usize> = lhs.to_vec();
    let rhs_codes = table.column(rhs).codes();
    let mut groups: HashMap<Vec<u32>, u32> = HashMap::new();
    for (r, &rhs_code) in rhs_codes.iter().enumerate().take(table.num_rows()) {
        let key: Vec<u32> = cols.iter().map(|&c| table.column(c).codes()[r]).collect();
        match groups.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                if *e.get() != rhs_code {
                    return false;
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(rhs_code);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(cols: &[usize]) -> ColumnSet {
        ColumnSet::from_indices(cols.iter().copied())
    }

    #[test]
    fn copy_column_fd() {
        let t =
            Table::from_rows("t", &["a", "b"], &[vec!["1", "1"], vec!["2", "2"], vec!["3", "3"]])
                .unwrap();
        let fds = naive_minimal_fds(&t);
        assert!(fds.contains(&cs(&[0]), 1));
        assert!(fds.contains(&cs(&[1]), 0));
        assert_eq!(fds.len(), 2);
    }

    #[test]
    fn constant_column_determined_by_empty_set() {
        let t = Table::from_rows("t", &["a", "k"], &[vec!["1", "c"], vec!["2", "c"]]).unwrap();
        let fds = naive_minimal_fds(&t);
        assert!(fds.contains(&ColumnSet::empty(), 1));
        // And nothing else determines k minimally.
        assert!(!fds.contains(&cs(&[0]), 1));
    }

    #[test]
    fn composite_lhs() {
        // c = a XOR b over binary values: c determined by {a,b} only.
        let t = Table::from_rows(
            "t",
            &["a", "b", "c"],
            &[vec!["0", "0", "0"], vec!["0", "1", "1"], vec!["1", "0", "1"], vec!["1", "1", "0"]],
        )
        .unwrap();
        let fds = naive_minimal_fds(&t);
        assert!(fds.contains(&cs(&[0, 1]), 2));
        assert!(!fds.contains(&cs(&[0]), 2));
        assert!(!fds.contains(&cs(&[1]), 2));
        // Symmetry: any two of {a,b,c} determine the third.
        assert!(fds.contains(&cs(&[0, 2]), 1));
        assert!(fds.contains(&cs(&[1, 2]), 0));
    }

    #[test]
    fn empty_table_everything_constant() {
        let rows: Vec<Vec<&str>> = vec![];
        let t = Table::from_rows("t", &["a", "b"], &rows).unwrap();
        let fds = naive_minimal_fds(&t);
        assert!(fds.contains(&ColumnSet::empty(), 0));
        assert!(fds.contains(&ColumnSet::empty(), 1));
        assert_eq!(fds.len(), 2);
    }

    #[test]
    fn nulls_equal_for_fd_semantics() {
        // NULLs agree with each other: a → b holds.
        let t = Table::from_rows("t", &["a", "b"], &[vec!["", "x"], vec!["", "x"], vec!["1", "y"]])
            .unwrap();
        assert!(holds(&t, &cs(&[0]), 1));
    }

    #[test]
    fn holds_with_empty_lhs_checks_constancy() {
        let t = Table::from_rows("t", &["a"], &[vec!["1"], vec!["1"]]).unwrap();
        assert!(holds(&t, &ColumnSet::empty(), 0));
        let t2 = Table::from_rows("t", &["a"], &[vec!["1"], vec!["2"]]).unwrap();
        assert!(!holds(&t2, &ColumnSet::empty(), 0));
    }
}
