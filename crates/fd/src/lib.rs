//! Functional dependency discovery.
//!
//! [`tane`] and [`fun`] are the two classic level-wise algorithms the paper
//! evaluates (§2.3, §6.3); FUN doubles as **Holistic FUN** (§3.2) because it
//! reports the minimal UCCs it necessarily traverses. [`naive_minimal_fds`]
//! is the exponential testing oracle. The MUDS FD phases live in
//! `muds-core`, built on the same [`FdSet`] representation.

mod approximate;
mod depminer;
mod fun;
mod naive;
mod tane;
mod types;

pub use approximate::{approximate_fds, g3_error};
pub use depminer::{agree_set_uccs, depminer_fds};
pub use fun::{fun, FunResult, FunStats};
pub use naive::{holds, naive_minimal_fds};
pub use tane::{tane, TaneResult, TaneStats};
pub use types::{Fd, FdSet};
