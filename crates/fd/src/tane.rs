//! TANE: level-wise FD discovery with candidate-set pruning (Huhtala et
//! al.; §2.3 and §6.3 of the paper).
//!
//! TANE traverses the attribute lattice bottom-up. For every node X of
//! level ℓ it maintains the candidate right-hand-side set C⁺(X); FDs
//! `X \ {A} → A` are validated with partition refinement (Lemma 1), and
//! three pruning rules shrink the search space: minimality pruning through
//! C⁺, deletion of nodes with empty C⁺, and *key pruning* — superkeys are
//! not extended, since no superset of a key can be a minimal left-hand
//! side. This is the non-holistic FD baseline the paper compares MUDS
//! against in Table 3.

use std::collections::HashMap;

use muds_lattice::{apriori_gen, first_level, ColumnSet, SetTrie};
use muds_pli::PliCache;

use crate::types::FdSet;

/// Discovered minimal left-hand sides per right-hand column, for the subset
/// look-ups of the key-pruning rule.
#[derive(Default)]
struct RhsTries(HashMap<usize, SetTrie>);

impl RhsTries {
    fn record(&mut self, lhs: ColumnSet, rhs: usize) {
        self.0.entry(rhs).or_default().insert(lhs);
    }

    /// True iff some recorded lhs for `rhs` is a subset of `x`.
    fn dominated(&self, x: &ColumnSet, rhs: usize) -> bool {
        self.0.get(&rhs).is_some_and(|t| t.contains_subset_of(x))
    }
}

/// Work counters for a TANE run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaneStats {
    /// FD validity checks (partition refinement tests).
    pub fd_checks: u64,
    /// Lattice nodes processed across all levels.
    pub nodes_processed: u64,
    /// Deepest level reached.
    pub max_level: usize,
}

impl TaneStats {
    /// Publishes the counters into the ambient [`muds_obs::Metrics`]
    /// registry (no-op without one).
    fn flush(&self) {
        muds_obs::add("tane.fd_checks", self.fd_checks);
        muds_obs::add("tane.nodes_processed", self.nodes_processed);
        muds_obs::gauge_max("tane.max_level", self.max_level as i64);
    }
}

/// Result of a TANE run.
#[derive(Debug, Clone)]
pub struct TaneResult {
    /// All minimal functional dependencies.
    pub fds: FdSet,
    /// Minimal UCCs encountered through key pruning (TANE visits every
    /// minimal key as a lattice node; recording them is free — the same
    /// observation Holistic FUN exploits).
    pub minimal_uccs: Vec<ColumnSet>,
    /// Work counters.
    pub stats: TaneStats,
}

/// Runs TANE over the table behind `cache`, discovering all minimal FDs.
pub fn tane(cache: &mut PliCache<'_>) -> TaneResult {
    let n = cache.table().num_columns();
    let r = ColumnSet::full(n);
    let mut fds = FdSet::new();
    let mut tries = RhsTries::default();
    let mut minimal_uccs: Vec<ColumnSet> = Vec::new();
    let mut stats = TaneStats::default();

    // C⁺(∅) = R.
    let mut cplus_prev: HashMap<ColumnSet, ColumnSet> = HashMap::new();
    cplus_prev.insert(ColumnSet::empty(), r);

    // The empty set is itself a key for degenerate (≤1 row) tables.
    if cache.is_unique(&ColumnSet::empty()) {
        minimal_uccs.push(ColumnSet::empty());
        // Every column is (vacuously) constant: ∅ → A for all A.
        for a in 0..n {
            stats.fd_checks += 1;
            if cache.determines(&ColumnSet::empty(), a) {
                fds.insert(ColumnSet::empty(), a);
            }
        }
        stats.flush();
        return TaneResult { fds, minimal_uccs, stats };
    }

    let mut level = first_level(&r);
    let mut depth = 1usize;
    while !level.is_empty() {
        stats.max_level = depth;
        let mut cplus: HashMap<ColumnSet, ColumnSet> = HashMap::with_capacity(level.len());

        // COMPUTE_DEPENDENCIES. Each node's candidate rhs set is fixed on
        // entry (`X ∩ C⁺₀(X)` — the sequential loop iterates a snapshot
        // too), so the whole level's refinement checks form one batch whose
        // partition scans fan out across threads; verdicts are then applied
        // in node order, reproducing the sequential control flow exactly.
        let mut cplus0: Vec<ColumnSet> = Vec::with_capacity(level.len());
        let mut checks: Vec<(ColumnSet, usize)> = Vec::new();
        for &x in &level {
            stats.nodes_processed += 1;
            // C⁺(X) = ∩_{A ∈ X} C⁺(X \ {A}); missing entries denote pruned
            // nodes and behave as the empty set.
            let mut cp = r;
            for a in x.iter() {
                match cplus_prev.get(&x.without(a)) {
                    Some(c) => cp = cp.intersection(c),
                    None => {
                        cp = ColumnSet::empty();
                        break;
                    }
                }
            }
            for a in x.intersection(&cp).iter() {
                checks.push((x.without(a), a));
            }
            cplus0.push(cp);
        }
        stats.fd_checks += checks.len() as u64;
        let verdicts = cache.refines_many(&checks);
        let mut next_verdict = 0usize;
        for (&x, &cp0) in level.iter().zip(&cplus0) {
            let mut cp = cp0;
            for a in x.intersection(&cp0).iter() {
                let lhs = x.without(a);
                let holds = verdicts[next_verdict];
                next_verdict += 1;
                if holds {
                    fds.insert(lhs, a);
                    tries.record(lhs, a);
                    cp.remove(a);
                    cp = cp.difference(&r.difference(&x));
                }
            }
            cplus.insert(x, cp);
        }

        // PRUNE. Every unpruned node's uniqueness is needed regardless of
        // outcome, so the level's PLIs materialize as one parallel batch.
        let unpruned: Vec<ColumnSet> =
            level.iter().copied().filter(|x| !cplus[x].is_empty()).collect();
        let plis = cache.get_many(&unpruned);
        let mut survivors: Vec<ColumnSet> = Vec::with_capacity(level.len());
        for (&x, pli) in unpruned.iter().zip(&plis) {
            let cp = cplus[&x];
            if pli.is_unique() {
                // X is a key, so X → A is valid for every A ∉ X; it is
                // emitted when no smaller lhs for A exists. TANE phrases
                // this through C⁺ look-ups of sibling nodes
                // (`A ∈ ∩_{B∈X} C⁺(X∪{A}\{B})`), but those nodes may have
                // been pruned away together with their C⁺ entries; the
                // level-wise invariant — every minimal FD with a smaller
                // lhs is already discovered — lets us test minimality
                // exactly with a subset look-up instead.
                for a in cp.difference(&x).iter() {
                    if !tries.dominated(&x, a) {
                        fds.insert(x, a);
                        tries.record(x, a);
                    }
                }
                // Record the key; minimality is checked against previously
                // found keys (keys are discovered level by level, so any
                // subset key was found earlier).
                if !minimal_uccs.iter().any(|u| u.is_subset_of(&x)) {
                    minimal_uccs.push(x);
                }
                continue; // key pruning: do not extend
            }
            survivors.push(x);
        }

        level = apriori_gen(&survivors);
        cplus_prev = cplus;
        depth += 1;
    }

    minimal_uccs.sort();
    stats.flush();
    TaneResult { fds, minimal_uccs, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_minimal_fds;
    use muds_table::Table;
    use muds_ucc::naive_minimal_uccs;

    fn cs(cols: &[usize]) -> ColumnSet {
        ColumnSet::from_indices(cols.iter().copied())
    }

    fn check_table(t: &Table) {
        let mut cache = PliCache::new(t);
        let r = tane(&mut cache);
        assert_eq!(
            r.fds.to_sorted_vec(),
            naive_minimal_fds(t).to_sorted_vec(),
            "FDs differ on {}",
            t.name()
        );
        assert_eq!(r.minimal_uccs, naive_minimal_uccs(t), "UCCs differ on {}", t.name());
    }

    #[test]
    fn copy_and_constant_columns() {
        let t = Table::from_rows(
            "t",
            &["id", "copy", "k"],
            &[vec!["1", "1", "c"], vec!["2", "2", "c"], vec!["3", "3", "c"]],
        )
        .unwrap();
        let mut cache = PliCache::new(&t);
        let r = tane(&mut cache);
        assert!(r.fds.contains(&ColumnSet::empty(), 2));
        assert!(r.fds.contains(&cs(&[0]), 1));
        assert!(r.fds.contains(&cs(&[1]), 0));
        assert_eq!(r.minimal_uccs, vec![cs(&[0]), cs(&[1])]);
        check_table(&t);
    }

    #[test]
    fn xor_table_needs_composite_lhs() {
        let t = Table::from_rows(
            "t",
            &["a", "b", "c"],
            &[vec!["0", "0", "0"], vec!["0", "1", "1"], vec!["1", "0", "1"], vec!["1", "1", "0"]],
        )
        .unwrap();
        check_table(&t);
    }

    #[test]
    fn single_row_table() {
        let t = Table::from_rows("t", &["a", "b"], &[vec!["1", "2"]]).unwrap();
        let mut cache = PliCache::new(&t);
        let r = tane(&mut cache);
        assert!(r.fds.contains(&ColumnSet::empty(), 0));
        assert!(r.fds.contains(&ColumnSet::empty(), 1));
        assert_eq!(r.minimal_uccs, vec![ColumnSet::empty()]);
    }

    #[test]
    fn no_fds_on_independent_columns() {
        // Full cross product: no non-trivial FDs.
        let t = Table::from_rows(
            "t",
            &["a", "b"],
            &[vec!["0", "0"], vec!["0", "1"], vec!["1", "0"], vec!["1", "1"]],
        )
        .unwrap();
        let mut cache = PliCache::new(&t);
        let r = tane(&mut cache);
        assert!(r.fds.is_empty());
        assert_eq!(r.minimal_uccs, vec![cs(&[0, 1])]);
    }

    #[test]
    fn randomized_cross_check_with_naive() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(404);
        for case in 0..150 {
            let cols = rng.gen_range(1..=6);
            let rows = rng.gen_range(1..=25);
            let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let data: Vec<Vec<String>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.gen_range(0..3).to_string()).collect())
                .collect();
            let t = Table::from_rows("t", &name_refs, &data).unwrap().dedup_rows();
            let _ = case;
            check_table(&t);
        }
    }

    #[test]
    fn key_fds_are_emitted() {
        // id is a key; id → every other column, minimally.
        let t = Table::from_rows(
            "t",
            &["id", "x", "y"],
            &[vec!["1", "a", "p"], vec!["2", "a", "q"], vec!["3", "b", "p"]],
        )
        .unwrap();
        let mut cache = PliCache::new(&t);
        let r = tane(&mut cache);
        assert!(r.fds.contains(&cs(&[0]), 1));
        assert!(r.fds.contains(&cs(&[0]), 2));
        check_table(&t);
    }
}
