//! FUN: FD discovery over free sets with cardinality inference (Novelli &
//! Cicchetti; §2.3 of the paper).
//!
//! FUN traverses only the *free sets* — column combinations X with
//! `|X'| < |X|` for every proper subset X' (Definition 1 of the paper).
//! Free sets are downward closed, so a level-wise apriori traversal
//! enumerates them exactly. Minimal FD left-hand sides are always free
//! sets; validity is decided by the cardinality criterion of Lemma 1
//! (`X → A ⇔ |X| = |X ∪ {A}|`).
//!
//! FUN's edge over TANE is that it intersects PLIs only for apriori
//! candidates (sets whose direct subsets are all free); the cardinality of
//! any other (necessarily non-free) set is *inferred* with a recursive
//! look-up: a non-free set has the same cardinality as its
//! largest-cardinality direct subset. This module implements that
//! inference with memoization.
//!
//! **Holistic FUN** (§3.2) falls out for free: every minimal UCC is a free
//! set (Lemma 3), and a free set is a minimal UCC exactly when its
//! cardinality reaches the row count — so minimal UCCs are recorded during
//! the traversal at zero extra cost. This is what [`FunResult::minimal_uccs`]
//! returns.

use std::collections::HashMap;

use muds_lattice::{apriori_gen, ColumnSet};
use muds_pli::PliCache;

use crate::types::FdSet;

/// Work counters for a FUN run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FunStats {
    /// Cardinalities computed from an actual PLI (apriori candidates).
    pub cards_computed: u64,
    /// Cardinalities obtained by recursive inference instead of a PLI
    /// intersection — FUN's saving over TANE.
    pub cards_inferred: u64,
    /// Free sets traversed.
    pub free_sets: u64,
    /// Deepest level of free sets.
    pub max_level: usize,
}

impl FunStats {
    /// Publishes the counters into the ambient [`muds_obs::Metrics`]
    /// registry (no-op without one).
    fn flush(&self) {
        muds_obs::add("fun.cards_computed", self.cards_computed);
        muds_obs::add("fun.cards_inferred", self.cards_inferred);
        muds_obs::add("fun.free_sets", self.free_sets);
        muds_obs::gauge_max("fun.max_level", self.max_level as i64);
    }
}

/// Result of a FUN run.
#[derive(Debug, Clone)]
pub struct FunResult {
    /// All minimal functional dependencies.
    pub fds: FdSet,
    /// All minimal UCCs (the Holistic FUN byproduct, §3.2).
    pub minimal_uccs: Vec<ColumnSet>,
    /// Work counters.
    pub stats: FunStats,
}

struct Fun<'a, 'b> {
    cache: &'a mut PliCache<'b>,
    /// Known cardinalities: free sets, apriori candidates, and inferred
    /// non-free sets.
    card: HashMap<ColumnSet, usize>,
    stats: FunStats,
}

impl Fun<'_, '_> {
    /// Cardinality of `set`, inferring it when it was never materialized.
    ///
    /// Only sound for sets that are free-with-known-card or non-free: a set
    /// absent from `card` is guaranteed non-free (free sets are always
    /// generated as candidates), and a non-free set has the cardinality of
    /// its largest direct subset.
    fn cardinality(&mut self, set: &ColumnSet) -> usize {
        if let Some(&c) = self.card.get(set) {
            return c;
        }
        self.stats.cards_inferred += 1;
        // lint:allow(panic): direct_subsets() of a non-empty set is
        // non-empty, and the empty set's cardinality is seeded at
        // construction, so recursion never reaches an empty iterator.
        let max = set
            .direct_subsets()
            .map(|s| self.cardinality(&s))
            .max()
            .expect("inference never reaches the empty set: its card is seeded");
        self.card.insert(*set, max);
        max
    }
}

/// Runs FUN over the table behind `cache`, discovering all minimal FDs and
/// (as the holistic byproduct) all minimal UCCs.
pub fn fun(cache: &mut PliCache<'_>) -> FunResult {
    let table_rows = cache.table().num_rows();
    let n = cache.table().num_columns();
    let r = ColumnSet::full(n);
    let mut fun = Fun { cache, card: HashMap::new(), stats: FunStats::default() };
    let mut fds = FdSet::new();
    let mut minimal_uccs: Vec<ColumnSet> = Vec::new();

    // Level 0: the empty set, with one distinct value (zero for an empty
    // table).
    let empty_card = usize::min(1, table_rows);
    fun.card.insert(ColumnSet::empty(), empty_card);
    let mut free_level: Vec<ColumnSet> = vec![ColumnSet::empty()];
    let mut depth = 0usize;

    loop {
        // Generate and materialize the next level's candidates.
        let expandable: Vec<ColumnSet> = free_level
            .iter()
            .copied()
            .filter(|x| fun.card[x] < table_rows) // key pruning: do not extend unique sets
            .collect();
        let candidates: Vec<ColumnSet> = if depth == 0 {
            if expandable.is_empty() {
                Vec::new()
            } else {
                (0..n).map(ColumnSet::single).collect()
            }
        } else {
            apriori_gen(&expandable)
        };
        // Candidate PLIs are independent intersections; materialize the
        // level as one parallel batch and read the cardinalities in
        // candidate order (identical bookkeeping to per-candidate gets).
        let candidate_plis = fun.cache.get_many(&candidates);
        for (c, pli) in candidates.iter().zip(&candidate_plis) {
            fun.stats.cards_computed += 1;
            fun.card.insert(*c, pli.distinct_count());
        }

        // Emit FDs for the current level's free sets. X → A holds iff
        // |X ∪ {A}| = |X|; it is minimal iff no direct subset X' of X also
        // satisfies |X' ∪ {A}| = |X'| (subsets of free sets are free with
        // known cardinality).
        for &x in &free_level {
            fun.stats.free_sets += 1;
            let card_x = fun.card[&x];
            if card_x == table_rows {
                minimal_uccs.push(x); // Lemma 3: unique free sets are minimal UCCs
            }
            'rhs: for a in r.difference(&x).iter() {
                if fun.cardinality(&x.with(a)) != card_x {
                    continue;
                }
                for x_sub in x.direct_subsets() {
                    let card_sub = fun.card[&x_sub];
                    if fun.cardinality(&x_sub.with(a)) == card_sub {
                        continue 'rhs; // a subset already determines A
                    }
                }
                fds.insert(x, a);
            }
        }

        if candidates.is_empty() {
            break;
        }

        // Classify candidates: free iff strictly larger than every direct
        // subset (all of which are free sets with known cardinality).
        let next_free: Vec<ColumnSet> = candidates
            .into_iter()
            .filter(|y| {
                let c = fun.card[y];
                y.direct_subsets().all(|s| fun.card[&s] < c)
            })
            .collect();
        depth += 1;
        fun.stats.max_level = depth;
        free_level = next_free;
        if free_level.is_empty() {
            break;
        }
    }

    minimal_uccs.sort();
    fun.stats.flush();
    FunResult { fds, minimal_uccs, stats: fun.stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_minimal_fds;
    use crate::tane::tane;
    use muds_table::Table;
    use muds_ucc::naive_minimal_uccs;

    fn cs(cols: &[usize]) -> ColumnSet {
        ColumnSet::from_indices(cols.iter().copied())
    }

    fn check_table(t: &Table) {
        let mut cache = PliCache::new(t);
        let r = fun(&mut cache);
        assert_eq!(
            r.fds.to_sorted_vec(),
            naive_minimal_fds(t).to_sorted_vec(),
            "FDs differ on {}",
            t.name()
        );
        assert_eq!(r.minimal_uccs, naive_minimal_uccs(t), "UCCs differ on {}", t.name());
    }

    #[test]
    fn copy_constant_and_key() {
        let t = Table::from_rows(
            "t",
            &["id", "copy", "k"],
            &[vec!["1", "1", "c"], vec!["2", "2", "c"], vec!["3", "3", "c"]],
        )
        .unwrap();
        check_table(&t);
    }

    #[test]
    fn xor_table() {
        let t = Table::from_rows(
            "t",
            &["a", "b", "c"],
            &[vec!["0", "0", "0"], vec!["0", "1", "1"], vec!["1", "0", "1"], vec!["1", "1", "0"]],
        )
        .unwrap();
        check_table(&t);
    }

    #[test]
    fn degenerate_tables() {
        let t = Table::from_rows("t", &["a", "b"], &[vec!["1", "2"]]).unwrap();
        check_table(&t);
        let rows: Vec<Vec<&str>> = vec![];
        let t = Table::from_rows("t", &["a", "b"], &rows).unwrap();
        check_table(&t);
    }

    #[test]
    fn inference_actually_fires() {
        // id → x means {id, x} is non-free; looking up |{id,x,y}| then
        // requires inference.
        let t = Table::from_rows(
            "t",
            &["id", "x", "y"],
            &[vec!["1", "a", "p"], vec!["2", "a", "q"], vec!["3", "b", "p"], vec!["4", "b", "q"]],
        )
        .unwrap();
        let mut cache = PliCache::new(&t);
        let r = fun(&mut cache);
        assert!(r.stats.cards_inferred > 0, "expected inference on pruned non-free sets");
        check_table(&t);
    }

    #[test]
    fn randomized_cross_check_with_naive_and_tane() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(808);
        for case in 0..150 {
            let cols = rng.gen_range(1..=6);
            let rows = rng.gen_range(1..=25);
            let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let data: Vec<Vec<String>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.gen_range(0..3).to_string()).collect())
                .collect();
            let t = Table::from_rows("t", &name_refs, &data).unwrap().dedup_rows();
            check_table(&t);
            // FUN and TANE agree on everything, including captured UCCs.
            let mut c1 = PliCache::new(&t);
            let mut c2 = PliCache::new(&t);
            let rf = fun(&mut c1);
            let rt = tane(&mut c2);
            assert_eq!(rf.fds, rt.fds, "case {case}");
            assert_eq!(rf.minimal_uccs, rt.minimal_uccs, "case {case}");
        }
    }

    #[test]
    fn fun_uses_fewer_pli_builds_than_tane_on_fd_rich_data() {
        // Many FDs → many non-free sets → inference pays off.
        let rows: Vec<Vec<String>> = (0..64)
            .map(|i| {
                vec![
                    i.to_string(),           // key
                    (i % 8).to_string(),     // g
                    (i % 8 / 2).to_string(), // determined by g
                    (i % 2).to_string(),     // determined by g
                ]
            })
            .collect();
        let t = Table::from_rows("t", &["id", "g", "h", "p"], &rows).unwrap();
        let mut c1 = PliCache::new(&t);
        let r_fun = fun(&mut c1);
        let fun_intersects = c1.stats().intersects;
        let mut c2 = PliCache::new(&t);
        let r_tane = tane(&mut c2);
        let tane_intersects = c2.stats().intersects;
        assert_eq!(r_fun.fds, r_tane.fds);
        assert!(
            fun_intersects <= tane_intersects,
            "FUN should not intersect more than TANE ({fun_intersects} vs {tane_intersects})"
        );
    }

    #[test]
    fn ucc_capture_matches_semantics() {
        let t = Table::from_rows(
            "t",
            &["a", "b", "c"],
            &[vec!["1", "1", "1"], vec!["1", "2", "1"], vec!["2", "1", "1"], vec!["2", "2", "2"]],
        )
        .unwrap();
        let mut cache = PliCache::new(&t);
        let r = fun(&mut cache);
        assert_eq!(r.minimal_uccs, naive_minimal_uccs(&t));
        let _ = cs(&[0]);
    }
}
