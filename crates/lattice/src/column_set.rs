//! Fixed-width bitset over column indices.
//!
//! All lattice-based profiling algorithms in this workspace identify a set of
//! columns (an "attribute set" in the paper's terminology) by a [`ColumnSet`].
//! The representation is a fixed `[u64; 4]`, i.e. at most 256 columns, which
//! comfortably covers every dataset in the paper (the widest, uniprot, has
//! 223 columns). The fixed width keeps the type `Copy`, 32 bytes, and cheap
//! to hash — properties the random-walk and level-wise algorithms rely on,
//! since they keep millions of sets in hash maps.

use std::fmt;

/// Number of `u64` words backing a [`ColumnSet`].
const WORDS: usize = 4;

/// Maximum number of columns a [`ColumnSet`] can address.
pub const MAX_COLUMNS: usize = WORDS * 64;

/// A set of column indices, backed by a 256-bit fixed bitset.
///
/// Columns are identified by their zero-based position in the table schema.
/// The type is `Copy`; all set operations return new values.
///
/// # Panics
///
/// Inserting an index `>= MAX_COLUMNS` (256) panics. Tables wider than that
/// are rejected at load time by `muds-table`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ColumnSet {
    words: [u64; WORDS],
}

impl ColumnSet {
    /// The empty set.
    #[inline]
    pub const fn empty() -> Self {
        ColumnSet { words: [0; WORDS] }
    }

    /// The set `{0, 1, .., n-1}` of the first `n` columns.
    #[inline]
    pub fn full(n: usize) -> Self {
        assert!(n <= MAX_COLUMNS, "ColumnSet supports at most {MAX_COLUMNS} columns, got {n}");
        let mut words = [0u64; WORDS];
        let mut remaining = n;
        for w in words.iter_mut() {
            if remaining >= 64 {
                *w = u64::MAX;
                remaining -= 64;
            } else {
                *w = (1u64 << remaining) - 1;
                break;
            }
        }
        ColumnSet { words }
    }

    /// The singleton set `{col}`.
    #[inline]
    pub fn single(col: usize) -> Self {
        let mut s = Self::empty();
        s.insert(col);
        s
    }

    /// Builds a set from an iterator of column indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = Self::empty();
        for c in iter {
            s.insert(c);
        }
        s
    }

    /// Adds `col` to the set.
    #[inline]
    pub fn insert(&mut self, col: usize) {
        assert!(col < MAX_COLUMNS, "column index {col} out of range (max {MAX_COLUMNS})");
        self.words[col / 64] |= 1u64 << (col % 64);
    }

    /// Removes `col` from the set.
    #[inline]
    pub fn remove(&mut self, col: usize) {
        if col < MAX_COLUMNS {
            self.words[col / 64] &= !(1u64 << (col % 64));
        }
    }

    /// Returns a copy with `col` added.
    #[inline]
    pub fn with(mut self, col: usize) -> Self {
        self.insert(col);
        self
    }

    /// Returns a copy with `col` removed.
    #[inline]
    pub fn without(mut self, col: usize) -> Self {
        self.remove(col);
        self
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, col: usize) -> bool {
        col < MAX_COLUMNS && self.words[col / 64] & (1u64 << (col % 64)) != 0
    }

    /// Number of columns in the set.
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True iff the set has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set union.
    #[inline]
    pub fn union(&self, other: &Self) -> Self {
        let mut words = self.words;
        for (a, b) in words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
        ColumnSet { words }
    }

    /// Set intersection.
    #[inline]
    pub fn intersection(&self, other: &Self) -> Self {
        let mut words = self.words;
        for (a, b) in words.iter_mut().zip(other.words.iter()) {
            *a &= b;
        }
        ColumnSet { words }
    }

    /// Set difference `self \ other`.
    #[inline]
    pub fn difference(&self, other: &Self) -> Self {
        let mut words = self.words;
        for (a, b) in words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
        ColumnSet { words }
    }

    /// True iff the two sets share at least one column.
    #[inline]
    pub fn intersects(&self, other: &Self) -> bool {
        self.words.iter().zip(other.words.iter()).any(|(a, b)| a & b != 0)
    }

    /// True iff `self ⊆ other`.
    #[inline]
    pub fn is_subset_of(&self, other: &Self) -> bool {
        self.words.iter().zip(other.words.iter()).all(|(a, b)| a & !b == 0)
    }

    /// True iff `self ⊇ other`.
    #[inline]
    pub fn is_superset_of(&self, other: &Self) -> bool {
        other.is_subset_of(self)
    }

    /// True iff `self ⊂ other` (strict).
    #[inline]
    pub fn is_proper_subset_of(&self, other: &Self) -> bool {
        self != other && self.is_subset_of(other)
    }

    /// Index of the smallest column in the set, if any.
    #[inline]
    pub fn min_col(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(i * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Index of the largest column in the set, if any.
    #[inline]
    pub fn max_col(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate().rev() {
            if w != 0 {
                return Some(i * 64 + 63 - w.leading_zeros() as usize);
            }
        }
        None
    }

    /// Iterates the column indices in ascending order.
    #[inline]
    pub fn iter(&self) -> ColumnIter {
        // lint:allow(panic): words is the fixed-size [u64; WORDS] backing
        // array, so index 0 always exists.
        ColumnIter { words: self.words, word_idx: 0, current: self.words[0] }
    }

    /// Collects the column indices into a `Vec`, ascending.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Iterates all direct subsets (`self` minus one column each).
    pub fn direct_subsets(&self) -> impl Iterator<Item = ColumnSet> + '_ {
        let me = *self;
        self.iter().map(move |c| me.without(c))
    }

    /// Iterates all direct supersets within `universe` (`self` plus one
    /// column of `universe \ self` each).
    pub fn direct_supersets<'a>(
        &'a self,
        universe: &ColumnSet,
    ) -> impl Iterator<Item = ColumnSet> + 'a {
        let me = *self;
        universe.difference(self).iter().map(move |c| me.with(c))
    }

    /// Iterates **all** non-empty proper subsets of `self`.
    ///
    /// Exponential in cardinality; only used on small sets (FD left-hand
    /// sides during shadowed-FD discovery, §5.3 of the paper).
    pub fn proper_subsets(&self) -> Vec<ColumnSet> {
        let cols = self.to_vec();
        let n = cols.len();
        let mut out = Vec::with_capacity((1usize << n).saturating_sub(2));
        for mask in 1..(1u64 << n).saturating_sub(1) {
            let mut s = ColumnSet::empty();
            for (i, &c) in cols.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    s.insert(c);
                }
            }
            out.push(s);
        }
        out
    }

    /// Iterates all subsets of `self` including the empty set and `self`.
    pub fn all_subsets(&self) -> Vec<ColumnSet> {
        let cols = self.to_vec();
        let n = cols.len();
        let mut out = Vec::with_capacity(1usize << n);
        for mask in 0..(1u64 << n) {
            let mut s = ColumnSet::empty();
            for (i, &c) in cols.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    s.insert(c);
                }
            }
            out.push(s);
        }
        out
    }

    /// Formats the set using spreadsheet-style column letters (A, B, .., Z,
    /// A1, B1, ..) — the notation used throughout the paper.
    pub fn letters(&self) -> String {
        let mut s = String::new();
        for c in self.iter() {
            let letter = (b'A' + (c % 26) as u8) as char;
            s.push(letter);
            if c >= 26 {
                s.push_str(&(c / 26).to_string());
            }
        }
        if s.is_empty() {
            s.push('∅');
        }
        s
    }
}

impl FromIterator<usize> for ColumnSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        Self::from_indices(iter)
    }
}

impl fmt::Debug for ColumnSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for ColumnSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letters())
    }
}

/// Ascending iterator over the column indices of a [`ColumnSet`].
pub struct ColumnIter {
    words: [u64; WORDS],
    word_idx: usize,
    current: u64,
}

impl Iterator for ColumnIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= WORDS {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(cols: &[usize]) -> ColumnSet {
        ColumnSet::from_indices(cols.iter().copied())
    }

    #[test]
    fn empty_set_properties() {
        let e = ColumnSet::empty();
        assert!(e.is_empty());
        assert_eq!(e.cardinality(), 0);
        assert_eq!(e.min_col(), None);
        assert_eq!(e.max_col(), None);
        assert_eq!(e.to_vec(), Vec::<usize>::new());
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = ColumnSet::empty();
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(255);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(255));
        assert!(!s.contains(1) && !s.contains(65) && !s.contains(254));
        assert_eq!(s.cardinality(), 4);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.cardinality(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        let mut s = ColumnSet::empty();
        s.insert(256);
    }

    #[test]
    fn full_spans_words() {
        for n in [0, 1, 5, 63, 64, 65, 128, 200, 256] {
            let f = ColumnSet::full(n);
            assert_eq!(f.cardinality(), n, "full({n})");
            assert_eq!(f.to_vec(), (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn set_algebra() {
        let a = cs(&[1, 2, 3, 70]);
        let b = cs(&[2, 3, 4, 200]);
        assert_eq!(a.union(&b), cs(&[1, 2, 3, 4, 70, 200]));
        assert_eq!(a.intersection(&b), cs(&[2, 3]));
        assert_eq!(a.difference(&b), cs(&[1, 70]));
        assert!(a.intersects(&b));
        assert!(!cs(&[1]).intersects(&cs(&[2])));
    }

    #[test]
    fn subset_relations() {
        let a = cs(&[1, 2]);
        let b = cs(&[1, 2, 3]);
        assert!(a.is_subset_of(&b));
        assert!(a.is_proper_subset_of(&b));
        assert!(b.is_superset_of(&a));
        assert!(a.is_subset_of(&a));
        assert!(!a.is_proper_subset_of(&a));
        assert!(!b.is_subset_of(&a));
        assert!(ColumnSet::empty().is_subset_of(&a));
    }

    #[test]
    fn min_max_cols() {
        let s = cs(&[5, 100, 180]);
        assert_eq!(s.min_col(), Some(5));
        assert_eq!(s.max_col(), Some(180));
    }

    #[test]
    fn iteration_is_sorted_across_words() {
        let cols = vec![0, 31, 63, 64, 90, 127, 128, 255];
        let s = ColumnSet::from_indices(cols.iter().copied());
        assert_eq!(s.to_vec(), cols);
    }

    #[test]
    fn direct_subsets_enumerates_each_removal() {
        let s = cs(&[1, 4, 9]);
        let subs: Vec<_> = s.direct_subsets().collect();
        assert_eq!(subs.len(), 3);
        assert!(subs.contains(&cs(&[4, 9])));
        assert!(subs.contains(&cs(&[1, 9])));
        assert!(subs.contains(&cs(&[1, 4])));
    }

    #[test]
    fn direct_supersets_respects_universe() {
        let s = cs(&[0, 2]);
        let universe = ColumnSet::full(4);
        let sups: Vec<_> = s.direct_supersets(&universe).collect();
        assert_eq!(sups.len(), 2);
        assert!(sups.contains(&cs(&[0, 1, 2])));
        assert!(sups.contains(&cs(&[0, 2, 3])));
    }

    #[test]
    fn proper_subsets_of_three() {
        let s = cs(&[0, 1, 2]);
        let subs = s.proper_subsets();
        assert_eq!(subs.len(), 6); // 2^3 - 2
        assert!(subs.contains(&cs(&[0])));
        assert!(subs.contains(&cs(&[0, 1])));
        assert!(!subs.contains(&s));
        assert!(!subs.contains(&ColumnSet::empty()));
    }

    #[test]
    fn all_subsets_counts() {
        let s = cs(&[3, 7, 11, 200]);
        assert_eq!(s.all_subsets().len(), 16);
    }

    #[test]
    fn letters_rendering() {
        assert_eq!(cs(&[0, 1, 2]).letters(), "ABC");
        assert_eq!(cs(&[0, 26]).letters(), "AA1");
        assert_eq!(ColumnSet::empty().letters(), "∅");
    }

    #[test]
    fn with_without_are_copies() {
        let s = cs(&[1]);
        let t = s.with(2);
        assert!(!s.contains(2));
        assert!(t.contains(2));
        let u = t.without(1);
        assert!(t.contains(1));
        assert!(!u.contains(1));
    }

    #[test]
    fn ordering_is_total_and_consistent_with_eq() {
        let a = cs(&[1]);
        let b = cs(&[2]);
        assert_ne!(a.cmp(&b), std::cmp::Ordering::Equal);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }
}
