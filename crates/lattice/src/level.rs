//! Level-wise candidate generation (apriori-gen) for bottom-up lattice
//! traversal, as used by TANE, FUN, and the level-wise UCC baseline.
//!
//! Given the sets of level `k` that survived pruning, the next level
//! contains every set of size `k+1` **all** of whose direct subsets are
//! present — the classic apriori-gen join + prune of Agrawal and Srikant,
//! applied to attribute sets.

use std::collections::HashSet;

use rayon::prelude::*;

use crate::ColumnSet;

/// Generates level `k+1` candidates from the surviving level-`k` sets.
///
/// Two level-`k` sets are joined when they differ in exactly their largest
/// element (prefix join); the joined candidate is kept only if all of its
/// direct subsets appear in `level`. The input order does not matter; the
/// output is sorted and duplicate-free.
///
/// The subset-prune — the expensive part on wide levels, `k+1` hash probes
/// per joined candidate — runs as an order-preserving parallel filter over
/// the joined candidates (read-only sharing of the member set), so the
/// output is identical for any thread count.
pub fn apriori_gen(level: &[ColumnSet]) -> Vec<ColumnSet> {
    if level.is_empty() {
        return Vec::new();
    }
    let members: HashSet<ColumnSet> = level.iter().copied().collect();
    let mut sorted: Vec<ColumnSet> = level.to_vec();
    // Group by prefix (set minus largest element) by sorting on it.
    sorted.sort_by_key(|s| (s.max_col().map(|m| s.without(m)), s.max_col()));

    let mut joined = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let prefix_i = sorted[i].max_col().map(|m| sorted[i].without(m));
        let mut j = i + 1;
        while j < sorted.len() {
            let prefix_j = sorted[j].max_col().map(|m| sorted[j].without(m));
            if prefix_i != prefix_j {
                break;
            }
            joined.push(sorted[i].union(&sorted[j]));
            j += 1;
        }
        i += 1;
    }
    let mut out: Vec<ColumnSet> = joined
        .par_iter()
        .filter(|candidate| candidate.direct_subsets().all(|s| members.contains(&s)))
        .copied()
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Generates the first level: one singleton per column of `universe`.
pub fn first_level(universe: &ColumnSet) -> Vec<ColumnSet> {
    universe.iter().map(ColumnSet::single).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(cols: &[usize]) -> ColumnSet {
        ColumnSet::from_indices(cols.iter().copied())
    }

    #[test]
    fn empty_level_generates_nothing() {
        assert!(apriori_gen(&[]).is_empty());
    }

    #[test]
    fn singletons_generate_all_pairs() {
        let level = first_level(&ColumnSet::full(4));
        let next = apriori_gen(&level);
        assert_eq!(next.len(), 6);
        assert!(next.contains(&cs(&[0, 1])));
        assert!(next.contains(&cs(&[2, 3])));
    }

    #[test]
    fn prune_requires_all_subsets() {
        // Pairs {0,1}, {0,2} present but {1,2} missing: no triple survives.
        let level = vec![cs(&[0, 1]), cs(&[0, 2])];
        assert!(apriori_gen(&level).is_empty());
        // With {1,2} added, {0,1,2} is generated.
        let level = vec![cs(&[0, 1]), cs(&[0, 2]), cs(&[1, 2])];
        assert_eq!(apriori_gen(&level), vec![cs(&[0, 1, 2])]);
    }

    #[test]
    fn join_only_on_shared_prefix() {
        // {0,1} and {2,3} share no prefix: nothing generated.
        let level = vec![cs(&[0, 1]), cs(&[2, 3])];
        assert!(apriori_gen(&level).is_empty());
    }

    #[test]
    fn full_lattice_levels_have_binomial_sizes() {
        let n = 6;
        let mut level = first_level(&ColumnSet::full(n));
        let mut k = 1;
        while !level.is_empty() {
            let expected = binomial(n, k);
            assert_eq!(level.len(), expected, "level {k}");
            level = apriori_gen(&level);
            k += 1;
        }
        assert_eq!(k, n + 1);
    }

    fn binomial(n: usize, k: usize) -> usize {
        if k > n {
            return 0;
        }
        (0..k).fold(1usize, |acc, i| acc * (n - i) / (i + 1))
    }

    #[test]
    fn output_sorted_and_deduped() {
        let level = vec![cs(&[1, 2]), cs(&[0, 2]), cs(&[0, 1])];
        let next = apriori_gen(&level);
        assert_eq!(next, vec![cs(&[0, 1, 2])]);
    }

    #[test]
    fn non_contiguous_columns() {
        let level = vec![cs(&[10, 70]), cs(&[10, 200]), cs(&[70, 200])];
        assert_eq!(apriori_gen(&level), vec![cs(&[10, 70, 200])]);
    }
}
