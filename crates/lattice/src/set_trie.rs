//! Prefix tree ("set-trie") over column combinations, after §5.4 of the paper.
//!
//! MUDS performs a large number of *subset* look-ups (all minimal UCCs that
//! are subsets of a left-hand side, for shadowed-FD pruning) and *superset*
//! look-ups (all minimal UCCs that contain a connector, for the connector
//! look-up of §5.1). A linear scan over the UCC list is quadratic in the
//! number of stored sets; the prefix tree makes both operations proportional
//! to the number of matching paths.
//!
//! The trie stores each [`ColumnSet`] as its sorted sequence of column
//! indices, exactly like Figure 5 in the paper: level 1 holds the first
//! column of every stored combination, level 2 the second column of
//! combinations sharing the first, and so on.

use crate::ColumnSet;

/// Arena index of a trie node.
type NodeId = u32;

#[derive(Debug, Clone, Default)]
struct Node {
    /// Sorted `(column, child)` pairs.
    children: Vec<(u16, NodeId)>,
    /// True iff a stored set ends at this node.
    terminal: bool,
}

impl Node {
    fn child(&self, col: u16) -> Option<NodeId> {
        self.children.binary_search_by_key(&col, |&(c, _)| c).ok().map(|i| self.children[i].1)
    }
}

/// A prefix tree of [`ColumnSet`]s supporting subset and superset queries.
///
/// ```
/// use muds_lattice::{ColumnSet, SetTrie};
/// let mut trie = SetTrie::new();
/// trie.insert(ColumnSet::from_indices([0, 2]));
/// trie.insert(ColumnSet::from_indices([1]));
/// let query = ColumnSet::from_indices([0, 1, 2]);
/// assert_eq!(trie.subsets_of(&query).len(), 2);
/// assert!(trie.contains_subset_of(&query));
/// ```
#[derive(Debug, Clone)]
pub struct SetTrie {
    nodes: Vec<Node>,
    len: usize,
    meters: TrieMeters,
}

/// Ambient-registry counter handles, bound once per trie. Clones share the
/// handles, so a copied trie keeps counting into the same run totals.
#[derive(Debug, Clone)]
struct TrieMeters {
    /// Trie nodes visited during subset/superset searches.
    node_probes: muds_obs::Counter,
    /// Subset queries answered (`contains_subset_of`, `subsets_of`).
    subset_queries: muds_obs::Counter,
    /// Superset queries answered (`contains_superset_of`, `supersets_of`).
    superset_queries: muds_obs::Counter,
}

impl TrieMeters {
    fn bind() -> Self {
        TrieMeters {
            node_probes: muds_obs::counter("trie.node_probes"),
            subset_queries: muds_obs::counter("trie.subset_queries"),
            superset_queries: muds_obs::counter("trie.superset_queries"),
        }
    }
}

impl Default for SetTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl SetTrie {
    /// Creates an empty trie.
    pub fn new() -> Self {
        SetTrie { nodes: vec![Node::default()], len: 0, meters: TrieMeters::bind() }
    }

    /// Builds a trie from an iterator of sets.
    pub fn from_sets<I: IntoIterator<Item = ColumnSet>>(sets: I) -> Self {
        let mut t = Self::new();
        for s in sets {
            t.insert(s);
        }
        t
    }

    /// Number of stored sets.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no sets are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `set`. Returns `true` if it was not present before.
    ///
    /// The empty set is storable; it is a subset of every query.
    pub fn insert(&mut self, set: ColumnSet) -> bool {
        let mut node = 0 as NodeId;
        for col in set.iter() {
            let col = col as u16;
            node = match self.nodes[node as usize].child(col) {
                Some(c) => c,
                None => {
                    let id = self.nodes.len() as NodeId;
                    self.nodes.push(Node::default());
                    let n = &mut self.nodes[node as usize];
                    let pos = n.children.partition_point(|&(c, _)| c < col);
                    n.children.insert(pos, (col, id));
                    id
                }
            };
        }
        let t = &mut self.nodes[node as usize].terminal;
        let fresh = !*t;
        *t = true;
        if fresh {
            self.len += 1;
        }
        fresh
    }

    /// Removes `set` if present; returns whether it was stored.
    ///
    /// Nodes are not reclaimed (the profiling algorithms remove rarely and
    /// re-insert along the same paths).
    pub fn remove(&mut self, set: &ColumnSet) -> bool {
        let mut node = 0 as NodeId;
        for col in set.iter() {
            match self.nodes[node as usize].child(col as u16) {
                Some(c) => node = c,
                None => return false,
            }
        }
        let t = &mut self.nodes[node as usize].terminal;
        let was = *t;
        *t = false;
        if was {
            self.len -= 1;
        }
        was
    }

    /// Exact membership test.
    pub fn contains(&self, set: &ColumnSet) -> bool {
        let mut node = 0 as NodeId;
        for col in set.iter() {
            match self.nodes[node as usize].child(col as u16) {
                Some(c) => node = c,
                None => return false,
            }
        }
        self.nodes[node as usize].terminal
    }

    /// True iff some stored set is a subset of `query` (⊆, not strict).
    ///
    /// The search descends only into children whose column is in `query`
    /// — O(1) bitset tests against the node's (typically few) children,
    /// rather than probing the trie for each of the query's columns. On
    /// wide queries (the 256-column boundary) the latter is two orders of
    /// magnitude slower, and this predicate is the inner loop of every
    /// lattice walk.
    pub fn contains_subset_of(&self, query: &ColumnSet) -> bool {
        self.meters.subset_queries.inc();
        self.subset_search(0, query)
    }

    /// True iff some stored set is a **proper** subset of `query`.
    pub fn contains_proper_subset_of(&self, query: &ColumnSet) -> bool {
        self.subsets_of(query).iter().any(|s| s != query)
    }

    fn subset_search(&self, node: NodeId, query: &ColumnSet) -> bool {
        self.meters.node_probes.inc();
        let n = &self.nodes[node as usize];
        if n.terminal {
            return true;
        }
        n.children
            .iter()
            .any(|&(c, child)| query.contains(c as usize) && self.subset_search(child, query))
    }

    /// All stored sets that are subsets of `query` (including `query` itself
    /// if stored).
    pub fn subsets_of(&self, query: &ColumnSet) -> Vec<ColumnSet> {
        self.meters.subset_queries.inc();
        let mut out = Vec::new();
        let mut path = ColumnSet::empty();
        self.collect_subsets(0, query, &mut path, &mut out);
        out
    }

    fn collect_subsets(
        &self,
        node: NodeId,
        query: &ColumnSet,
        path: &mut ColumnSet,
        out: &mut Vec<ColumnSet>,
    ) {
        self.meters.node_probes.inc();
        let n = &self.nodes[node as usize];
        if n.terminal {
            out.push(*path);
        }
        for &(c, child) in &n.children {
            if query.contains(c as usize) {
                path.insert(c as usize);
                self.collect_subsets(child, query, path, out);
                path.remove(c as usize);
            }
        }
    }

    /// True iff some stored set is a superset of `query` (⊇, not strict).
    pub fn contains_superset_of(&self, query: &ColumnSet) -> bool {
        self.meters.superset_queries.inc();
        let cols: Vec<u16> = query.iter().map(|c| c as u16).collect();
        self.superset_search(0, &cols)
    }

    fn superset_search(&self, node: NodeId, remaining: &[u16]) -> bool {
        self.meters.node_probes.inc();
        let n = &self.nodes[node as usize];
        match remaining.first() {
            None => {
                n.terminal || n.children.iter().any(|&(_, c)| self.superset_search(c, remaining))
            }
            Some(&next) => n.children.iter().take_while(|&&(c, _)| c <= next).any(|&(c, child)| {
                let rest = if c == next { &remaining[1..] } else { remaining };
                self.superset_search(child, rest)
            }),
        }
    }

    /// All stored sets that are supersets of `query`.
    ///
    /// This is the *connector look-up* primitive of §5.1: given a connector,
    /// return every minimal UCC containing it.
    pub fn supersets_of(&self, query: &ColumnSet) -> Vec<ColumnSet> {
        self.meters.superset_queries.inc();
        let cols: Vec<u16> = query.iter().map(|c| c as u16).collect();
        let mut out = Vec::new();
        let mut path = ColumnSet::empty();
        self.collect_supersets(0, &cols, &mut path, &mut out);
        out
    }

    fn collect_supersets(
        &self,
        node: NodeId,
        remaining: &[u16],
        path: &mut ColumnSet,
        out: &mut Vec<ColumnSet>,
    ) {
        self.meters.node_probes.inc();
        let n = &self.nodes[node as usize];
        if remaining.is_empty() && n.terminal {
            out.push(*path);
        }
        let limit = remaining.first().copied();
        for &(c, child) in &n.children {
            // Children are sorted; once we pass the next required column the
            // requirement can no longer be satisfied on this branch.
            if let Some(next) = limit {
                if c > next {
                    break;
                }
                let rest = if c == next { &remaining[1..] } else { remaining };
                path.insert(c as usize);
                self.collect_supersets(child, rest, path, out);
                path.remove(c as usize);
            } else {
                path.insert(c as usize);
                self.collect_supersets(child, remaining, path, out);
                path.remove(c as usize);
            }
        }
    }

    /// All stored sets, in trie order.
    pub fn iter_sets(&self) -> Vec<ColumnSet> {
        self.supersets_of(&ColumnSet::empty())
    }
}

/// Maintains the family of *minimal* sets seen so far (e.g. minimal UCCs,
/// minimal FD left-hand sides).
///
/// `add` keeps the family an antichain: inserting a superset of a stored set
/// is a no-op; inserting a subset evicts the dominated supersets.
#[derive(Debug, Clone, Default)]
pub struct MinimalSetFamily {
    trie: SetTrie,
    sets: Vec<ColumnSet>,
}

impl MinimalSetFamily {
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `set`, maintaining minimality. Returns `true` if the family
    /// changed (i.e. `set` was not dominated by an existing member).
    pub fn add(&mut self, set: ColumnSet) -> bool {
        if self.trie.contains_subset_of(&set) {
            return false;
        }
        // Evict stored supersets of the new minimal set.
        self.sets.retain(|s| {
            if set.is_proper_subset_of(s) {
                self.trie.remove(s);
                false
            } else {
                true
            }
        });
        self.trie.insert(set);
        self.sets.push(set);
        true
    }

    /// True iff a stored set is ⊆ `query` — i.e. `query` is dominated.
    pub fn dominates(&self, query: &ColumnSet) -> bool {
        self.trie.contains_subset_of(query)
    }

    /// Access the underlying trie (for subset/superset enumeration).
    pub fn trie(&self) -> &SetTrie {
        &self.trie
    }

    /// The stored antichain.
    pub fn sets(&self) -> &[ColumnSet] {
        &self.sets
    }

    pub fn len(&self) -> usize {
        self.sets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

/// Maintains the family of *maximal* sets seen so far (e.g. maximal
/// non-UCCs). Dual of [`MinimalSetFamily`].
///
/// Subset queries (`dominates`) are answered by one of two
/// representations, chosen by universe width at construction:
///
/// * **Narrow universes (≤ [`COMPLEMENT_TRIE_MAX_UNIVERSE`] columns)**: a
///   trie over the *complements* of the stored sets — `X ⊆ N ⟺ ¬N ⊆ ¬X`,
///   so "is the query inside any stored set" becomes a subset search on
///   complements, sub-linear in the family size. This matters because the
///   random walks and the shadowed-FD phase consult this structure
///   millions of times on families of thousands of sets.
/// * **Wide universes**: a linear scan with bitset subset tests. On a
///   255-column universe the complements of typical (small-to-mid)
///   members are *dense* ~200-column sets; a failed subset search with a
///   dense query must traverse essentially the whole complement trie, and
///   every genuinely new member pays that worst case in `add`. A subset
///   test is four words of bit arithmetic, so scanning even a few
///   thousand members is orders of magnitude cheaper than the degenerate
///   trie traversal (measured 25–40× on the walk engine at the 256-column
///   boundary).
#[derive(Debug, Clone)]
pub struct MaximalSetFamily {
    sets: Vec<ColumnSet>,
    /// `Some` iff the universe is narrow enough for the complement trie.
    complements: Option<SetTrie>,
    universe: ColumnSet,
}

/// Widest universe for which [`MaximalSetFamily`] keeps a complement trie.
const COMPLEMENT_TRIE_MAX_UNIVERSE: usize = 64;

impl Default for MaximalSetFamily {
    fn default() -> Self {
        Self::new()
    }
}

impl MaximalSetFamily {
    /// A family over the full 256-column universe. Prefer
    /// [`Self::with_universe`] when the column count is known — shorter
    /// complements mean shorter trie paths.
    pub fn new() -> Self {
        Self::with_universe(ColumnSet::full(crate::MAX_COLUMNS))
    }

    /// A family whose members (and queries) are subsets of `universe`.
    pub fn with_universe(universe: ColumnSet) -> Self {
        let complements =
            (universe.cardinality() <= COMPLEMENT_TRIE_MAX_UNIVERSE).then(SetTrie::new);
        MaximalSetFamily { sets: Vec::new(), complements, universe }
    }

    fn complement(&self, set: &ColumnSet) -> ColumnSet {
        self.universe.difference(set)
    }

    /// Inserts `set`, maintaining maximality. Returns `true` if the family
    /// changed.
    pub fn add(&mut self, set: ColumnSet) -> bool {
        debug_assert!(set.is_subset_of(&self.universe), "set outside family universe");
        if self.dominates(&set) {
            return false;
        }
        let mut removed: Vec<ColumnSet> = Vec::new();
        self.sets.retain(|s| {
            if s.is_proper_subset_of(&set) {
                removed.push(*s);
                false
            } else {
                true
            }
        });
        if let Some(trie) = &mut self.complements {
            for s in removed {
                let comp = self.universe.difference(&s);
                trie.remove(&comp);
            }
            trie.insert(self.universe.difference(&set));
        }
        self.sets.push(set);
        true
    }

    /// True iff `query` ⊆ some stored set — i.e. `query` is dominated.
    pub fn dominates(&self, query: &ColumnSet) -> bool {
        match &self.complements {
            Some(trie) => trie.contains_subset_of(&self.complement(query)),
            None => self.sets.iter().any(|s| query.is_subset_of(s)),
        }
    }

    pub fn sets(&self) -> &[ColumnSet] {
        &self.sets
    }

    pub fn len(&self) -> usize {
        self.sets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(cols: &[usize]) -> ColumnSet {
        ColumnSet::from_indices(cols.iter().copied())
    }

    /// The trie from Figure 5 of the paper.
    fn paper_trie() -> SetTrie {
        SetTrie::from_sets([
            cs(&[1, 3, 8]),
            cs(&[1, 5]),
            cs(&[1, 10]),
            cs(&[1, 12]),
            cs(&[7]),
            cs(&[15, 18]),
            cs(&[1, 11, 17]),
        ])
    }

    #[test]
    fn insert_and_contains() {
        let t = paper_trie();
        assert_eq!(t.len(), 7);
        assert!(t.contains(&cs(&[1, 3, 8])));
        assert!(t.contains(&cs(&[7])));
        assert!(!t.contains(&cs(&[1, 3]))); // prefix of a stored set, not stored
        assert!(!t.contains(&cs(&[3, 8])));
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut t = paper_trie();
        assert!(!t.insert(cs(&[7])));
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn remove_only_removes_exact() {
        let mut t = paper_trie();
        assert!(t.remove(&cs(&[1, 5])));
        assert!(!t.contains(&cs(&[1, 5])));
        assert!(t.contains(&cs(&[1, 3, 8])));
        assert_eq!(t.len(), 6);
        assert!(!t.remove(&cs(&[1, 5])));
    }

    #[test]
    fn subset_queries() {
        let t = paper_trie();
        // Query {1,5,10}: stored subsets are {1,5} and {1,10}.
        let q = cs(&[1, 5, 10]);
        let mut subs = t.subsets_of(&q);
        subs.sort();
        assert_eq!(subs, vec![cs(&[1, 5]), cs(&[1, 10])]);
        assert!(t.contains_subset_of(&q));
        assert!(!t.contains_subset_of(&cs(&[2, 3, 8])));
    }

    #[test]
    fn subset_query_includes_exact_match() {
        let t = paper_trie();
        let q = cs(&[7]);
        assert_eq!(t.subsets_of(&q), vec![q]);
        assert!(t.contains_subset_of(&q));
        assert!(!t.contains_proper_subset_of(&q));
    }

    #[test]
    fn superset_queries_connector_lookup() {
        let t = paper_trie();
        // Connector {1}: every stored set starting with 1.
        let mut sups = t.supersets_of(&cs(&[1]));
        sups.sort();
        let mut want =
            vec![cs(&[1, 3, 8]), cs(&[1, 5]), cs(&[1, 10]), cs(&[1, 11, 17]), cs(&[1, 12])];
        want.sort();
        assert_eq!(sups, want);
        assert!(t.contains_superset_of(&cs(&[11])));
        assert!(t.contains_superset_of(&cs(&[1, 17])));
        assert!(!t.contains_superset_of(&cs(&[3, 5])));
    }

    #[test]
    fn paper_connector_lookup_example() {
        // Table 2 of the paper: UCCs {AFG, BDFG, DEF, CEFG}, connector FG.
        // Matching UCCs: AFG, BDFG, CEFG; union of non-connector columns is
        // ABCDE minus... = {A, B, D, C, E}.
        let a = 0;
        let b = 1;
        let c = 2;
        let d = 3;
        let e = 4;
        let f = 5;
        let g = 6;
        let t = SetTrie::from_sets([
            cs(&[a, f, g]),
            cs(&[b, d, f, g]),
            cs(&[d, e, f]),
            cs(&[c, e, f, g]),
        ]);
        let connector = cs(&[f, g]);
        let matched = t.supersets_of(&connector);
        assert_eq!(matched.len(), 3);
        let mut union = ColumnSet::empty();
        for m in &matched {
            union = union.union(&m.difference(&connector));
        }
        assert_eq!(union, cs(&[a, b, c, d, e]));
    }

    #[test]
    fn empty_set_is_subset_of_everything() {
        let mut t = SetTrie::new();
        t.insert(ColumnSet::empty());
        assert!(t.contains_subset_of(&cs(&[3])));
        assert!(t.contains_subset_of(&ColumnSet::empty()));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_trie_matches_nothing() {
        let t = SetTrie::new();
        assert!(!t.contains_subset_of(&ColumnSet::full(10)));
        assert!(!t.contains_superset_of(&ColumnSet::empty()));
        assert!(t.subsets_of(&ColumnSet::full(10)).is_empty());
    }

    #[test]
    fn supersets_of_empty_enumerates_all() {
        let t = paper_trie();
        assert_eq!(t.iter_sets().len(), 7);
    }

    #[test]
    fn minimal_family_prunes_supersets() {
        let mut f = MinimalSetFamily::new();
        assert!(f.add(cs(&[1, 2, 3])));
        assert!(f.add(cs(&[4])));
        // Superset of {4} rejected.
        assert!(!f.add(cs(&[4, 5])));
        // Subset of {1,2,3} evicts it.
        assert!(f.add(cs(&[1, 2])));
        let mut sets = f.sets().to_vec();
        sets.sort();
        assert_eq!(sets, vec![cs(&[1, 2]), cs(&[4])]);
        assert!(f.dominates(&cs(&[1, 2, 9])));
        assert!(!f.dominates(&cs(&[1, 3])));
    }

    #[test]
    fn maximal_family_prunes_subsets() {
        let mut f = MaximalSetFamily::new();
        assert!(f.add(cs(&[1, 2])));
        assert!(!f.add(cs(&[1]))); // subset rejected
        assert!(f.add(cs(&[1, 2, 3]))); // evicts {1,2}
        assert_eq!(f.sets(), &[cs(&[1, 2, 3])]);
        assert!(f.dominates(&cs(&[2, 3])));
        assert!(!f.dominates(&cs(&[4])));
    }

    #[test]
    fn queries_meter_into_ambient_registry() {
        let metrics = muds_obs::Metrics::new();
        let _guard = metrics.install();
        let t = paper_trie();
        assert!(t.contains_subset_of(&cs(&[1, 5, 10])));
        assert!(t.contains_superset_of(&cs(&[1])));
        let _ = t.subsets_of(&cs(&[1, 5]));
        let snap = metrics.drain_snapshot();
        assert_eq!(snap.counter("trie.subset_queries"), 2);
        assert_eq!(snap.counter("trie.superset_queries"), 1);
        assert!(snap.counter("trie.node_probes") > 0);
    }

    #[test]
    fn large_randomized_cross_check_against_linear_scan() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        let mut stored: Vec<ColumnSet> = Vec::new();
        let mut trie = SetTrie::new();
        for _ in 0..300 {
            let k = rng.gen_range(0..5);
            let s = ColumnSet::from_indices((0..k).map(|_| rng.gen_range(0..12)));
            if trie.insert(s) {
                stored.push(s);
            }
        }
        for _ in 0..200 {
            let k = rng.gen_range(0..7);
            let q = ColumnSet::from_indices((0..k).map(|_| rng.gen_range(0..12)));
            let mut expect_subs: Vec<_> =
                stored.iter().copied().filter(|s| s.is_subset_of(&q)).collect();
            expect_subs.sort();
            let mut got_subs = trie.subsets_of(&q);
            got_subs.sort();
            assert_eq!(got_subs, expect_subs, "subsets_of({q:?})");
            let mut expect_sups: Vec<_> =
                stored.iter().copied().filter(|s| s.is_superset_of(&q)).collect();
            expect_sups.sort();
            let mut got_sups = trie.supersets_of(&q);
            got_sups.sort();
            assert_eq!(got_sups, expect_sups, "supersets_of({q:?})");
            assert_eq!(trie.contains_subset_of(&q), !expect_subs.is_empty());
            assert_eq!(trie.contains_superset_of(&q), !expect_sups.is_empty());
        }
    }
}
