//! Generic DUCC-style random-walk search for minimal positive sets of a
//! monotone lattice property.
//!
//! DUCC (§2.2 of the paper) discovers minimal UCCs by random-walking the
//! attribute lattice: on a non-unique node it moves to a random direct
//! superset, on a unique node to a random direct subset, pruning subsets of
//! non-UCCs and supersets of UCCs. Unvisited "holes" left by the combined
//! up/down pruning are found by comparing the discovered minimal UCCs with
//! the minimal hitting sets of the complements of the maximal non-UCCs.
//!
//! MUDS (§5.2) reuses the exact same traversal for FD discovery, with the
//! monotone property "X functionally determines A" instead of "X is
//! unique". This module therefore implements the search generically over a
//! [`MonotoneOracle`].

use std::collections::HashMap;

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::hitting_set::{complement_family, minimal_hitting_sets};
use crate::set_trie::{MaximalSetFamily, MinimalSetFamily};
use crate::ColumnSet;

/// A monotone (upward-closed) predicate over column sets: if `check(X)` is
/// true then `check(Y)` is true for every `Y ⊇ X`.
///
/// Implementations are expected to be expensive (PLI intersections); the
/// walk engine minimizes the number of calls and never asks the same set
/// twice.
pub trait MonotoneOracle {
    /// Evaluates the predicate on `set`.
    fn check(&mut self, set: &ColumnSet) -> bool;
}

impl<F: FnMut(&ColumnSet) -> bool> MonotoneOracle for F {
    fn check(&mut self, set: &ColumnSet) -> bool {
        self(set)
    }
}

/// Counters describing the work a walk performed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalkStats {
    /// Oracle evaluations (each typically a PLI intersection).
    pub oracle_calls: u64,
    /// Lattice nodes visited by the random walk (including pruned ones).
    pub nodes_visited: u64,
    /// Iterations of the hole-filling loop.
    pub hole_rounds: u64,
    /// Hole candidates produced by the hitting-set computation and checked.
    pub holes_checked: u64,
}

impl WalkStats {
    /// Publishes the counters into the ambient [`muds_obs::Metrics`]
    /// registry (no-op without one). Called once per walk at each exit
    /// point, so per-walk structs stay exact while the registry
    /// accumulates run-level totals across all walks of an algorithm
    /// (DUCC + every R\Z sub-lattice + completion sweep).
    fn flush(&self, minimal_positives: usize, maximal_negatives: usize) {
        muds_obs::add("walk.runs", 1);
        muds_obs::add("walk.oracle_calls", self.oracle_calls);
        muds_obs::add("walk.nodes_visited", self.nodes_visited);
        muds_obs::add("walk.hole_rounds", self.hole_rounds);
        muds_obs::add("walk.holes_checked", self.holes_checked);
        muds_obs::add("walk.minimal_positives", minimal_positives as u64);
        muds_obs::add("walk.maximal_negatives", maximal_negatives as u64);
    }
}

/// Configuration of the random walk.
#[derive(Debug, Clone)]
pub struct WalkConfig {
    /// RNG seed; walks are fully deterministic given the seed.
    pub seed: u64,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig { seed: 0xD0CC }
    }
}

/// Outcome of [`find_minimal_positives`].
#[derive(Debug, Clone)]
pub struct WalkResult {
    /// All minimal sets satisfying the predicate, sorted.
    pub minimal_positives: Vec<ColumnSet>,
    /// All maximal sets violating the predicate, sorted. Empty when the
    /// predicate holds on the empty set.
    pub maximal_negatives: Vec<ColumnSet>,
    /// Work counters.
    pub stats: WalkStats,
}

/// Classification of a visited node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Positive,
    Negative,
}

/// One node on a walk's trail: the node and the columns whose neighbor
/// (direct subset for a positive node, direct superset for a negative one)
/// has not been ruled out yet. Kept as a bitmask so family-derived
/// exclusions apply to all remaining candidates at once.
struct Frame {
    set: ColumnSet,
    remaining: ColumnSet,
    positive: bool,
}

struct Search<'a, O: MonotoneOracle> {
    universe: ColumnSet,
    oracle: &'a mut O,
    visited: HashMap<ColumnSet, Status>,
    min_pos: MinimalSetFamily,
    max_neg: MaximalSetFamily,
    rng: StdRng,
    stats: WalkStats,
}

impl<'a, O: MonotoneOracle> Search<'a, O> {
    /// Classifies `set`, consulting pruning information before the oracle.
    fn classify(&mut self, set: &ColumnSet) -> Status {
        if let Some(&s) = self.visited.get(set) {
            return s;
        }
        let status = if self.min_pos.dominates(set) {
            Status::Positive
        } else if self.max_neg.dominates(set) {
            Status::Negative
        } else {
            self.stats.oracle_calls += 1;
            if self.oracle.check(set) {
                Status::Positive
            } else {
                self.max_neg.add(*set);
                Status::Negative
            }
        };
        self.visited.insert(*set, status);
        status
    }

    /// Status without any oracle call; `None` when unknown.
    ///
    /// Statuses derived from the domination tries are memoized into
    /// `visited`: both families only grow and the oracle is exact, so a
    /// classification can never be revised, and the memo turns repeated
    /// neighbor probes of the same set (frequent on wide universes, where
    /// every node has hundreds of neighbors) into a single hash lookup
    /// instead of a trie query per probe.
    fn known_status(&mut self, set: &ColumnSet) -> Option<Status> {
        if let Some(&s) = self.visited.get(set) {
            return Some(s);
        }
        let derived = if self.min_pos.dominates(set) {
            Some(Status::Positive)
        } else if self.max_neg.dominates(set) {
            Some(Status::Negative)
        } else {
            None
        };
        if let Some(s) = derived {
            self.visited.insert(*set, s);
        }
        derived
    }

    /// Random walk from `start` following the DUCC strategy: move down from
    /// positives, up from negatives, record minimal positives when every
    /// direct subset is negative.
    ///
    /// Each trail frame keeps its partial Fisher–Yates scan position, so a
    /// node backtracked into resumes its neighbor scan where it stopped
    /// instead of rescanning from the beginning. Every neighbor of a node
    /// is therefore probed at most once per walk — known-ness only grows,
    /// so a candidate found known at probe time stays known — turning a
    /// walk from O(length × degree) probes into O(length + degree), which
    /// on 255-column universes is the bulk of the phase's runtime.
    fn walk_from(&mut self, start: ColumnSet) {
        let mut stack: Vec<Frame> = vec![self.new_frame(start)];
        while let Some(mut frame) = stack.pop() {
            match self.advance(&mut frame) {
                Some(next) => {
                    stack.push(frame);
                    let next_frame = self.new_frame(next);
                    stack.push(next_frame);
                }
                None => {
                    if frame.positive && self.is_confirmed_minimal(&frame.set) {
                        self.min_pos.add(frame.set);
                    }
                }
            }
        }
    }

    /// Opens a scan frame for `set`: classifies it and seeds the candidate
    /// columns of its unvisited-neighbor scan (direct subsets for
    /// positives, direct supersets within the universe for negatives).
    fn new_frame(&mut self, set: ColumnSet) -> Frame {
        self.stats.nodes_visited += 1;
        let positive = self.classify(&set) == Status::Positive;
        let remaining = if positive { set } else { self.universe.difference(&set) };
        Frame { set, remaining, positive }
    }

    /// Drops from `frame.remaining` every column whose neighbor is
    /// *derivable* from the current families — O(family size) bitset
    /// operations instead of one domination probe per neighbor.
    ///
    /// Applied on every scan resume, not only at frame open: the families
    /// grow while a trail node waits on the stack, and by the time a long
    /// trail drains almost every neighbor of every frame is derivable. A
    /// per-neighbor probe loop makes that drain O(width) hash-and-trie
    /// lookups per frame, which on wide universes dominates the entire
    /// search; the bitmask form removes all newly-derivable candidates at
    /// once. Skipped columns are exactly those whose probe would have
    /// returned a derived status, so the scan outcome is unchanged.
    fn exclude_derivable(&self, frame: &mut Frame) {
        if frame.positive {
            // P\{c} is derived positive iff some known minimal positive
            // inside P avoids c — only c in the intersection of the
            // minimal positives within P can yield an unknown subset.
            // P\{c} is derived negative iff P \ M = {c} for a maximal
            // negative M.
            for p in self.min_pos.sets() {
                if p.is_subset_of(&frame.set) {
                    frame.remaining = frame.remaining.intersection(p);
                }
            }
            for m in self.max_neg.sets() {
                let outside = frame.set.difference(m);
                if outside.cardinality() == 1 {
                    frame.remaining = frame.remaining.difference(&outside);
                }
            }
        } else {
            // N∪{c} is derived negative iff c lies in a maximal negative
            // M ⊇ N, and derived positive iff p \ N = {c} for a known
            // minimal positive p.
            for m in self.max_neg.sets() {
                if frame.set.is_subset_of(m) {
                    frame.remaining = frame.remaining.difference(m);
                }
            }
            for p in self.min_pos.sets() {
                let missing = p.difference(&frame.set);
                if missing.cardinality() == 1 {
                    frame.remaining = frame.remaining.difference(&missing);
                }
            }
        }
    }

    /// Resumes `frame`'s neighbor scan: removes newly-derivable candidates,
    /// then draws remaining columns uniformly at random until one yields a
    /// neighbor whose status is unknown.
    ///
    /// Equivalent to collecting every unknown neighbor and sampling one
    /// uniformly, but lazy: when most neighbors are unknown (the productive
    /// phase of a walk) this probes O(1) candidates, and when most are
    /// derivable (the drain phase) the bitmask exclusion removes them
    /// wholesale, so only oracle-visited non-derived neighbors are ever
    /// probed individually.
    fn advance(&mut self, frame: &mut Frame) -> Option<ColumnSet> {
        self.exclude_derivable(frame);
        while !frame.remaining.is_empty() {
            let k = self.rng.gen_range(0..frame.remaining.cardinality());
            // lint:allow(panic): k is drawn from 0..cardinality() of this
            // exact set on the previous line, so nth(k) always yields.
            let c = frame.remaining.iter().nth(k).expect("k < cardinality");
            frame.remaining = frame.remaining.without(c);
            let candidate = if frame.positive { frame.set.without(c) } else { frame.set.with(c) };
            if self.known_status(&candidate).is_none() {
                return Some(candidate);
            }
        }
        None
    }

    /// True iff every direct subset of `set` is known negative, which proves
    /// `set` is a minimal positive. The empty set has no subsets and is
    /// trivially minimal.
    fn is_confirmed_minimal(&mut self, set: &ColumnSet) -> bool {
        let subsets: Vec<ColumnSet> = set.direct_subsets().collect();
        subsets.iter().all(|s| self.classify(s) == Status::Negative)
    }

    /// Walks `positive` down to a minimal positive and records it.
    fn minimize_positive(&mut self, positive: ColumnSet) {
        let mut current = positive;
        'outer: loop {
            let subsets: Vec<ColumnSet> = current.direct_subsets().collect();
            for s in subsets {
                if self.classify(&s) == Status::Positive {
                    current = s;
                    continue 'outer;
                }
            }
            // All direct subsets negative: current is minimal.
            self.min_pos.add(current);
            return;
        }
    }

    /// Walks `negative` up to a maximal negative (recorded by `classify`).
    fn maximize_negative(&mut self, negative: ColumnSet) {
        let mut current = negative;
        'outer: loop {
            let supersets: Vec<ColumnSet> = current.direct_supersets(&self.universe).collect();
            for s in supersets {
                if self.classify(&s) == Status::Negative {
                    current = s;
                    continue 'outer;
                }
            }
            return; // max_neg already holds it via classify()
        }
    }
}

/// Finds **all** minimal positive sets of a monotone predicate over the
/// lattice of subsets of `universe`.
///
/// The search runs the DUCC random walk seeded at every singleton, then
/// iterates the hitting-set duality until the discovered minimal positives
/// are provably complete: the loop ends when the minimal transversals of the
/// complements of the maximal negatives coincide with the found minimal
/// positives, which certifies both families (Gunopulos et al.; used by DUCC
/// as "hole" detection).
///
/// `known_negatives` seeds the maximal-negative family with sets already
/// known to violate the predicate (inter-task pruning in MUDS); they must be
/// genuinely negative.
pub fn find_minimal_positives<O: MonotoneOracle>(
    universe: ColumnSet,
    oracle: &mut O,
    config: &WalkConfig,
    known_negatives: &[ColumnSet],
) -> WalkResult {
    find_minimal_positives_seeded(universe, oracle, config, known_negatives, &[])
}

/// [`find_minimal_positives`] additionally seeded with sets *known to be
/// positive* but not necessarily minimal (e.g. FD left-hand sides found by
/// an earlier phase). Each seed is walked down to a minimal positive before
/// the regular search starts, so prior knowledge prunes the walk without
/// affecting exactness.
pub fn find_minimal_positives_seeded<O: MonotoneOracle>(
    universe: ColumnSet,
    oracle: &mut O,
    config: &WalkConfig,
    known_negatives: &[ColumnSet],
    known_positives: &[ColumnSet],
) -> WalkResult {
    let mut search = Search {
        universe,
        oracle,
        visited: HashMap::new(),
        min_pos: MinimalSetFamily::new(),
        max_neg: MaximalSetFamily::with_universe(universe),
        rng: StdRng::seed_from_u64(config.seed),
        stats: WalkStats::default(),
    };
    for &n in known_negatives {
        search.max_neg.add(n);
        search.visited.insert(n, Status::Negative);
    }

    // The empty set: positive means it is the unique minimal positive
    // (e.g. a constant column for the FD oracle, a ≤1-row table for UCCs).
    if search.classify(&ColumnSet::empty()) == Status::Positive {
        search.stats.flush(1, 0);
        return WalkResult {
            minimal_positives: vec![ColumnSet::empty()],
            maximal_negatives: Vec::new(),
            stats: search.stats,
        };
    }

    for &p in known_positives {
        search.visited.insert(p, Status::Positive);
        search.minimize_positive(p);
    }

    // Prior knowledge may already certify completeness: if every minimal
    // transversal of the complements of the known negatives is a known
    // minimal positive, the duality condition the hole loop converges to
    // holds before any walking. This is the common case when re-minimizing
    // inside a box of a universe an earlier exact phase already solved; the
    // singleton walks below would only re-derive known classifications,
    // which on wide tables is the dominant cost of the entire phase.
    // (An empty transversal family arises only when the universe itself is
    // a known negative, in which case "no positives" is exact.)
    if !known_negatives.is_empty() || !known_positives.is_empty() {
        search.stats.hole_rounds += 1;
        let edges = complement_family(search.max_neg.sets(), &universe);
        let transversals = minimal_hitting_sets(&edges, &universe);
        if transversals.iter().all(|t| search.min_pos.sets().contains(t)) {
            let mut minimal_positives = search.min_pos.sets().to_vec();
            minimal_positives.sort();
            let mut maximal_negatives = search.max_neg.sets().to_vec();
            maximal_negatives.sort();
            search.stats.flush(minimal_positives.len(), maximal_negatives.len());
            return WalkResult { minimal_positives, maximal_negatives, stats: search.stats };
        }
    }

    // Seed walks from every singleton, in random order like DUCC.
    let mut seeds: Vec<ColumnSet> = universe.iter().map(ColumnSet::single).collect();
    seeds.shuffle(&mut search.rng);
    for seed in seeds {
        search.walk_from(seed);
    }

    // Hole-filling loop: converges when duality certifies completeness.
    loop {
        search.stats.hole_rounds += 1;
        let edges = complement_family(search.max_neg.sets(), &universe);
        let transversals = minimal_hitting_sets(&edges, &universe);
        let mut progressed = false;
        for hole in transversals {
            if search.min_pos.sets().contains(&hole) {
                continue;
            }
            search.stats.holes_checked += 1;
            match search.classify(&hole) {
                Status::Positive => search.minimize_positive(hole),
                Status::Negative => search.maximize_negative(hole),
            }
            progressed = true;
        }
        if !progressed {
            break;
        }
    }

    let mut minimal_positives = search.min_pos.sets().to_vec();
    minimal_positives.sort();
    let mut maximal_negatives = search.max_neg.sets().to_vec();
    maximal_negatives.sort();
    search.stats.flush(minimal_positives.len(), maximal_negatives.len());
    WalkResult { minimal_positives, maximal_negatives, stats: search.stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(cols: &[usize]) -> ColumnSet {
        ColumnSet::from_indices(cols.iter().copied())
    }

    /// Oracle defined by explicit minimal positives: X positive iff it
    /// contains one of them.
    struct FamilyOracle {
        minimal: Vec<ColumnSet>,
        calls: u64,
    }

    impl MonotoneOracle for FamilyOracle {
        fn check(&mut self, set: &ColumnSet) -> bool {
            self.calls += 1;
            self.minimal.iter().any(|m| m.is_subset_of(set))
        }
    }

    fn run(universe: usize, minimal: Vec<ColumnSet>) -> WalkResult {
        let mut oracle = FamilyOracle { minimal, calls: 0 };
        find_minimal_positives(ColumnSet::full(universe), &mut oracle, &WalkConfig::default(), &[])
    }

    #[test]
    fn single_minimal_singleton() {
        let r = run(4, vec![cs(&[2])]);
        assert_eq!(r.minimal_positives, vec![cs(&[2])]);
    }

    #[test]
    fn empty_set_positive_short_circuits() {
        let r = run(4, vec![ColumnSet::empty()]);
        assert_eq!(r.minimal_positives, vec![ColumnSet::empty()]);
        assert!(r.maximal_negatives.is_empty());
    }

    #[test]
    fn no_positives_at_all() {
        let mut oracle = |_: &ColumnSet| false;
        let r =
            find_minimal_positives(ColumnSet::full(3), &mut oracle, &WalkConfig::default(), &[]);
        assert!(r.minimal_positives.is_empty());
        assert_eq!(r.maximal_negatives, vec![ColumnSet::full(3)]);
    }

    #[test]
    fn full_set_only() {
        let r = run(4, vec![ColumnSet::full(4)]);
        assert_eq!(r.minimal_positives, vec![ColumnSet::full(4)]);
    }

    #[test]
    fn overlapping_minimal_positives() {
        let want = vec![cs(&[0, 1]), cs(&[1, 2]), cs(&[3])];
        let r = run(5, want.clone());
        let mut want = want;
        want.sort();
        assert_eq!(r.minimal_positives, want);
    }

    #[test]
    fn maximal_negatives_are_duals() {
        // Minimal positives {0,1} and {2} over 3 columns.
        // Negatives: sets containing neither → subsets of {0,2}^c .. compute:
        // a set is negative iff it misses {2} and does not contain {0,1}.
        // Maximal negatives: {0} ∪ ... → {0}, {1}: {0} misses 2, no {0,1}. {1} same.
        // Actually maximal: {0} can grow to... {0} ∪ {1} contains {0,1} → positive.
        // {0} ∪ {2} positive. So maximal negatives are {0} and {1}.
        let r = run(3, vec![cs(&[0, 1]), cs(&[2])]);
        assert_eq!(r.maximal_negatives, vec![cs(&[0]), cs(&[1])]);
    }

    #[test]
    fn known_negatives_reduce_oracle_calls() {
        let minimal = vec![cs(&[0, 1, 2])];
        let mut o1 = FamilyOracle { minimal: minimal.clone(), calls: 0 };
        let r1 = find_minimal_positives(ColumnSet::full(6), &mut o1, &WalkConfig::default(), &[]);
        // Tell the search the largest negatives up front.
        let negs: Vec<ColumnSet> = r1.maximal_negatives.clone();
        let mut o2 = FamilyOracle { minimal, calls: 0 };
        let r2 = find_minimal_positives(ColumnSet::full(6), &mut o2, &WalkConfig::default(), &negs);
        assert_eq!(r1.minimal_positives, r2.minimal_positives);
        assert!(
            o2.calls < o1.calls,
            "seeded walk should call the oracle less ({} vs {})",
            o2.calls,
            o1.calls
        );
    }

    #[test]
    fn seeded_positives_preserve_exactness() {
        let fam = vec![cs(&[0, 1]), cs(&[2, 3])];
        let mut o1 = FamilyOracle { minimal: fam.clone(), calls: 0 };
        let r1 = find_minimal_positives(ColumnSet::full(5), &mut o1, &WalkConfig::default(), &[]);
        // Seed with *non-minimal* positive supersets.
        let seeds = vec![cs(&[0, 1, 4]), cs(&[2, 3, 4])];
        let mut o2 = FamilyOracle { minimal: fam, calls: 0 };
        let r2 = find_minimal_positives_seeded(
            ColumnSet::full(5),
            &mut o2,
            &WalkConfig::default(),
            &[],
            &seeds,
        );
        assert_eq!(r1.minimal_positives, r2.minimal_positives);
        assert_eq!(r1.maximal_negatives, r2.maximal_negatives);
    }

    #[test]
    fn deterministic_given_seed() {
        let fam = vec![cs(&[0, 3]), cs(&[1, 2, 4])];
        let mut o1 = FamilyOracle { minimal: fam.clone(), calls: 0 };
        let mut o2 = FamilyOracle { minimal: fam, calls: 0 };
        let cfg = WalkConfig { seed: 99 };
        let r1 = find_minimal_positives(ColumnSet::full(6), &mut o1, &cfg, &[]);
        let r2 = find_minimal_positives(ColumnSet::full(6), &mut o2, &cfg, &[]);
        assert_eq!(r1.minimal_positives, r2.minimal_positives);
        assert_eq!(r1.stats, r2.stats);
    }

    #[test]
    fn walk_stats_flush_into_ambient_registry() {
        let metrics = muds_obs::Metrics::new();
        let _guard = metrics.install();
        let r = run(5, vec![cs(&[0, 1]), cs(&[3])]);
        let snap = metrics.drain_snapshot();
        assert_eq!(snap.counter("walk.runs"), 1);
        assert_eq!(snap.counter("walk.oracle_calls"), r.stats.oracle_calls);
        assert_eq!(snap.counter("walk.nodes_visited"), r.stats.nodes_visited);
        assert_eq!(snap.counter("walk.minimal_positives"), r.minimal_positives.len() as u64);
        assert_eq!(snap.counter("walk.maximal_negatives"), r.maximal_negatives.len() as u64);
    }

    #[test]
    fn empty_positive_walk_still_flushes() {
        let metrics = muds_obs::Metrics::new();
        let _guard = metrics.install();
        let _ = run(4, vec![ColumnSet::empty()]);
        let snap = metrics.drain_snapshot();
        assert_eq!(snap.counter("walk.runs"), 1);
        assert_eq!(snap.counter("walk.minimal_positives"), 1);
    }

    #[test]
    fn randomized_equivalence_with_ground_truth() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(123);
        for case in 0..80 {
            let n = rng.gen_range(1..=8);
            let k = rng.gen_range(1..=4);
            // Random antichain via MinimalSetFamily.
            let mut fam = crate::set_trie::MinimalSetFamily::new();
            for _ in 0..k {
                let size = rng.gen_range(1..=n);
                fam.add(ColumnSet::from_indices((0..size).map(|_| rng.gen_range(0..n))));
            }
            let mut want = fam.sets().to_vec();
            want.sort();
            let r = run(n, want.clone());
            assert_eq!(r.minimal_positives, want, "case {case}");
            // Verify maximal negatives truly are negative and maximal.
            for neg in &r.maximal_negatives {
                assert!(!want.iter().any(|m| m.is_subset_of(neg)));
                for sup in neg.direct_supersets(&ColumnSet::full(n)) {
                    assert!(
                        want.iter().any(|m| m.is_subset_of(&sup)),
                        "case {case}: {neg:?} not maximal"
                    );
                }
            }
        }
    }
}
