//! Lattice machinery for holistic data profiling.
//!
//! This crate provides the search-space data structures shared by every
//! discovery algorithm in the workspace (the reproduction of *"Holistic
//! Data Profiling: Simultaneous Discovery of Various Metadata"*, EDBT 2016):
//!
//! * [`ColumnSet`] — a 256-bit column-index bitset; nodes of the attribute
//!   lattice (Figure 1 of the paper).
//! * [`SetTrie`] — the prefix tree of §5.4 with subset and superset
//!   (connector look-up) queries, plus the [`MinimalSetFamily`] /
//!   [`MaximalSetFamily`] antichain maintainers built on it.
//! * [`minimal_hitting_sets`] — MMCS hypergraph dualization, the basis of
//!   DUCC's "hole" detection.
//! * [`find_minimal_positives`] — the generic DUCC-style random walk over a
//!   [`MonotoneOracle`], reused by MUDS' per-right-hand-side sub-lattice
//!   traversal (§5.2).
//! * [`apriori_gen`] — level-wise candidate generation for TANE, FUN and
//!   the level-wise UCC baseline.

mod column_set;
mod hitting_set;
mod level;
mod set_trie;
mod walk;

pub use column_set::{ColumnIter, ColumnSet, MAX_COLUMNS};
pub use hitting_set::{complement_family, minimal_hitting_sets};
pub use level::{apriori_gen, first_level};
pub use set_trie::{MaximalSetFamily, MinimalSetFamily, SetTrie};
pub use walk::{
    find_minimal_positives, find_minimal_positives_seeded, MonotoneOracle, WalkConfig, WalkResult,
    WalkStats,
};
