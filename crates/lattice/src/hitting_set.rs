//! Minimal hitting sets (hypergraph transversals).
//!
//! DUCC's hole detection (§2.2 of the paper) relies on a classic duality:
//! for a monotone property over the attribute lattice (uniqueness, or
//! "determines column A"), the *minimal positive* sets are exactly the
//! minimal hitting sets of the complements of the *maximal negative* sets.
//! After a random-walk pass, DUCC "identifies and fills these holes by
//! comparing the found minimal UCCs with the complement of the found
//! maximal non-UCCs" — that comparison is a minimal-transversal
//! computation, implemented here with the MMCS algorithm of Murakami and
//! Uno (critical-edge pruning, no duplicates).

use crate::ColumnSet;

/// Computes all minimal hitting sets of `edges` over `universe`.
///
/// A hitting set H ⊆ universe intersects every edge; it is minimal if no
/// proper subset is a hitting set.
///
/// Conventions:
/// * no edges → the empty set is the unique minimal hitting set;
/// * any empty edge → no hitting set exists (empty result).
pub fn minimal_hitting_sets(edges: &[ColumnSet], universe: &ColumnSet) -> Vec<ColumnSet> {
    if edges.iter().any(|e| e.intersection(universe).is_empty()) {
        return Vec::new();
    }
    if edges.is_empty() {
        return vec![ColumnSet::empty()];
    }
    let edges: Vec<ColumnSet> = edges.iter().map(|e| e.intersection(universe)).collect();
    let mut out = Vec::new();
    let mut s = ColumnSet::empty();
    mmcs(&edges, *universe, &mut s, &mut out);
    out
}

/// Recursive MMCS step.
///
/// `cand` is the set of vertices still allowed to be added on this branch;
/// shrinking it between sibling branches is what prevents duplicate outputs.
fn mmcs(edges: &[ColumnSet], mut cand: ColumnSet, s: &mut ColumnSet, out: &mut Vec<ColumnSet>) {
    // Pick the uncovered edge with the fewest candidate vertices.
    let mut chosen: Option<ColumnSet> = None;
    let mut chosen_size = usize::MAX;
    for e in edges {
        if !e.intersects(s) {
            let c = e.intersection(&cand);
            let size = c.cardinality();
            if size == 0 {
                return; // uncovered edge cannot be hit any more: dead branch
            }
            if size < chosen_size {
                chosen_size = size;
                chosen = Some(c);
            }
        }
    }
    let Some(c) = chosen else {
        out.push(*s); // every edge covered; crit-invariant guarantees minimality
        return;
    };

    cand = cand.difference(&c);
    for v in c.iter() {
        s.insert(v);
        if crit_invariant_holds(edges, s) {
            mmcs(edges, cand, s, out);
        }
        s.remove(v);
        cand.insert(v); // v becomes available again for later sibling branches
    }
}

/// True iff every vertex of `s` has a *critical* edge: an edge whose only
/// intersection with `s` is that vertex. A vertex without a critical edge is
/// redundant, so `s` can never extend to a minimal hitting set.
fn crit_invariant_holds(edges: &[ColumnSet], s: &ColumnSet) -> bool {
    'vertex: for v in s.iter() {
        let rest = s.without(v);
        for e in edges {
            if e.contains(v) && !e.intersects(&rest) {
                continue 'vertex;
            }
        }
        return false;
    }
    true
}

/// Convenience: edges obtained by complementing each set of `family` within
/// `universe`. This is the input DUCC feeds to the transversal computation
/// (complements of the maximal non-UCCs).
pub fn complement_family(family: &[ColumnSet], universe: &ColumnSet) -> Vec<ColumnSet> {
    family.iter().map(|s| universe.difference(s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(cols: &[usize]) -> ColumnSet {
        ColumnSet::from_indices(cols.iter().copied())
    }

    /// Brute-force oracle for cross-checking.
    fn naive_minimal_hitting_sets(edges: &[ColumnSet], universe: &ColumnSet) -> Vec<ColumnSet> {
        let cols = universe.to_vec();
        let n = cols.len();
        let mut hitting: Vec<ColumnSet> = Vec::new();
        for mask in 0..(1u64 << n) {
            let s = ColumnSet::from_indices(
                cols.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, &c)| c),
            );
            if edges.iter().all(|e| e.intersects(&s)) {
                hitting.push(s);
            }
        }
        let mut minimal: Vec<ColumnSet> = hitting
            .iter()
            .copied()
            .filter(|h| !hitting.iter().any(|o| o.is_proper_subset_of(h)))
            .collect();
        minimal.sort();
        minimal
    }

    #[test]
    fn no_edges_yields_empty_set() {
        assert_eq!(minimal_hitting_sets(&[], &ColumnSet::full(4)), vec![ColumnSet::empty()]);
    }

    #[test]
    fn empty_edge_is_unhittable() {
        assert!(minimal_hitting_sets(&[ColumnSet::empty()], &ColumnSet::full(4)).is_empty());
        // An edge entirely outside the universe behaves like an empty edge.
        assert!(minimal_hitting_sets(&[cs(&[9])], &ColumnSet::full(4)).is_empty());
    }

    #[test]
    fn single_edge() {
        let mut got = minimal_hitting_sets(&[cs(&[1, 3])], &ColumnSet::full(5));
        got.sort();
        assert_eq!(got, vec![cs(&[1]), cs(&[3])]);
    }

    #[test]
    fn disjoint_edges_produce_cross_product() {
        let mut got = minimal_hitting_sets(&[cs(&[0, 1]), cs(&[2, 3])], &ColumnSet::full(4));
        got.sort();
        let mut want = vec![cs(&[0, 2]), cs(&[0, 3]), cs(&[1, 2]), cs(&[1, 3])];
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn overlapping_edges_share_vertices() {
        // Edges {0,1}, {1,2}: transversals {1}, {0,2}.
        let mut got = minimal_hitting_sets(&[cs(&[0, 1]), cs(&[1, 2])], &ColumnSet::full(3));
        got.sort();
        let mut want = vec![cs(&[1]), cs(&[0, 2])];
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn triangle_hypergraph() {
        // Edges = all pairs of {0,1,2}; minimal transversals = all pairs.
        let edges = [cs(&[0, 1]), cs(&[0, 2]), cs(&[1, 2])];
        let mut got = minimal_hitting_sets(&edges, &ColumnSet::full(3));
        got.sort();
        assert_eq!(got, vec![cs(&[0, 1]), cs(&[0, 2]), cs(&[1, 2])]);
    }

    #[test]
    fn ucc_duality_example() {
        // Relation with 4 columns; maximal non-uniques {0,1}, {1,2,3}.
        // Complements: {2,3}, {0}. Minimal transversals: {0,2}, {0,3}.
        let universe = ColumnSet::full(4);
        let edges = complement_family(&[cs(&[0, 1]), cs(&[1, 2, 3])], &universe);
        let mut got = minimal_hitting_sets(&edges, &universe);
        got.sort();
        assert_eq!(got, vec![cs(&[0, 2]), cs(&[0, 3])]);
    }

    #[test]
    fn randomized_cross_check_against_brute_force() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        for case in 0..200 {
            let n = rng.gen_range(1..=7);
            let universe = ColumnSet::full(n);
            let m = rng.gen_range(0..=6);
            let edges: Vec<ColumnSet> = (0..m)
                .map(|_| {
                    let k = rng.gen_range(1..=n);
                    ColumnSet::from_indices((0..k).map(|_| rng.gen_range(0..n)))
                })
                .collect();
            let mut got = minimal_hitting_sets(&edges, &universe);
            got.sort();
            let want = naive_minimal_hitting_sets(&edges, &universe);
            assert_eq!(got, want, "case {case}: edges {edges:?} universe {n}");
        }
    }

    #[test]
    fn outputs_are_unique_and_minimal() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let n = rng.gen_range(2..=10);
            let universe = ColumnSet::full(n);
            let edges: Vec<ColumnSet> = (0..rng.gen_range(1..=8))
                .map(|_| {
                    ColumnSet::from_indices((0..rng.gen_range(1..=4)).map(|_| rng.gen_range(0..n)))
                })
                .collect();
            let got = minimal_hitting_sets(&edges, &universe);
            let dedup: std::collections::BTreeSet<_> = got.iter().copied().collect();
            assert_eq!(dedup.len(), got.len(), "duplicates produced");
            for h in &got {
                assert!(edges.iter().all(|e| e.intersects(h)), "{h:?} misses an edge");
                for s in h.direct_subsets() {
                    assert!(
                        !edges.iter().all(|e| e.intersects(&s)),
                        "{h:?} is not minimal: {s:?} also hits"
                    );
                }
            }
        }
    }
}
