//! Deterministic quantile sketch for the streaming stats accumulator.
//!
//! A KLL-style compactor hierarchy with one deliberate divergence from the
//! published algorithm: compaction keeps the *even-indexed* survivors of
//! each sorted buffer instead of flipping a coin per compaction. That
//! sacrifices the randomized bound's constant factor but makes the sketch a
//! pure function of the insertion sequence — the property every fuzz
//! invariant in this workspace leans on (`stats ≡ from-scratch` after an
//! incremental delta only holds if identical value streams produce
//! identical sketches).
//!
//! **Rank-error bound.** Level `h` holds items of weight `2^h` in a buffer
//! of capacity `K`. A compaction at level `h` collapses sorted pairs into
//! their even-indexed representative, shifting any query rank by at most
//! `2^h`. Level `h` compacts at most `2n / (K·2^h)` times over `n` inserts,
//! so each level contributes at most `2n/K` rank error and the total error
//! after `L` levels is bounded by `2·n·L / K` — the value
//! [`QuantileSketch::rank_error_bound`] reports. With `K = 256` the sketch
//! is *exact* below 256 inserts (no compaction ever runs), and since `L`
//! grows as `log2(n/K)` the relative bound `2·L/K` stays under 10% past
//! a million inserts (observed error runs far below the bound; the fuzz
//! oracle checks against the bound, the bench scenario measures the cost).

/// Buffer capacity per level. 256 keeps the whole sketch a few KiB while
/// holding the documented error under 1% for every dataset in the bench
/// matrix.
const CAPACITY: usize = 256;

/// Deterministic mergeless quantile sketch over finite `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// `levels[h]` holds unsorted items of weight `2^h`.
    levels: Vec<Vec<f64>>,
    /// Total inserted values (= total retained weight).
    count: u64,
    /// Compactions performed, for the `stats.sketch_compactions` meter.
    compactions: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    pub fn new() -> QuantileSketch {
        QuantileSketch { levels: vec![Vec::new()], count: 0, compactions: 0 }
    }

    /// Inserts one value. Non-finite values are the caller's bug: the
    /// accumulator only feeds values that already passed the numeric
    /// format matcher.
    pub fn insert(&mut self, value: f64) {
        debug_assert!(value.is_finite(), "sketch only accepts finite values");
        self.count += 1;
        // lint:allow(panic): the constructor seeds level 0; levels never shrink.
        self.levels[0].push(value);
        let mut h = 0;
        while self.levels[h].len() >= CAPACITY {
            self.compact(h);
            h += 1;
        }
    }

    /// Collapses sorted pairs of level `h` into their even-indexed
    /// representative one level up (weight doubles, total weight is
    /// preserved). An odd leftover item stays at level `h`.
    fn compact(&mut self, h: usize) {
        if self.levels.len() == h + 1 {
            self.levels.push(Vec::new());
        }
        let mut buf = std::mem::take(&mut self.levels[h]);
        buf.sort_unstable_by(f64::total_cmp);
        let pairs = buf.len() / 2;
        if buf.len() % 2 == 1 {
            self.levels[h].push(buf[buf.len() - 1]);
        }
        for i in 0..pairs {
            let survivor = buf[2 * i];
            self.levels[h + 1].push(survivor);
        }
        self.compactions += 1;
    }

    /// Total inserted values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Compactions performed so far (each one is a sort of ≤ `K` items).
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Upper bound on `|rank(reported) − requested rank|`: `2·n·L / K`
    /// where `L` is the number of levels in use (see module docs). Zero
    /// while no compaction has run — the sketch is exact then.
    pub fn rank_error_bound(&self) -> u64 {
        if self.compactions == 0 {
            return 0;
        }
        2 * self.count * self.levels.len() as u64 / CAPACITY as u64
    }

    /// The value whose weighted rank is nearest `phi·count` (`phi` in
    /// `[0, 1]`). `None` on an empty sketch.
    pub fn quantile(&self, phi: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let mut items: Vec<(f64, u64)> = Vec::new();
        for (h, level) in self.levels.iter().enumerate() {
            let weight = 1u64 << h;
            items.extend(level.iter().map(|&v| (v, weight)));
        }
        items.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        let target = ((phi.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (value, weight) in &items {
            cumulative += weight;
            if cumulative >= target {
                return Some(*value);
            }
        }
        items.last().map(|(v, _)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn small_inputs_are_exact() {
        let mut s = QuantileSketch::new();
        for v in 1..=100 {
            s.insert(v as f64);
        }
        assert_eq!(s.compactions(), 0);
        assert_eq!(s.rank_error_bound(), 0);
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(0.5), Some(50.0));
        assert_eq!(s.quantile(1.0), Some(100.0));
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = QuantileSketch::new();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.count(), 0);
        assert_eq!(s.rank_error_bound(), 0);
    }

    #[test]
    fn large_inputs_stay_within_the_documented_bound() {
        let mut s = QuantileSketch::new();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000u64;
        let mut values: Vec<f64> =
            (0..n).map(|_| rng.gen_range(0..1_000_000u64) as f64 / 1000.0).collect();
        for &v in &values {
            s.insert(v);
        }
        values.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let bound = s.rank_error_bound();
        assert!(bound > 0, "50k inserts must compact");
        assert!(bound < n / 10, "bound stays under 10% at 50k inserts, got {bound}");
        for &phi in &[0.25, 0.5, 0.75, 0.99] {
            let est = s.quantile(phi).unwrap();
            // True rank range of the estimate in the sorted data.
            let lo = values.partition_point(|&v| v < est) as u64;
            let hi = values.partition_point(|&v| v <= est) as u64;
            let target = (phi * n as f64).ceil() as u64;
            let err = if target < lo { lo - target } else { target.saturating_sub(hi) };
            assert!(err <= bound, "phi={phi}: rank error {err} exceeds bound {bound}");
        }
    }

    #[test]
    fn sketch_is_deterministic_in_the_input_sequence() {
        let build = || {
            let mut s = QuantileSketch::new();
            let mut rng = StdRng::seed_from_u64(11);
            for _ in 0..10_000 {
                s.insert(rng.gen_range(0..100_000i64) as f64 / 1000.0 - 50.0);
            }
            s
        };
        let (a, b) = (build(), build());
        assert_eq!(a, b);
        assert_eq!(a.quantile(0.5), b.quantile(0.5));
    }

    #[test]
    fn total_weight_is_preserved_across_compactions() {
        let mut s = QuantileSketch::new();
        for v in 0..10_000 {
            s.insert(v as f64);
        }
        let retained: u64 =
            s.levels.iter().enumerate().map(|(h, level)| (1u64 << h) * level.len() as u64).sum();
        assert_eq!(retained, s.count());
    }
}
