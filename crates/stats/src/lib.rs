//! Single-scan column statistics on top of the profiler's shared
//! structures (DESIGN.md §15).
//!
//! The paper's holistic thesis — one shared scan should yield *all* the
//! metadata a profiler can produce — extends past dependencies: the
//! dictionary-encoded column store already holds everything a per-column
//! statistics profile needs. The dictionary gives exact distinct counts
//! and lexicographic min/max for free; one pass over the codes yields the
//! per-value histogram that entropy, duplication, and count-weighted
//! length stats derive from; and the same pass streams parsed numeric
//! values into a deterministic quantile sketch. Formats are detected once
//! per *distinct* value (dictionary entry) and aggregated count-weighted,
//! so format detection costs `O(distinct · len)`, not `O(rows · len)`.
//!
//! On top of the raw stats, [`compute_stats`] classifies the discovered
//! dependencies: minimal UCCs become ranked identifier (primary-key)
//! candidates, and unary INDs whose referenced column is a single-column
//! key become foreign-key candidates with inclusion coverage.
//!
//! Work is metered under the `stats.*` counters of the §7 catalogue.

mod format;
mod sketch;

pub use format::{detect_format, SemanticType, ValueFormat};
pub use sketch::QuantileSketch;

use muds_table::Table;

/// Version of the `column_profiles` / `relationships` payload sections.
/// Bump on any wire-visible change to the structures below.
pub const STATS_SCHEMA_VERSION: u64 = 1;

/// Numeric moments and approximate quantiles of a fully numeric column.
/// Present only when *every* non-NULL value matched the integer or decimal
/// format and parsed to a finite `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericStats {
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    /// Population variance (`Σ(x−μ)²/n`), clamped at zero against
    /// floating-point cancellation.
    pub variance: f64,
    /// Approximate quartiles from the deterministic sketch; the rank-error
    /// bound is documented in [`sketch`] (exact below 256 values).
    pub q25: f64,
    pub median: f64,
    pub q75: f64,
}

/// The full single-scan profile of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column index in the table's schema order.
    pub column: usize,
    pub rows: u64,
    pub nulls: u64,
    /// Exact distinct non-NULL values (the dictionary length).
    pub distinct: u64,
    /// `nulls / rows`; 0 for a zero-row column.
    pub null_fraction: f64,
    /// `distinct / non-NULL rows`; 1 means duplicate-free, 0 for an
    /// all-NULL or zero-row column.
    pub distinct_fraction: f64,
    /// Shannon entropy (bits) of the non-NULL value distribution.
    pub entropy: f64,
    /// Lexicographic extremes over non-NULL values (dictionary ends).
    pub min: Option<String>,
    pub max: Option<String>,
    /// Length stats in characters over non-NULL occurrences,
    /// count-weighted.
    pub min_length: u64,
    pub max_length: u64,
    pub avg_length: f64,
    /// Dominant syntactic format and the fraction of non-NULL occurrences
    /// matching it.
    pub format: ValueFormat,
    pub format_consistency: f64,
    pub semantic_type: SemanticType,
    /// `(2·completeness + format_consistency) / 3` — see DESIGN.md §15.
    pub quality: f64,
    pub numeric: Option<NumericStats>,
}

/// A minimal UCC ranked as a primary-key / identifier candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct IdentifierCandidate {
    /// Member columns, ascending.
    pub columns: Vec<usize>,
    /// True iff every member column is NULL-free.
    pub null_free: bool,
    /// `(1.0 if null-free else 0.5) / |columns|`: short NULL-free keys
    /// rank first, matching how a catalog would pick a primary key.
    pub score: f64,
}

/// A unary IND typed as a foreign-key candidate: the referenced column is
/// itself a single-column key, so the inclusion is a join path.
#[derive(Debug, Clone, PartialEq)]
pub struct FkCandidate {
    pub dependent: usize,
    pub referenced: usize,
    /// `distinct(dependent) / distinct(referenced)` — how much of the
    /// referenced key space the dependent side actually uses. 1.0 when
    /// the referenced column is empty (vacuous inclusion).
    pub coverage: f64,
}

/// Everything the stats layer adds to a profile: per-column statistics
/// plus the dependency classification.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsProfile {
    pub columns: Vec<ColumnStats>,
    pub identifiers: Vec<IdentifierCandidate>,
    pub foreign_keys: Vec<FkCandidate>,
}

/// Profiles every column of `table` in one scan each and classifies the
/// discovered dependencies. `uccs` are the minimal UCCs (as ascending
/// column-index lists) and `unary_inds` the `(dependent, referenced)`
/// pairs, both exactly as the dependency algorithms report them.
pub fn compute_stats(
    table: &Table,
    uccs: &[Vec<usize>],
    unary_inds: &[(usize, usize)],
) -> StatsProfile {
    let mut columns: Vec<ColumnStats> =
        (0..table.num_columns()).map(|c| profile_column(table, c)).collect();
    let identifiers = classify_identifiers(&columns, uccs);
    let foreign_keys = classify_foreign_keys(&columns, uccs, unary_inds);
    // Single-column NULL-free keys are identifiers no matter what their
    // values look like — the UCC is stronger evidence than the format.
    for id in identifiers.iter().filter(|id| id.null_free && id.columns.len() == 1) {
        // lint:allow(panic): the filter pins columns.len() == 1.
        columns[id.columns[0]].semantic_type = SemanticType::Identifier;
    }
    muds_obs::add("stats.identifier_candidates", identifiers.len() as u64);
    muds_obs::add("stats.fk_candidates", foreign_keys.len() as u64);
    StatsProfile { columns, identifiers, foreign_keys }
}

/// One column's profile: a dictionary pass for formats/lengths and a code
/// pass for the histogram and the numeric stream — the "extended decode
/// pass" of §15.
fn profile_column(table: &Table, index: usize) -> ColumnStats {
    let column = table.column(index);
    let rows = column.len() as u64;
    let nulls = column.null_count() as u64;
    let non_null = rows - nulls;
    let dictionary = column.sorted_distinct_values();
    let distinct = dictionary.len() as u64;

    // Dictionary pass: per-distinct-value format and parse results, reused
    // count-weighted below so no per-row string work ever happens.
    let formats: Vec<ValueFormat> = dictionary.iter().map(|v| detect_format(v)).collect();
    let parsed: Vec<Option<f64>> = dictionary
        .iter()
        .zip(&formats)
        .map(|(v, f)| match f {
            ValueFormat::Integer | ValueFormat::Decimal => {
                v.parse::<f64>().ok().filter(|x| x.is_finite())
            }
            _ => None,
        })
        .collect();

    // Code pass: histogram plus the numeric stream in row order.
    let counts = column.value_counts();
    let mut sketch = QuantileSketch::new();
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    let mut numeric_count = 0u64;
    let mut numeric_min = f64::INFINITY;
    let mut numeric_max = f64::NEG_INFINITY;
    for &code in column.codes() {
        if let Some(Some(x)) = parsed.get(code as usize) {
            sketch.insert(*x);
            sum += x;
            sum_sq += x * x;
            numeric_count += 1;
            numeric_min = numeric_min.min(*x);
            numeric_max = numeric_max.max(*x);
        }
    }
    muds_obs::add("stats.values_scanned", rows);
    muds_obs::add("stats.sketch_compactions", sketch.compactions());

    // Aggregation over the histogram (count-weighted, O(distinct)).
    let mut entropy = 0.0f64;
    let mut format_counts = [0u64; ValueFormat::ALL.len()];
    let mut min_length = u64::MAX;
    let mut max_length = 0u64;
    let mut length_sum = 0u64;
    for (code, value) in dictionary.iter().enumerate() {
        let weight = counts[code];
        debug_assert!(weight > 0, "dictionary entries always have occurrences");
        let p = weight as f64 / non_null as f64;
        entropy -= p * p.log2();
        format_counts[formats[code].index()] += weight;
        let chars = value.chars().count() as u64;
        min_length = min_length.min(chars);
        max_length = max_length.max(chars);
        length_sum += weight * chars;
    }
    if non_null == 0 {
        (entropy, min_length) = (0.0, 0);
    }

    let (format, format_consistency) = if non_null == 0 {
        (ValueFormat::Empty, 1.0)
    } else {
        // Deterministic argmax: ties resolve in detection order
        // (max_by_key keeps the *last* max, so iterate reversed).
        let dominant = ValueFormat::ALL
            .into_iter()
            .rev()
            .max_by_key(|f| format_counts[f.index()])
            .unwrap_or(ValueFormat::Text);
        (dominant, format_counts[dominant.index()] as f64 / non_null as f64)
    };

    let null_fraction = if rows == 0 { 0.0 } else { nulls as f64 / rows as f64 };
    let distinct_fraction = if non_null == 0 { 0.0 } else { distinct as f64 / non_null as f64 };
    let completeness = 1.0 - null_fraction;
    let quality = (2.0 * completeness + format_consistency) / 3.0;

    let numeric = if numeric_count == non_null && non_null > 0 {
        let mean = sum / numeric_count as f64;
        let variance = (sum_sq / numeric_count as f64 - mean * mean).max(0.0);
        // The sketch saw numeric_count > 0 inserts, so quantiles exist;
        // the fallback is unreachable but keeps this path panic-free.
        Some(NumericStats {
            min: numeric_min,
            max: numeric_max,
            mean,
            variance,
            q25: sketch.quantile(0.25).unwrap_or(mean),
            median: sketch.quantile(0.5).unwrap_or(mean),
            q75: sketch.quantile(0.75).unwrap_or(mean),
        })
    } else {
        None
    };

    let semantic_type = semantic_for(format, distinct, distinct_fraction);
    muds_obs::add("stats.columns_profiled", 1);
    ColumnStats {
        column: index,
        rows,
        nulls,
        distinct,
        null_fraction,
        distinct_fraction,
        entropy,
        min: dictionary.first().cloned(),
        max: dictionary.last().cloned(),
        min_length,
        max_length,
        avg_length: if non_null == 0 { 0.0 } else { length_sum as f64 / non_null as f64 },
        format,
        format_consistency,
        semantic_type,
        quality,
        numeric,
    }
}

/// Format → semantic type, before the UCC-based identifier upgrade. The
/// precedence table is documented in DESIGN.md §15.
fn semantic_for(format: ValueFormat, distinct: u64, distinct_fraction: f64) -> SemanticType {
    match format {
        ValueFormat::Empty => SemanticType::Unknown,
        ValueFormat::Uuid => SemanticType::Identifier,
        ValueFormat::Bool => SemanticType::Flag,
        ValueFormat::Date => SemanticType::Timestamp,
        ValueFormat::Email => SemanticType::Contact,
        ValueFormat::Integer | ValueFormat::Decimal => SemanticType::Quantity,
        ValueFormat::Text => {
            if distinct <= 64 && distinct_fraction <= 0.5 {
                SemanticType::Category
            } else {
                SemanticType::Text
            }
        }
    }
}

/// Ranks minimal UCCs as identifier candidates: NULL-free beats nullable,
/// short beats wide, ties resolve on the column list.
fn classify_identifiers(columns: &[ColumnStats], uccs: &[Vec<usize>]) -> Vec<IdentifierCandidate> {
    let mut out: Vec<IdentifierCandidate> = uccs
        .iter()
        .filter(|ucc| !ucc.is_empty())
        .map(|ucc| {
            let null_free = ucc.iter().all(|&c| columns[c].nulls == 0);
            let base = if null_free { 1.0 } else { 0.5 };
            IdentifierCandidate { columns: ucc.clone(), null_free, score: base / ucc.len() as f64 }
        })
        .collect();
    out.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.columns.cmp(&b.columns)));
    out
}

/// Types unary INDs as FK candidates: `dep ⊆ ref` qualifies when `ref` is
/// itself a single-column minimal UCC (a key someone could join against).
fn classify_foreign_keys(
    columns: &[ColumnStats],
    uccs: &[Vec<usize>],
    unary_inds: &[(usize, usize)],
) -> Vec<FkCandidate> {
    // lint:allow(panic): the filter pins u.len() == 1.
    let unary_keys: Vec<usize> = uccs.iter().filter(|u| u.len() == 1).map(|u| u[0]).collect();
    unary_inds
        .iter()
        .filter(|(dep, referenced)| dep != referenced && unary_keys.contains(referenced))
        .map(|&(dependent, referenced)| {
            let ref_distinct = columns[referenced].distinct;
            let coverage = if ref_distinct == 0 {
                1.0
            } else {
                columns[dependent].distinct as f64 / ref_distinct as f64
            };
            FkCandidate { dependent, referenced, coverage }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: &[Vec<&str>]) -> Table {
        let cols = rows.first().map_or(0, |r| r.len());
        let names: Vec<String> = (0..cols).map(|c| format!("c{c}")).collect();
        let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let data: Vec<Vec<String>> =
            rows.iter().map(|r| r.iter().map(|v| v.to_string()).collect()).collect();
        Table::from_rows("t", &name_refs, &data).unwrap()
    }

    #[test]
    fn dictionary_derived_stats_are_exact() {
        let t = table(&[vec!["5", "a"], vec!["3", ""], vec!["5", "b"], vec!["1", "a"]]);
        let s = compute_stats(&t, &[vec![0]], &[]);
        let c0 = &s.columns[0];
        assert_eq!((c0.rows, c0.nulls, c0.distinct), (4, 0, 3));
        assert_eq!(c0.min.as_deref(), Some("1"));
        assert_eq!(c0.max.as_deref(), Some("5"));
        assert_eq!(c0.format, ValueFormat::Integer);
        assert_eq!(c0.format_consistency, 1.0);
        let n = c0.numeric.as_ref().expect("all-integer column has moments");
        assert_eq!(n.min, 1.0);
        assert_eq!(n.max, 5.0);
        assert_eq!(n.mean, 3.5);
        assert_eq!(n.median, 3.0, "rank-2 of [1,3,5,5]");
        let c1 = &s.columns[1];
        assert_eq!((c1.rows, c1.nulls, c1.distinct), (4, 1, 2));
        assert_eq!(c1.null_fraction, 0.25);
        assert!(c1.numeric.is_none());
        assert_eq!(c1.min.as_deref(), Some("a"));
        assert_eq!(c1.max.as_deref(), Some("b"));
    }

    #[test]
    fn entropy_and_distinct_fraction_track_the_distribution() {
        // Two values, 2 rows each: 1 bit of entropy.
        let t = table(&[vec!["x"], vec!["y"], vec!["x"], vec!["y"]]);
        let s = compute_stats(&t, &[], &[]);
        assert!((s.columns[0].entropy - 1.0).abs() < 1e-12);
        assert_eq!(s.columns[0].distinct_fraction, 0.5);
        // Constant column: zero entropy.
        let t = table(&[vec!["k"], vec!["k"]]);
        let s = compute_stats(&t, &[], &[]);
        assert_eq!(s.columns[0].entropy, 0.0);
    }

    #[test]
    fn identifier_ranking_prefers_null_free_short_keys() {
        let t = table(&[vec!["1", "a", "x"], vec!["2", "", "y"], vec!["3", "b", "x"]]);
        // Pretend discovery found: {0} (null-free), {1} (nullable),
        // {1,2} (wide).
        let s = compute_stats(&t, &[vec![0], vec![1], vec![1, 2]], &[]);
        let order: Vec<&[usize]> = s.identifiers.iter().map(|i| i.columns.as_slice()).collect();
        assert_eq!(order, [&[0][..], &[1][..], &[1, 2][..]]);
        assert!(s.identifiers[0].null_free);
        assert_eq!(s.identifiers[0].score, 1.0);
        assert!(!s.identifiers[1].null_free);
        assert_eq!(s.identifiers[1].score, 0.5);
        assert_eq!(s.columns[0].semantic_type, SemanticType::Identifier);
        assert_ne!(s.columns[1].semantic_type, SemanticType::Identifier);
    }

    #[test]
    fn fk_candidates_need_a_unary_key_on_the_referenced_side() {
        let t = table(&[vec!["1", "1"], vec!["2", "1"], vec!["3", "2"], vec!["4", "3"]]);
        // c1 ⊆ c0 and c0 is a key: FK candidate with coverage 3/4.
        let s = compute_stats(&t, &[vec![0]], &[(1, 0)]);
        assert_eq!(s.foreign_keys.len(), 1);
        let fk = &s.foreign_keys[0];
        assert_eq!((fk.dependent, fk.referenced), (1, 0));
        assert_eq!(fk.coverage, 0.75);
        // Same IND without the key: no candidate.
        let s = compute_stats(&t, &[], &[(1, 0)]);
        assert!(s.foreign_keys.is_empty());
    }

    #[test]
    fn semantic_types_follow_the_precedence_table() {
        let t = table(&[
            vec!["true", "2021-04-01", "a@b.co", "1.5", "red", "lorem ipsum dolor"],
            vec!["false", "2021-04-02", "c@d.co", "2.5", "red", "sit amet consectetur"],
            vec!["true", "2021-04-03", "e@f.co", "3.5", "blue", "adipiscing elit sed"],
            vec!["false", "2021-04-04", "g@h.co", "4.5", "blue", "do eiusmod tempor"],
        ]);
        let s = compute_stats(&t, &[], &[]);
        let types: Vec<SemanticType> = s.columns.iter().map(|c| c.semantic_type).collect();
        assert_eq!(
            types,
            [
                SemanticType::Flag,
                SemanticType::Timestamp,
                SemanticType::Contact,
                SemanticType::Quantity,
                SemanticType::Category,
                SemanticType::Text,
            ]
        );
        assert!(s.columns[3].numeric.is_some());
        assert!(s.columns[0].numeric.is_none());
    }

    #[test]
    fn degenerate_shapes_produce_finite_profiles() {
        for t in [
            table(&[]),                   // zero rows via empty input
            table(&[vec![""], vec![""]]), // all NULL
            table(&[vec!["x"]]),          // single cell
        ] {
            let s = compute_stats(&t, &[], &[]);
            for c in &s.columns {
                assert!(c.entropy.is_finite());
                assert!(c.quality.is_finite());
                assert!(c.null_fraction.is_finite());
                assert!(c.avg_length.is_finite());
                assert!((0.0..=1.0).contains(&c.quality), "quality in range: {c:?}");
            }
        }
        let t = table(&[vec![""], vec![""]]);
        let s = compute_stats(&t, &[], &[]);
        assert_eq!(s.columns[0].format, ValueFormat::Empty);
        assert_eq!(s.columns[0].semantic_type, SemanticType::Unknown);
        assert_eq!(s.columns[0].null_fraction, 1.0);
    }

    #[test]
    fn quality_rewards_complete_consistent_columns() {
        let clean = table(&[vec!["1"], vec!["2"], vec!["3"]]);
        let dirty = table(&[vec!["1"], vec![""], vec!["x y"]]);
        let q_clean = compute_stats(&clean, &[], &[]).columns[0].quality;
        let q_dirty = compute_stats(&dirty, &[], &[]).columns[0].quality;
        assert_eq!(q_clean, 1.0);
        assert!(q_dirty < q_clean);
    }
}
