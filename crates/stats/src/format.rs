//! Deterministic value-format detection and semantic typing.
//!
//! A small hand-rolled matcher — no regex crate — classifies each distinct
//! value into one [`ValueFormat`]. Matching is byte-structural and total:
//! every string lands in exactly one format, hostile unicode included
//! (multi-byte sequences simply fail the ASCII-structural matchers and
//! classify as [`ValueFormat::Text`]). Match order is fixed (UUID, date,
//! email, bool, integer, decimal, text) so classification is independent
//! of insertion order and identical across runs.

/// Syntactic shape of a value. Detected per distinct dictionary entry and
/// aggregated count-weighted per column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueFormat {
    /// Canonical hyphenated UUID (8-4-4-4-12 hex digits).
    Uuid,
    /// ISO calendar date `YYYY-MM-DD` with month/day range checks.
    Date,
    /// `local@domain.tld` with a dotted domain and no whitespace.
    Email,
    /// `true` / `false`, case-insensitive.
    Bool,
    /// Optional sign followed by ASCII digits.
    Integer,
    /// Optional sign, digits, one `.`, digits.
    Decimal,
    /// Everything else.
    Text,
    /// The column has no non-NULL values at all.
    Empty,
}

impl ValueFormat {
    /// Detection order and the index into per-column format tallies.
    pub const ALL: [ValueFormat; 8] = [
        ValueFormat::Uuid,
        ValueFormat::Date,
        ValueFormat::Email,
        ValueFormat::Bool,
        ValueFormat::Integer,
        ValueFormat::Decimal,
        ValueFormat::Text,
        ValueFormat::Empty,
    ];

    /// Wire name (lowercase, stable).
    pub fn name(&self) -> &'static str {
        match self {
            ValueFormat::Uuid => "uuid",
            ValueFormat::Date => "date",
            ValueFormat::Email => "email",
            ValueFormat::Bool => "bool",
            ValueFormat::Integer => "integer",
            ValueFormat::Decimal => "decimal",
            ValueFormat::Text => "text",
            ValueFormat::Empty => "empty",
        }
    }

    /// Inverse of [`ValueFormat::name`] for payload parsing.
    pub fn from_name(name: &str) -> Option<ValueFormat> {
        ValueFormat::ALL.into_iter().find(|f| f.name() == name)
    }

    /// Index into fixed-size tally arrays (`ValueFormat::ALL[f.index()]
    /// == f`); also used by oracle re-implementations in `muds-check`.
    pub fn index(&self) -> usize {
        match self {
            ValueFormat::Uuid => 0,
            ValueFormat::Date => 1,
            ValueFormat::Email => 2,
            ValueFormat::Bool => 3,
            ValueFormat::Integer => 4,
            ValueFormat::Decimal => 5,
            ValueFormat::Text => 6,
            ValueFormat::Empty => 7,
        }
    }
}

/// What a column *means*, derived from its dominant format, its value
/// distribution, and (for identifiers) the discovered minimal UCCs. The
/// precedence table lives in DESIGN.md §15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SemanticType {
    /// Null-free single-column key, or UUID-shaped values.
    Identifier,
    /// Boolean-shaped values.
    Flag,
    /// Calendar dates.
    Timestamp,
    /// Email addresses.
    Contact,
    /// Numeric measurements (integer or decimal).
    Quantity,
    /// Low-cardinality labels (distinct fraction ≤ ½ and ≤ 64 distinct).
    Category,
    /// Free text.
    Text,
    /// No non-NULL values to type.
    Unknown,
}

impl SemanticType {
    /// Wire name (lowercase, stable).
    pub fn name(&self) -> &'static str {
        match self {
            SemanticType::Identifier => "identifier",
            SemanticType::Flag => "flag",
            SemanticType::Timestamp => "timestamp",
            SemanticType::Contact => "contact",
            SemanticType::Quantity => "quantity",
            SemanticType::Category => "category",
            SemanticType::Text => "text",
            SemanticType::Unknown => "unknown",
        }
    }

    /// Inverse of [`SemanticType::name`] for payload parsing.
    pub fn from_name(name: &str) -> Option<SemanticType> {
        [
            SemanticType::Identifier,
            SemanticType::Flag,
            SemanticType::Timestamp,
            SemanticType::Contact,
            SemanticType::Quantity,
            SemanticType::Category,
            SemanticType::Text,
            SemanticType::Unknown,
        ]
        .into_iter()
        .find(|s| s.name() == name)
    }
}

/// Classifies one non-NULL value. Total and deterministic.
pub fn detect_format(value: &str) -> ValueFormat {
    if is_uuid(value) {
        ValueFormat::Uuid
    } else if is_date(value) {
        ValueFormat::Date
    } else if is_email(value) {
        ValueFormat::Email
    } else if value.eq_ignore_ascii_case("true") || value.eq_ignore_ascii_case("false") {
        ValueFormat::Bool
    } else if is_integer(value) {
        ValueFormat::Integer
    } else if is_decimal(value) {
        ValueFormat::Decimal
    } else {
        ValueFormat::Text
    }
}

fn is_uuid(v: &str) -> bool {
    let b = v.as_bytes();
    if b.len() != 36 {
        return false;
    }
    for (i, &c) in b.iter().enumerate() {
        match i {
            8 | 13 | 18 | 23 => {
                if c != b'-' {
                    return false;
                }
            }
            _ => {
                if !c.is_ascii_hexdigit() {
                    return false;
                }
            }
        }
    }
    true
}

fn is_date(v: &str) -> bool {
    let b = v.as_bytes();
    // lint:allow(panic): every index below is guarded by the len() == 10 check.
    if b.len() != 10 || b[4] != b'-' || b[7] != b'-' {
        return false;
    }
    if !b[..4].iter().chain(&b[5..7]).chain(&b[8..10]).all(u8::is_ascii_digit) {
        return false;
    }
    // lint:allow(panic): len() == 10 was established above.
    let month = (b[5] - b'0') * 10 + (b[6] - b'0');
    // lint:allow(panic): len() == 10 was established above.
    let day = (b[8] - b'0') * 10 + (b[9] - b'0');
    (1..=12).contains(&month) && (1..=31).contains(&day)
}

fn is_email(v: &str) -> bool {
    if v.chars().any(char::is_whitespace) {
        return false;
    }
    let Some((local, domain)) = v.split_once('@') else {
        return false;
    };
    if local.is_empty() || domain.contains('@') {
        return false;
    }
    // Domain needs an interior dot: `a.b`, not `.b`, `a.`, or `a`.
    match domain.split_once('.') {
        Some((head, tail)) => !head.is_empty() && !tail.is_empty() && !tail.ends_with('.'),
        None => false,
    }
}

fn is_integer(v: &str) -> bool {
    let digits = v.strip_prefix(['+', '-']).unwrap_or(v);
    !digits.is_empty() && digits.bytes().all(|c| c.is_ascii_digit())
}

fn is_decimal(v: &str) -> bool {
    let body = v.strip_prefix(['+', '-']).unwrap_or(v);
    match body.split_once('.') {
        Some((int, frac)) => {
            !int.is_empty()
                && !frac.is_empty()
                && int.bytes().all(|c| c.is_ascii_digit())
                && frac.bytes().all(|c| c.is_ascii_digit())
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_match_their_shapes() {
        assert_eq!(detect_format("550e8400-e29b-41d4-a716-446655440000"), ValueFormat::Uuid);
        assert_eq!(detect_format("2016-03-15"), ValueFormat::Date);
        assert_eq!(detect_format("ada@example.org"), ValueFormat::Email);
        assert_eq!(detect_format("true"), ValueFormat::Bool);
        assert_eq!(detect_format("FALSE"), ValueFormat::Bool);
        assert_eq!(detect_format("-42"), ValueFormat::Integer);
        assert_eq!(detect_format("+7"), ValueFormat::Integer);
        assert_eq!(detect_format("3.14"), ValueFormat::Decimal);
        assert_eq!(detect_format("-0.5"), ValueFormat::Decimal);
        assert_eq!(detect_format("hello world"), ValueFormat::Text);
    }

    #[test]
    fn near_misses_fall_through_to_text() {
        // One byte short of a UUID; bad month; bare `@`; trailing dot
        // domain; double dot local is still an email (liberal matcher).
        assert_eq!(detect_format("550e8400-e29b-41d4-a716-44665544000"), ValueFormat::Text);
        assert_eq!(detect_format("2016-13-01"), ValueFormat::Text);
        assert_eq!(detect_format("2016-03-15T10:00:00"), ValueFormat::Text);
        assert_eq!(detect_format("@example.org"), ValueFormat::Text);
        assert_eq!(detect_format("a@b"), ValueFormat::Text);
        assert_eq!(detect_format("a@b."), ValueFormat::Text);
        assert_eq!(detect_format("a b@c.d"), ValueFormat::Text);
        assert_eq!(detect_format("1."), ValueFormat::Text);
        assert_eq!(detect_format(".5"), ValueFormat::Text);
        assert_eq!(detect_format("1e99"), ValueFormat::Text, "no exponent form");
        assert_eq!(detect_format("NaN"), ValueFormat::Text);
        assert_eq!(detect_format("-"), ValueFormat::Text);
    }

    #[test]
    fn hostile_unicode_classifies_without_panicking() {
        for v in [
            "🦀🦀🦀",
            "é",
            "\u{202e}123",           // RTL override then digits
            "１２３",                // fullwidth digits are not ASCII digits
            "a\u{0301}@b\u{0301}.c", // combining marks inside an email shape
            "\u{0000}",
            "𝟙𝟚.𝟛𝟜",
        ] {
            let f = detect_format(v);
            assert!(
                f == ValueFormat::Text || f == ValueFormat::Email,
                "unexpected {f:?} for {v:?}"
            );
        }
    }

    #[test]
    fn names_round_trip() {
        for f in ValueFormat::ALL {
            assert_eq!(ValueFormat::from_name(f.name()), Some(f));
        }
        for s in [
            SemanticType::Identifier,
            SemanticType::Flag,
            SemanticType::Timestamp,
            SemanticType::Contact,
            SemanticType::Quantity,
            SemanticType::Category,
            SemanticType::Text,
            SemanticType::Unknown,
        ] {
            assert_eq!(SemanticType::from_name(s.name()), Some(s));
        }
        assert_eq!(ValueFormat::from_name("nope"), None);
        assert_eq!(SemanticType::from_name("nope"), None);
    }
}
