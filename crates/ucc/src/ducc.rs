//! DUCC: unique column combination discovery by random walk (§2.2).
//!
//! Heise et al.'s algorithm traverses the attribute lattice with a
//! depth-first random walk: from a non-unique node it moves to a random
//! direct superset, from a unique node to a random direct subset, pruning
//! with both the discovered minimal UCCs (supersets cannot be minimal) and
//! the maximal non-UCCs (subsets cannot be unique). Holes left by the
//! two-sided pruning are found via the hitting-set duality.
//!
//! The traversal itself lives in `muds_lattice::find_minimal_positives`
//! (MUDS reuses it verbatim for FD discovery, §5.2); this module plugs in
//! the uniqueness oracle backed by the shared PLI cache.

use muds_lattice::{find_minimal_positives, ColumnSet, WalkConfig, WalkStats};
use muds_pli::PliCache;

/// Configuration for a DUCC run.
#[derive(Debug, Clone, Default)]
pub struct DuccConfig {
    /// Random-walk settings (seed).
    pub walk: WalkConfig,
}

/// Result of a DUCC run.
#[derive(Debug, Clone)]
pub struct DuccResult {
    /// All minimal unique column combinations, sorted.
    pub minimal_uccs: Vec<ColumnSet>,
    /// All maximal non-unique column combinations, sorted. (Byproduct of
    /// the walk; DUCC uses them for hole detection.)
    pub maximal_non_uccs: Vec<ColumnSet>,
    /// Lattice-walk work counters.
    pub stats: WalkStats,
}

/// Runs DUCC over the table behind `cache`, discovering all minimal UCCs.
///
/// A table with duplicate rows has no UCC at all (§3); the result is then
/// empty with the full column set as the single maximal non-UCC.
pub fn ducc(cache: &mut PliCache<'_>, config: &DuccConfig) -> DuccResult {
    let universe = ColumnSet::full(cache.table().num_columns());
    let mut oracle = |set: &ColumnSet| cache.is_unique(set);
    let result = find_minimal_positives(universe, &mut oracle, &config.walk, &[]);
    DuccResult {
        minimal_uccs: result.minimal_positives,
        maximal_non_uccs: result.maximal_negatives,
        stats: result.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_minimal_uccs;
    use muds_table::Table;

    fn cs(cols: &[usize]) -> ColumnSet {
        ColumnSet::from_indices(cols.iter().copied())
    }

    #[test]
    fn single_key_column() {
        let t = Table::from_rows("t", &["id", "x"], &[vec!["1", "a"], vec!["2", "a"]]).unwrap();
        let mut cache = PliCache::new(&t);
        let r = ducc(&mut cache, &DuccConfig::default());
        assert_eq!(r.minimal_uccs, vec![cs(&[0])]);
        assert_eq!(r.maximal_non_uccs, vec![cs(&[1])]);
    }

    #[test]
    fn composite_key_only() {
        let t =
            Table::from_rows("t", &["a", "b"], &[vec!["1", "x"], vec!["1", "y"], vec!["2", "x"]])
                .unwrap();
        let mut cache = PliCache::new(&t);
        let r = ducc(&mut cache, &DuccConfig::default());
        assert_eq!(r.minimal_uccs, vec![cs(&[0, 1])]);
    }

    #[test]
    fn duplicate_rows_mean_no_uccs() {
        let t = Table::from_rows("t", &["a", "b"], &[vec!["1", "x"], vec!["1", "x"]]).unwrap();
        let mut cache = PliCache::new(&t);
        let r = ducc(&mut cache, &DuccConfig::default());
        assert!(r.minimal_uccs.is_empty());
        assert_eq!(r.maximal_non_uccs, vec![cs(&[0, 1])]);
    }

    #[test]
    fn single_row_table_has_empty_ucc() {
        let t = Table::from_rows("t", &["a", "b"], &[vec!["1", "x"]]).unwrap();
        let mut cache = PliCache::new(&t);
        let r = ducc(&mut cache, &DuccConfig::default());
        assert_eq!(r.minimal_uccs, vec![ColumnSet::empty()]);
    }

    #[test]
    fn overlapping_minimal_uccs() {
        // Rows built so that {a,b} and {b,c} are the minimal UCCs.
        let t = Table::from_rows(
            "t",
            &["a", "b", "c"],
            &[vec!["1", "1", "1"], vec!["1", "2", "1"], vec!["2", "1", "1"], vec!["2", "2", "2"]],
        )
        .unwrap();
        let mut cache = PliCache::new(&t);
        let r = ducc(&mut cache, &DuccConfig::default());
        assert_eq!(r.minimal_uccs, naive_minimal_uccs(&t));
    }

    #[test]
    fn randomized_cross_check_with_naive() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(2024);
        for case in 0..120 {
            let cols = rng.gen_range(1..=6);
            let rows = rng.gen_range(1..=30);
            let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let data: Vec<Vec<String>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.gen_range(0..4).to_string()).collect())
                .collect();
            let t = Table::from_rows("t", &name_refs, &data).unwrap().dedup_rows();
            let mut cache = PliCache::new(&t);
            let r = ducc(&mut cache, &DuccConfig::default());
            assert_eq!(r.minimal_uccs, naive_minimal_uccs(&t), "case {case}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let t = Table::from_rows(
            "t",
            &["a", "b", "c", "d"],
            &[
                vec!["1", "1", "1", "1"],
                vec!["1", "2", "2", "1"],
                vec!["2", "1", "2", "2"],
                vec!["2", "2", "1", "3"],
            ],
        )
        .unwrap();
        let mut c1 = PliCache::new(&t);
        let mut c2 = PliCache::new(&t);
        let cfg = DuccConfig { walk: WalkConfig { seed: 5 } };
        let r1 = ducc(&mut c1, &cfg);
        let r2 = ducc(&mut c2, &cfg);
        assert_eq!(r1.minimal_uccs, r2.minimal_uccs);
        assert_eq!(r1.stats, r2.stats);
    }
}
