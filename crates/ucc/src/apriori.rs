//! Level-wise bottom-up UCC discovery — the column-based baseline in the
//! style of Giannella/Wyss and HCA (§7 of the paper).
//!
//! Traverses the attribute lattice breadth-first with apriori-gen candidate
//! generation: unique candidates are reported as minimal UCCs and not
//! extended; non-unique candidates seed the next level. Because apriori-gen
//! only generates candidates whose direct subsets are all non-unique, every
//! unique candidate it produces is automatically minimal.

use muds_lattice::{apriori_gen, first_level, ColumnSet};
use muds_pli::PliCache;

/// Work counters for a level-wise UCC run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AprioriUccStats {
    /// Uniqueness checks performed (one PLI inspection each).
    pub checks: u64,
    /// Deepest lattice level visited.
    pub max_level: usize,
}

impl AprioriUccStats {
    /// Publishes the counters into the ambient [`muds_obs::Metrics`]
    /// registry (no-op without one).
    fn flush(&self) {
        muds_obs::add("apriori_ucc.checks", self.checks);
        muds_obs::gauge_max("apriori_ucc.max_level", self.max_level as i64);
    }
}

/// Discovers all minimal UCCs level-wise. Returns them sorted.
pub fn apriori_uccs(cache: &mut PliCache<'_>) -> Vec<ColumnSet> {
    apriori_uccs_with_stats(cache).0
}

/// [`apriori_uccs`] with work counters.
pub fn apriori_uccs_with_stats(cache: &mut PliCache<'_>) -> (Vec<ColumnSet>, AprioriUccStats) {
    let mut stats = AprioriUccStats::default();
    let universe = ColumnSet::full(cache.table().num_columns());
    let mut minimal = Vec::new();

    // Degenerate case: a table with at most one row is "unique" on the
    // empty column combination.
    stats.checks += 1;
    if cache.is_unique(&ColumnSet::empty()) {
        stats.flush();
        return (vec![ColumnSet::empty()], stats);
    }

    let mut level = first_level(&universe);
    let mut depth = 1;
    while !level.is_empty() {
        stats.max_level = depth;
        let mut non_unique = Vec::with_capacity(level.len());
        // Every candidate's PLI is needed regardless of outcome, so the
        // level materializes as one parallel batch; verdicts are read in
        // candidate order, matching the per-candidate bookkeeping.
        let plis = cache.get_many(&level);
        for (candidate, pli) in level.iter().zip(&plis) {
            stats.checks += 1;
            if pli.is_unique() {
                minimal.push(*candidate);
            } else {
                non_unique.push(*candidate);
            }
        }
        level = apriori_gen(&non_unique);
        depth += 1;
    }
    minimal.sort();
    stats.flush();
    (minimal, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_minimal_uccs;
    use muds_table::Table;

    #[test]
    fn agrees_with_naive_on_random_tables() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(31);
        for case in 0..120 {
            let cols = rng.gen_range(1..=6);
            let rows = rng.gen_range(1..=25);
            let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let data: Vec<Vec<String>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.gen_range(0..4).to_string()).collect())
                .collect();
            let t = Table::from_rows("t", &name_refs, &data).unwrap().dedup_rows();
            let mut cache = PliCache::new(&t);
            assert_eq!(apriori_uccs(&mut cache), naive_minimal_uccs(&t), "case {case}");
        }
    }

    #[test]
    fn no_uccs_with_duplicate_rows() {
        let t = Table::from_rows("t", &["a"], &[vec!["1"], vec!["1"]]).unwrap();
        let mut cache = PliCache::new(&t);
        assert!(apriori_uccs(&mut cache).is_empty());
    }

    #[test]
    fn single_row_yields_empty_set() {
        let t = Table::from_rows("t", &["a", "b"], &[vec!["1", "2"]]).unwrap();
        let mut cache = PliCache::new(&t);
        assert_eq!(apriori_uccs(&mut cache), vec![ColumnSet::empty()]);
    }

    #[test]
    fn stats_track_levels() {
        // Only the full 3-column set is unique.
        let t = Table::from_rows(
            "t",
            &["a", "b", "c"],
            &[
                vec!["1", "1", "1"],
                vec!["1", "1", "2"],
                vec!["1", "2", "1"],
                vec!["2", "1", "1"],
                vec!["1", "2", "2"],
                vec!["2", "1", "2"],
                vec!["2", "2", "1"],
                vec!["2", "2", "2"],
            ],
        )
        .unwrap();
        let mut cache = PliCache::new(&t);
        let (uccs, stats) = apriori_uccs_with_stats(&mut cache);
        assert_eq!(uccs, vec![ColumnSet::full(3)]);
        assert_eq!(stats.max_level, 3);
    }
}
