//! Unique column combination discovery.
//!
//! [`ducc`] is the paper's UCC algorithm (§2.2): a random-walk lattice
//! traversal with two-sided pruning and hole filling via the hitting-set
//! duality. [`apriori_uccs`] is the level-wise column-based baseline and
//! [`naive_minimal_uccs`] the exponential testing oracle.

mod apriori;
mod ducc;
mod naive;

pub use apriori::{apriori_uccs, apriori_uccs_with_stats, AprioriUccStats};
pub use ducc::{ducc, DuccConfig, DuccResult};
pub use naive::{is_unique, naive_minimal_uccs};
