//! Exponential ground-truth UCC oracle for testing.

use std::collections::HashSet;

use muds_lattice::ColumnSet;
use muds_table::Table;

/// Enumerates every column combination (2^n) and reports the minimal unique
/// ones. Only usable on narrow tables; this is the reference implementation
/// for tests.
pub fn naive_minimal_uccs(table: &Table) -> Vec<ColumnSet> {
    let n = table.num_columns();
    assert!(n <= 16, "naive UCC discovery is exponential; {n} columns is too many");
    let mut uniques: Vec<ColumnSet> = Vec::new();
    for mask in 0..(1u32 << n) {
        let set = ColumnSet::from_indices((0..n).filter(|&c| mask & (1 << c) != 0));
        if is_unique(table, &set) {
            uniques.push(set);
        }
    }
    let mut minimal: Vec<ColumnSet> = uniques
        .iter()
        .copied()
        .filter(|u| !uniques.iter().any(|v| v.is_proper_subset_of(u)))
        .collect();
    minimal.sort();
    minimal
}

/// Direct uniqueness check by hashing row projections.
pub fn is_unique(table: &Table, set: &ColumnSet) -> bool {
    let cols: Vec<usize> = set.to_vec();
    let mut seen: HashSet<Vec<u32>> = HashSet::with_capacity(table.num_rows());
    for r in 0..table.num_rows() {
        let key: Vec<u32> = cols.iter().map(|&c| table.column(c).codes()[r]).collect();
        if !seen.insert(key) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_minimal_composite_keys() {
        let t = Table::from_rows(
            "t",
            &["a", "b", "c"],
            &[vec!["1", "1", "x"], vec!["1", "2", "x"], vec!["2", "1", "x"]],
        )
        .unwrap();
        let uccs = naive_minimal_uccs(&t);
        assert_eq!(uccs, vec![ColumnSet::from_indices([0, 1])]);
    }

    #[test]
    fn empty_set_unique_for_single_row() {
        let t = Table::from_rows("t", &["a"], &[vec!["1"]]).unwrap();
        assert_eq!(naive_minimal_uccs(&t), vec![ColumnSet::empty()]);
    }

    #[test]
    fn is_unique_respects_null_equality() {
        let t = Table::from_rows("t", &["a"], &[vec![""], vec![""]]).unwrap();
        assert!(!is_unique(&t, &ColumnSet::single(0)));
    }
}
