//! `mudsprof`: command-line holistic profiler.
//!
//! Profiles CSV files with MUDS / Holistic FUN / the sequential baseline /
//! TANE, compares them, and generates the paper's stand-in datasets. See
//! `mudsprof help`.

mod args;

use std::process::ExitCode;
use std::time::Instant;

use args::{parse, Command, USAGE};
use muds_core::{profile_csv, Algorithm, ProfilerConfig};
use muds_datagen as datagen;
use muds_table::{table_from_csv_file, table_to_csv, CsvOptions};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse(&argv) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(command) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(command: Command) -> Result<(), String> {
    match command {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Profile { path, algorithm, delimiter, has_header, paper_faithful } => {
            let options = CsvOptions { delimiter, has_header };
            let table = table_from_csv_file(&path, &options).map_err(|e| e.to_string())?;
            let table = if table.has_duplicate_rows() {
                eprintln!("note: input contains duplicate rows; removing them (paper §3 precondition)");
                table.dedup_rows()
            } else {
                table
            };
            let mut config = ProfilerConfig::default();
            config.muds.completion_sweep = !paper_faithful;
            let csv = table_to_csv(&table, &options);
            let result = profile_csv(table.name(), &csv, &options, algorithm, &config)
                .map_err(|e| e.to_string())?;

            let names = table.column_names();
            println!(
                "{}: {} rows x {} columns, algorithm {}",
                table.name(),
                table.num_rows(),
                table.num_columns(),
                algorithm.name()
            );
            println!("\ninclusion dependencies ({}):", result.inds.len());
            for ind in &result.inds {
                println!("  {} ⊆ {}", names[ind.dependent], names[ind.referenced]);
            }
            println!("\nminimal unique column combinations ({}):", result.minimal_uccs.len());
            for ucc in &result.minimal_uccs {
                let cols: Vec<&str> = ucc.iter().map(|c| names[c]).collect();
                println!("  {{{}}}", cols.join(", "));
            }
            println!("\nminimal functional dependencies ({}):", result.fds.len());
            for fd in result.fds.to_sorted_vec() {
                let lhs: Vec<&str> = fd.lhs.iter().map(|c| names[c]).collect();
                println!("  {{{}}} → {}", lhs.join(", "), names[fd.rhs]);
            }
            println!("\nphases:");
            for phase in &result.phases {
                println!("  {:<28} {:?}", phase.name, phase.duration);
            }
            Ok(())
        }
        Command::Compare { path, delimiter, has_header } => {
            let options = CsvOptions { delimiter, has_header };
            let table = table_from_csv_file(&path, &options).map_err(|e| e.to_string())?;
            let table = table.dedup_rows();
            let csv = table_to_csv(&table, &options);
            let config = ProfilerConfig::default();
            println!(
                "{}: {} rows x {} columns\n",
                table.name(),
                table.num_rows(),
                table.num_columns()
            );
            println!("{:<10} {:>12} {:>8} {:>8} {:>8}", "algorithm", "time", "INDs", "UCCs", "FDs");
            for &alg in &Algorithm::ALL {
                let t0 = Instant::now();
                let result = profile_csv(table.name(), &csv, &options, alg, &config)
                    .map_err(|e| e.to_string())?;
                let elapsed = t0.elapsed();
                let (inds, uccs, fds) = result.counts();
                println!("{:<10} {:>12?} {:>8} {:>8} {:>8}", alg.name(), elapsed, inds, uccs, fds);
            }
            Ok(())
        }
        Command::Generate { dataset, rows, cols, output } => {
            let table = match dataset.as_str() {
                "uniprot" => datagen::uniprot_like(rows, cols),
                "ionosphere" => datagen::ionosphere_like(cols),
                "ncvoter" => datagen::ncvoter_like(rows, cols),
                name if datagen::TABLE3_DATASETS.contains(&name) => datagen::uci_dataset(name),
                other => return Err(format!("unknown dataset {other:?}; see `mudsprof help`")),
            };
            let csv = table_to_csv(&table, &CsvOptions::default());
            match output {
                Some(path) => {
                    std::fs::write(&path, csv).map_err(|e| e.to_string())?;
                    eprintln!(
                        "wrote {} ({} rows x {} columns)",
                        path,
                        table.num_rows(),
                        table.num_columns()
                    );
                }
                None => print!("{csv}"),
            }
            Ok(())
        }
    }
}
