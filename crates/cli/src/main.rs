//! `mudsprof`: command-line holistic profiler.
//!
//! Profiles CSV files with MUDS / Holistic FUN / the sequential baseline /
//! TANE, compares them, and generates the paper's stand-in datasets. See
//! `mudsprof help`.

mod args;

use std::process::ExitCode;

use args::{parse, Command, MetricsFormat, OutputFormat, USAGE};
use muds_core::{
    apply_incremental, profile_csv, profile_to_json, Algorithm, Phase, ProfilerConfig,
};
use muds_datagen as datagen;
use muds_obs::{JsonlSink, Metrics};
use muds_serve::{ServeConfig, Server};
use muds_table::{table_from_csv_file, table_to_csv, CsvOptions, TableDelta};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse(&argv) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // The lint runner owns its exit-code convention (0 clean, 1 new
    // findings, 2 error), so it bypasses `run`'s Ok/Err mapping.
    if let Command::Lint { args } = command {
        return ExitCode::from(muds_lint::run_cli(&args, &mut std::io::stdout()) as u8);
    }
    match run(command) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Builds the run's metrics registry, attaching a JSONL trace sink when
/// `--trace` was given, and installs it as the ambient registry so every
/// `profile_csv` call below records into it.
fn install_metrics(trace: Option<&str>) -> Result<(Metrics, muds_obs::AmbientGuard), String> {
    let metrics = Metrics::new();
    if let Some(path) = trace {
        let sink =
            JsonlSink::create(path).map_err(|e| format!("cannot open trace file {path:?}: {e}"))?;
        metrics.set_sink(Box::new(sink));
    }
    let guard = metrics.install();
    Ok((metrics, guard))
}

/// Configures the global worker pool from `--threads`. A no-op when the
/// flag is absent (rayon then defaults to all cores on first use).
fn configure_threads(threads: Option<usize>) -> Result<(), String> {
    if let Some(n) = threads {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .map_err(|e| format!("cannot configure {n} worker threads: {e}"))?;
    }
    Ok(())
}

/// Renders the `--stats` column-profile and relationship sections of the
/// human report.
fn write_stats_report(out: &mut String, stats: &muds_core::StatsProfile, names: &[&str]) {
    use std::fmt::Write;
    let _ = writeln!(out, "\ncolumn profiles ({}):", stats.columns.len());
    for c in &stats.columns {
        let _ = writeln!(
            out,
            "  {:<16} {:<10} {:<10} distinct {:>6}  nulls {:>5.1}%  quality {:.2}",
            names[c.column],
            c.format.name(),
            c.semantic_type.name(),
            c.distinct,
            c.null_fraction * 100.0,
            c.quality
        );
        if let Some(n) = &c.numeric {
            let _ = writeln!(
                out,
                "  {:<16}   min {} max {} mean {:.3} q25 {} median {} q75 {}",
                "", n.min, n.max, n.mean, n.q25, n.median, n.q75
            );
        }
    }
    let _ = writeln!(out, "\nidentifier candidates ({}):", stats.identifiers.len());
    for ident in &stats.identifiers {
        let cols: Vec<&str> = ident.columns.iter().map(|&c| names[c]).collect();
        let _ = writeln!(
            out,
            "  {{{}}} score {:.3}{}",
            cols.join(", "),
            ident.score,
            if ident.null_free { "" } else { " (nullable)" }
        );
    }
    let _ = writeln!(out, "\nforeign-key candidates ({}):", stats.foreign_keys.len());
    for fk in &stats.foreign_keys {
        let _ = writeln!(
            out,
            "  {} → {} (coverage {:.1}%)",
            names[fk.dependent],
            names[fk.referenced],
            fk.coverage * 100.0
        );
    }
}

fn write_phase_tree(out: &mut String, phases: &[Phase], indent: usize) {
    use std::fmt::Write;
    for phase in phases {
        let _ = writeln!(
            out,
            "  {:indent$}{:<28} {:?}",
            "",
            phase.name,
            phase.duration,
            indent = indent
        );
        write_phase_tree(out, &phase.children, indent + 2);
    }
}

/// `mudsprof bench`: run the scenario matrix, write `BENCH_*.json`
/// reports, optionally diff against a baseline directory.
#[allow(clippy::too_many_arguments)]
fn run_bench(
    scenarios: Vec<String>,
    all: bool,
    threads: Option<usize>,
    out: &str,
    repeat: usize,
    check: Option<String>,
    wall_tolerance: Option<f64>,
    rss_tolerance: Option<f64>,
) -> Result<(), String> {
    use muds_bench::report::{diff, BenchReport, Tolerance};
    use muds_bench::scenarios::{find, RunOptions, SCENARIOS};

    let specs: Vec<&muds_bench::scenarios::ScenarioSpec> = if all {
        SCENARIOS.iter().collect()
    } else {
        scenarios
            .iter()
            .map(|name| {
                find(name).ok_or_else(|| {
                    let known: Vec<&str> = SCENARIOS.iter().map(|s| s.name).collect();
                    format!("unknown scenario {name:?}; known: {}", known.join(", "))
                })
            })
            .collect::<Result<_, _>>()?
    };
    std::fs::create_dir_all(out).map_err(|e| format!("cannot create {out:?}: {e}"))?;
    let opts = RunOptions { threads: threads.unwrap_or(0), repeat, ..RunOptions::default() };
    let mut tol = Tolerance::default();
    if let Some(w) = wall_tolerance {
        tol.wall_frac = w;
    }
    if let Some(r) = rss_tolerance {
        tol.rss_frac = r;
    }

    let mut failures = Vec::new();
    for spec in specs {
        eprintln!(
            "bench: {} ({}, {} cols{}) ...",
            spec.name,
            spec.shape,
            spec.cols,
            if spec.rows > 0 { format!(", {} rows", spec.rows) } else { String::new() }
        );
        let report = muds_bench::scenarios::run_scenario(spec, &opts)?;
        let file = format!("{}/{}", out.trim_end_matches('/'), BenchReport::file_name(spec.name));
        std::fs::write(&file, report.to_json())
            .map_err(|e| format!("cannot write {file:?}: {e}"))?;
        for entry in &report.entries {
            eprintln!(
                "  {:<10} {:>14.0} rows/s  wall {:>10}ns  rss {:>10}",
                entry.algorithm, entry.rows_per_sec, entry.wall_ns, entry.peak_rss_bytes
            );
        }
        eprintln!("  wrote {file}");

        if let Some(dir) = &check {
            let base_path =
                format!("{}/{}", dir.trim_end_matches('/'), BenchReport::file_name(spec.name));
            let text = std::fs::read_to_string(&base_path)
                .map_err(|e| format!("cannot read baseline {base_path:?}: {e}"))?;
            let baseline = BenchReport::from_json(&text)
                .map_err(|e| format!("baseline {base_path:?}: {e}"))?;
            let verdict = diff(&report, &baseline, &tol);
            for note in &verdict.notes {
                eprintln!("  note: {note}");
            }
            for violation in &verdict.violations {
                eprintln!("  REGRESSION: {violation}");
            }
            if !verdict.ok() {
                failures.push(spec.name.to_string());
            }
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!("bench regressions in: {}", failures.join(", ")))
    }
}

fn run(command: Command) -> Result<(), String> {
    match command {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Profile {
            path,
            algorithm,
            delimiter,
            has_header,
            paper_faithful,
            metrics,
            trace,
            threads,
            format,
            out,
            append,
            stats,
        } => {
            use std::fmt::Write;
            configure_threads(threads)?;
            let options = CsvOptions { delimiter, has_header };
            let table = table_from_csv_file(&path, &options).map_err(|e| e.to_string())?;
            let table = if table.has_duplicate_rows() {
                eprintln!(
                    "note: input contains duplicate rows; removing them (paper §3 precondition)"
                );
                table.dedup_rows()
            } else {
                table
            };
            let mut config = ProfilerConfig::default();
            config.muds.completion_sweep = !paper_faithful;
            config.stats = stats;
            let csv = table_to_csv(&table, &options);
            let (_registry, _guard) = install_metrics(trace.as_deref())?;
            let result = profile_csv(table.name(), &csv, &options, algorithm, &config)
                .map_err(|e| e.to_string())?;

            // --append rides the incremental delta path: the base profile
            // above is patched in place and only the dependencies whose
            // columns meet the changed clusters are revalidated. The report
            // below then describes the *patched* table.
            let (table, result, delta_note) = match append {
                Some(append_path) => {
                    let appended =
                        table_from_csv_file(&append_path, &options).map_err(|e| e.to_string())?;
                    if appended.column_names() != table.column_names() {
                        return Err(format!(
                            "--append {:?} columns {:?} do not match {:?} columns {:?}",
                            append_path,
                            appended.column_names(),
                            path,
                            table.column_names()
                        ));
                    }
                    let rows: Vec<Vec<String>> = (0..appended.num_rows())
                        .map(|r| {
                            appended
                                .row(r)
                                .into_iter()
                                .map(|v| v.unwrap_or("").to_string())
                                .collect()
                        })
                        .collect();
                    let outcome = apply_incremental(&result, &table, &TableDelta::Append { rows })
                        .map_err(|e| e.to_string())?;
                    let note = format!(
                        "delta: appended {} row(s) ({} dropped as duplicates); \
                         {} dependency check(s) revalidated, {} carried over unchanged\n",
                        outcome.appended_rows,
                        outcome.rows_deduplicated,
                        outcome.revalidated,
                        outcome.skipped
                    );
                    (outcome.table, outcome.result, note)
                }
                None => (table, result, String::new()),
            };

            // The human report is built once and routed by --format: in
            // human mode it *is* the data and goes to stdout; in json mode
            // the JSON document owns stdout and the report becomes a
            // diagnostic on stderr.
            let names = table.column_names();
            let mut report = String::new();
            let _ = writeln!(
                report,
                "{}: {} rows x {} columns, algorithm {}",
                table.name(),
                table.num_rows(),
                table.num_columns(),
                algorithm.name()
            );
            report.push_str(&delta_note);
            let _ = writeln!(report, "\ninclusion dependencies ({}):", result.inds.len());
            for ind in &result.inds {
                let _ = writeln!(report, "  {} ⊆ {}", names[ind.dependent], names[ind.referenced]);
            }
            let _ = writeln!(
                report,
                "\nminimal unique column combinations ({}):",
                result.minimal_uccs.len()
            );
            for ucc in &result.minimal_uccs {
                let cols: Vec<&str> = ucc.iter().map(|c| names[c]).collect();
                let _ = writeln!(report, "  {{{}}}", cols.join(", "));
            }
            let _ = writeln!(report, "\nminimal functional dependencies ({}):", result.fds.len());
            for fd in result.fds.to_sorted_vec() {
                let lhs: Vec<&str> = fd.lhs.iter().map(|c| names[c]).collect();
                let _ = writeln!(report, "  {{{}}} → {}", lhs.join(", "), names[fd.rhs]);
            }
            if let Some(stats) = &result.stats {
                write_stats_report(&mut report, stats, &names);
            }
            match metrics {
                // render_pretty already includes the span tree, so the
                // plain phase list would be redundant.
                Some(MetricsFormat::Pretty) => {
                    let _ = writeln!(report, "\n{}", result.metrics.render_pretty());
                }
                Some(MetricsFormat::Json) => {
                    let _ = writeln!(report, "\nphases:");
                    write_phase_tree(&mut report, &result.phases, 0);
                    let _ = writeln!(report, "\n{}", result.metrics.to_json());
                }
                None => {
                    let _ = writeln!(report, "\nphases:");
                    write_phase_tree(&mut report, &result.phases, 0);
                }
            }
            match format {
                OutputFormat::Human => print!("{report}"),
                OutputFormat::Json => {
                    eprint!("{report}");
                    let json = profile_to_json(&result, table.name(), &names);
                    match out {
                        Some(path) => {
                            std::fs::write(&path, format!("{json}\n"))
                                .map_err(|e| format!("cannot write {path:?}: {e}"))?;
                            eprintln!("\nwrote {path}");
                        }
                        None => println!("{json}"),
                    }
                }
            }
            Ok(())
        }
        Command::Compare { path, delimiter, has_header, metrics, trace, threads } => {
            configure_threads(threads)?;
            let options = CsvOptions { delimiter, has_header };
            let table = table_from_csv_file(&path, &options).map_err(|e| e.to_string())?;
            let table = table.dedup_rows();
            let csv = table_to_csv(&table, &options);
            let config = ProfilerConfig::default();
            let (_registry, _guard) = install_metrics(trace.as_deref())?;
            println!(
                "{}: {} rows x {} columns\n",
                table.name(),
                table.num_rows(),
                table.num_columns()
            );
            println!("{:<10} {:>12} {:>8} {:>8} {:>8}", "algorithm", "time", "INDs", "UCCs", "FDs");
            let mut detail: Vec<muds_core::ProfileResult> = Vec::new();
            for &alg in &Algorithm::ALL {
                let result = profile_csv(table.name(), &csv, &options, alg, &config)
                    .map_err(|e| e.to_string())?;
                // Sum the algorithm's own phases rather than wall-clocking
                // this loop body, so the table excludes harness overhead and
                // matches `profile`'s per-phase report.
                let elapsed = result.total_time();
                let (inds, uccs, fds) = result.counts();
                println!("{:<10} {:>12?} {:>8} {:>8} {:>8}", alg.name(), elapsed, inds, uccs, fds);
                if metrics.is_some() {
                    detail.push(result);
                }
            }
            for result in &detail {
                match metrics {
                    Some(MetricsFormat::Pretty) => {
                        println!("\n--- {} ---", result.algorithm.name());
                        println!("{}", result.metrics.render_pretty());
                    }
                    Some(MetricsFormat::Json) => {
                        println!(
                            "{{\"algorithm\":\"{}\",\"metrics\":{}}}",
                            result.algorithm.name(),
                            result.metrics.to_json()
                        );
                    }
                    None => {}
                }
            }
            Ok(())
        }
        Command::Fuzz { seed, iters, threads, corpus, metrics } => {
            configure_threads(threads)?;
            let (registry, _guard) = install_metrics(None)?;
            let mut config = muds_check::FuzzConfig { seed, iters, ..Default::default() };
            config.suite.restore_threads = threads.unwrap_or(0);
            config.corpus_dir = corpus.map(std::path::PathBuf::from);

            // The suite intentionally drives the profilers into panics and
            // catches them; the default hook would spray a backtrace per
            // caught panic over the report.
            let previous_hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let report = muds_check::run_fuzz(&config);
            std::panic::set_hook(previous_hook);

            println!(
                "fuzz: seed {seed}, {} iteration(s), {} failure(s)",
                report.iterations,
                report.failures.len()
            );
            for f in &report.failures {
                println!(
                    "\niteration {} [{}] {}: {}",
                    f.iteration, f.strategy, f.invariant, f.detail
                );
                println!(
                    "  shrunk to {} column(s) x {} row(s) ({} candidate(s) tried)",
                    f.shrunken.0, f.shrunken.1, f.shrink_stats.candidates_tried
                );
                match &f.corpus_file {
                    Some(path) => println!("  repro written to {}", path.display()),
                    None => println!("  (no corpus file written)"),
                }
            }
            let snapshot = registry.drain_snapshot();
            match metrics {
                Some(MetricsFormat::Pretty) => println!("\n{}", snapshot.render_pretty()),
                Some(MetricsFormat::Json) => println!("\n{}", snapshot.to_json()),
                None => {}
            }
            if report.clean() {
                Ok(())
            } else {
                Err(format!("{} fuzz failure(s) found", report.failures.len()))
            }
        }
        Command::Generate { dataset, rows, cols, output } => {
            let table = match dataset.as_str() {
                "uniprot" => datagen::uniprot_like(rows, cols),
                "ionosphere" => datagen::ionosphere_like(cols),
                "ncvoter" => datagen::ncvoter_like(rows, cols),
                name if datagen::TABLE3_DATASETS.contains(&name) => datagen::uci_dataset(name),
                other => return Err(format!("unknown dataset {other:?}; see `mudsprof help`")),
            };
            let csv = table_to_csv(&table, &CsvOptions::default());
            match output {
                Some(path) => {
                    std::fs::write(&path, csv).map_err(|e| e.to_string())?;
                    eprintln!(
                        "wrote {} ({} rows x {} columns)",
                        path,
                        table.num_rows(),
                        table.num_columns()
                    );
                }
                None => print!("{csv}"),
            }
            Ok(())
        }
        Command::Bench {
            scenarios,
            all,
            threads,
            out,
            repeat,
            check,
            wall_tolerance,
            rss_tolerance,
        } => {
            configure_threads(threads)?;
            run_bench(scenarios, all, threads, &out, repeat, check, wall_tolerance, rss_tolerance)
        }
        Command::Lint { .. } => unreachable!("handled in main before dispatch"),
        Command::Serve {
            addr,
            threads,
            workers,
            cache_capacity,
            queue_capacity,
            timeout_ms,
            max_body_bytes,
            data_dir,
        } => {
            // --threads sizes the *intra-job* pool (same knob as the batch
            // commands); --workers sizes the scheduler's job pool.
            configure_threads(threads)?;
            let config = ServeConfig {
                addr,
                workers,
                queue_capacity,
                cache_capacity,
                default_timeout: std::time::Duration::from_millis(timeout_ms),
                max_body: max_body_bytes,
                data_dir: data_dir.map(std::path::PathBuf::from),
                ..ServeConfig::default()
            };
            let server = Server::bind(config).map_err(|e| format!("cannot bind: {e}"))?;
            let addr = server.local_addr().map_err(|e| e.to_string())?;
            eprintln!("mudsprof serve: listening on http://{addr}");
            eprintln!(
                "  POST /datasets  GET /datasets  POST /profile  GET /jobs/:id  GET /metrics"
            );
            server.run().map_err(|e| format!("server error: {e}"))?;
            eprintln!("mudsprof serve: shut down cleanly");
            Ok(())
        }
    }
}
