//! Hand-rolled argument parsing for `mudsprof` (no CLI dependency).

use muds_core::Algorithm;

/// Output format of the `--metrics` report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Indented span tree plus counter tables.
    Pretty,
    /// One compact JSON object.
    Json,
}

/// Output format of `profile`'s discovered dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Column names, one dependency per line (the classic report).
    #[default]
    Human,
    /// The canonical `ProfileResult` wire document (same shape the
    /// `muds-serve` daemon returns); diagnostics move to stderr so stdout
    /// carries exactly one JSON object.
    Json,
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)] // not Eq: Bench carries f64 tolerances
pub enum Command {
    /// Profile a CSV file with one algorithm.
    Profile {
        path: String,
        algorithm: Algorithm,
        delimiter: char,
        has_header: bool,
        paper_faithful: bool,
        metrics: Option<MetricsFormat>,
        trace: Option<String>,
        /// Worker threads for the parallel execution layer (`None` = all
        /// cores; `Some(1)` reproduces the sequential execution exactly).
        threads: Option<usize>,
        /// Dependency output format.
        format: OutputFormat,
        /// Write the dependency document here instead of stdout
        /// (requires `--format json`).
        out: Option<String>,
        /// CSV file (same schema) appended *after* the initial profile via
        /// the incremental delta path; the report then covers the patched
        /// table plus the `delta.revalidated` / `delta.skipped` work split.
        append: Option<String>,
        /// Compute single-scan column statistics, semantic types, and
        /// dependency classifications alongside the dependency sets.
        stats: bool,
    },
    /// Run all four algorithms on a CSV file and compare runtimes.
    Compare {
        path: String,
        delimiter: char,
        has_header: bool,
        metrics: Option<MetricsFormat>,
        trace: Option<String>,
        /// Worker threads for the parallel execution layer.
        threads: Option<usize>,
    },
    /// Generate one of the paper's stand-in datasets as CSV on stdout or to
    /// a file.
    Generate { dataset: String, rows: usize, cols: usize, output: Option<String> },
    /// Differential fuzzing: adversarial tables through all four pipelines
    /// plus the naive oracles, with automatic shrinking on disagreement.
    Fuzz {
        seed: u64,
        iters: usize,
        /// Worker threads restored between thread-invariance probes.
        threads: Option<usize>,
        /// Directory for shrunken repro CSVs (`None` = don't write).
        corpus: Option<String>,
        metrics: Option<MetricsFormat>,
    },
    /// Run the profiling daemon.
    Serve {
        /// Bind address (`host:port`; port 0 picks an ephemeral port).
        addr: String,
        /// Worker threads for the intra-job parallel execution layer.
        threads: Option<usize>,
        /// Scheduler worker threads (concurrent profiling jobs;
        /// 0 = derived from available parallelism).
        workers: usize,
        /// Result-cache byte budget.
        cache_capacity: usize,
        /// Bounded job-queue capacity (overflow answers 429).
        queue_capacity: usize,
        /// Default `POST /profile` wait before answering 202, in ms.
        timeout_ms: u64,
        /// Largest accepted request body in bytes (413 beyond it).
        max_body_bytes: usize,
        /// Persistence root: registry + result cache write through and
        /// are replayed on restart. `None` = fully in-memory.
        data_dir: Option<String>,
    },
    /// Run the fixed benchmark scenario matrix and emit machine-readable
    /// `BENCH_<scenario>.json` reports (optionally diffed against a
    /// baseline directory).
    Bench {
        /// Scenario names to run (`--scenario`, repeatable). Empty +
        /// `all = false` is a parse error.
        scenarios: Vec<String>,
        /// Run the whole matrix.
        all: bool,
        /// Worker threads for the parallel execution layer.
        threads: Option<usize>,
        /// Output directory for `BENCH_*.json` (default `.`).
        out: String,
        /// Runs per entry; the best run is reported.
        repeat: usize,
        /// Baseline directory: diff instead of silently overwriting, exit
        /// non-zero on regressions beyond tolerance.
        check: Option<String>,
        /// Wall-time regression tolerance as a fraction (default 0.25).
        wall_tolerance: Option<f64>,
        /// Peak-RSS regression tolerance as a fraction (default 0.30).
        rss_tolerance: Option<f64>,
    },
    /// Workspace static analysis (muds-lint); arguments pass through
    /// to the lint runner (`--root`, `--format human|json|sarif`,
    /// `--baseline`, `--write-baseline`, `--update-baseline`,
    /// `--lock-graph dot`).
    Lint { args: Vec<String> },
    /// Print usage.
    Help,
}

/// Parse error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

fn algorithm_by_name(name: &str) -> Result<Algorithm, ArgError> {
    match name.to_ascii_lowercase().as_str() {
        "muds" => Ok(Algorithm::Muds),
        "hfun" | "holistic-fun" => Ok(Algorithm::HolisticFun),
        "baseline" | "sequential" => Ok(Algorithm::Baseline),
        "tane" => Ok(Algorithm::Tane),
        other => Err(ArgError(format!(
            "unknown algorithm {other:?}; expected muds, hfun, baseline, or tane"
        ))),
    }
}

fn take_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, ArgError> {
    *i += 1;
    args.get(*i).map(|s| s.as_str()).ok_or_else(|| ArgError(format!("{flag} needs a value")))
}

fn metrics_format(value: &str) -> Result<MetricsFormat, ArgError> {
    match value.to_ascii_lowercase().as_str() {
        "pretty" => Ok(MetricsFormat::Pretty),
        "json" => Ok(MetricsFormat::Json),
        other => Err(ArgError(format!("--metrics must be pretty or json, got {other:?}"))),
    }
}

fn output_format(value: &str) -> Result<OutputFormat, ArgError> {
    match value.to_ascii_lowercase().as_str() {
        "human" => Ok(OutputFormat::Human),
        "json" => Ok(OutputFormat::Json),
        other => Err(ArgError(format!("--format must be human or json, got {other:?}"))),
    }
}

/// Parses a byte count with an optional `k`/`m`/`g` suffix (powers of
/// 1024), e.g. `64m`.
fn byte_count(value: &str, flag: &str) -> Result<usize, ArgError> {
    let lower = value.to_ascii_lowercase();
    let (digits, shift) = match lower.strip_suffix(['k', 'm', 'g']) {
        Some(d) => {
            let shift = match lower.as_bytes()[lower.len() - 1] {
                b'k' => 10,
                b'm' => 20,
                _ => 30,
            };
            (d, shift)
        }
        None => (lower.as_str(), 0),
    };
    let base: usize = digits
        .parse()
        .map_err(|_| ArgError(format!("{flag} must be a byte count (e.g. 8388608 or 64m)")))?;
    base.checked_shl(shift)
        .filter(|v| (*v >> shift) == base)
        .ok_or_else(|| ArgError(format!("{flag} overflows")))
}

/// Parses `argv[1..]`.
pub fn parse(args: &[String]) -> Result<Command, ArgError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "profile" | "compare" => {
            let mut path: Option<String> = None;
            let mut algorithm = Algorithm::Muds;
            let mut delimiter = ',';
            let mut has_header = true;
            let mut paper_faithful = false;
            let mut metrics: Option<MetricsFormat> = None;
            let mut trace: Option<String> = None;
            let mut threads: Option<usize> = None;
            let mut format = OutputFormat::Human;
            let mut out: Option<String> = None;
            let mut append: Option<String> = None;
            let mut stats = false;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--format" | "-f" if cmd == "profile" => {
                        format = output_format(take_value(args, &mut i, "--format")?)?
                    }
                    "--out" | "-o" if cmd == "profile" => {
                        out = Some(take_value(args, &mut i, "--out")?.to_string())
                    }
                    "--append" if cmd == "profile" => {
                        append = Some(take_value(args, &mut i, "--append")?.to_string())
                    }
                    "--stats" if cmd == "profile" => stats = true,
                    "--threads" | "-t" => {
                        let v: usize = take_value(args, &mut i, "--threads")?
                            .parse()
                            .map_err(|_| ArgError("--threads must be an integer".into()))?;
                        if v == 0 {
                            return Err(ArgError("--threads must be at least 1".into()));
                        }
                        threads = Some(v);
                    }
                    "--algorithm" | "-a" => {
                        algorithm = algorithm_by_name(take_value(args, &mut i, "--algorithm")?)?
                    }
                    "--metrics" => {
                        metrics = Some(metrics_format(take_value(args, &mut i, "--metrics")?)?)
                    }
                    "--trace" => trace = Some(take_value(args, &mut i, "--trace")?.to_string()),
                    "--delimiter" | "-d" => {
                        let v = take_value(args, &mut i, "--delimiter")?;
                        let mut chars = v.chars();
                        delimiter = chars
                            .next()
                            .filter(|_| chars.next().is_none())
                            .ok_or_else(|| ArgError("--delimiter must be one character".into()))?;
                    }
                    "--no-header" => has_header = false,
                    "--paper-faithful" => paper_faithful = true,
                    flag if flag.starts_with('-') => {
                        return Err(ArgError(format!("unknown flag {flag:?}")));
                    }
                    p if path.is_none() => path = Some(p.to_string()),
                    extra => return Err(ArgError(format!("unexpected argument {extra:?}"))),
                }
                i += 1;
            }
            let path = path.ok_or_else(|| ArgError(format!("{cmd} needs a CSV file path")))?;
            if out.is_some() && format != OutputFormat::Json {
                return Err(ArgError("--out requires --format json".into()));
            }
            if cmd == "compare" {
                Ok(Command::Compare { path, delimiter, has_header, metrics, trace, threads })
            } else {
                Ok(Command::Profile {
                    path,
                    algorithm,
                    delimiter,
                    has_header,
                    paper_faithful,
                    metrics,
                    trace,
                    threads,
                    format,
                    out,
                    append,
                    stats,
                })
            }
        }
        "fuzz" => {
            let mut seed = 42u64;
            let mut iters = 500usize;
            let mut threads: Option<usize> = None;
            let mut corpus: Option<String> = None;
            let mut metrics: Option<MetricsFormat> = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--seed" | "-s" => {
                        seed = take_value(args, &mut i, "--seed")?
                            .parse()
                            .map_err(|_| ArgError("--seed must be an integer".into()))?;
                    }
                    "--iters" | "-n" => {
                        iters = take_value(args, &mut i, "--iters")?
                            .parse()
                            .map_err(|_| ArgError("--iters must be an integer".into()))?;
                    }
                    "--threads" | "-t" => {
                        let v: usize = take_value(args, &mut i, "--threads")?
                            .parse()
                            .map_err(|_| ArgError("--threads must be an integer".into()))?;
                        if v == 0 {
                            return Err(ArgError("--threads must be at least 1".into()));
                        }
                        threads = Some(v);
                    }
                    "--corpus" => corpus = Some(take_value(args, &mut i, "--corpus")?.to_string()),
                    "--metrics" => {
                        metrics = Some(metrics_format(take_value(args, &mut i, "--metrics")?)?)
                    }
                    flag if flag.starts_with('-') => {
                        return Err(ArgError(format!("unknown flag {flag:?}")));
                    }
                    extra => return Err(ArgError(format!("unexpected argument {extra:?}"))),
                }
                i += 1;
            }
            Ok(Command::Fuzz { seed, iters, threads, corpus, metrics })
        }
        "generate" => {
            let mut dataset: Option<String> = None;
            let mut rows = 1000usize;
            let mut cols = 10usize;
            let mut output = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--rows" => {
                        rows = take_value(args, &mut i, "--rows")?
                            .parse()
                            .map_err(|_| ArgError("--rows must be an integer".into()))?;
                    }
                    "--cols" => {
                        cols = take_value(args, &mut i, "--cols")?
                            .parse()
                            .map_err(|_| ArgError("--cols must be an integer".into()))?;
                    }
                    "--output" | "-o" => {
                        output = Some(take_value(args, &mut i, "--output")?.to_string())
                    }
                    flag if flag.starts_with('-') => {
                        return Err(ArgError(format!("unknown flag {flag:?}")));
                    }
                    d if dataset.is_none() => dataset = Some(d.to_string()),
                    extra => return Err(ArgError(format!("unexpected argument {extra:?}"))),
                }
                i += 1;
            }
            let dataset = dataset.ok_or_else(|| {
                ArgError("generate needs a dataset name (uniprot, ionosphere, ncvoter, or a Table 3 name)".into())
            })?;
            Ok(Command::Generate { dataset, rows, cols, output })
        }
        "serve" => {
            let mut addr = "127.0.0.1:7171".to_string();
            let mut threads: Option<usize> = None;
            let mut workers = 0usize;
            let mut cache_capacity = 64 << 20;
            let mut queue_capacity = 128usize;
            let mut timeout_ms = 30_000u64;
            let mut max_body_bytes = 64 << 20;
            let mut data_dir: Option<String> = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--addr" => addr = take_value(args, &mut i, "--addr")?.to_string(),
                    "--threads" | "-t" => {
                        let v: usize = take_value(args, &mut i, "--threads")?
                            .parse()
                            .map_err(|_| ArgError("--threads must be an integer".into()))?;
                        if v == 0 {
                            return Err(ArgError("--threads must be at least 1".into()));
                        }
                        threads = Some(v);
                    }
                    "--workers" => {
                        workers = take_value(args, &mut i, "--workers")?
                            .parse()
                            .map_err(|_| ArgError("--workers must be an integer".into()))?;
                    }
                    "--cache-capacity" => {
                        cache_capacity = byte_count(
                            take_value(args, &mut i, "--cache-capacity")?,
                            "--cache-capacity",
                        )?;
                    }
                    "--queue-capacity" => {
                        let v: usize = take_value(args, &mut i, "--queue-capacity")?
                            .parse()
                            .map_err(|_| ArgError("--queue-capacity must be an integer".into()))?;
                        if v == 0 {
                            return Err(ArgError("--queue-capacity must be at least 1".into()));
                        }
                        queue_capacity = v;
                    }
                    "--timeout-ms" => {
                        timeout_ms = take_value(args, &mut i, "--timeout-ms")?
                            .parse()
                            .map_err(|_| ArgError("--timeout-ms must be an integer".into()))?;
                    }
                    "--max-body-bytes" => {
                        max_body_bytes = byte_count(
                            take_value(args, &mut i, "--max-body-bytes")?,
                            "--max-body-bytes",
                        )?;
                        if max_body_bytes == 0 {
                            return Err(ArgError("--max-body-bytes must be at least 1".into()));
                        }
                    }
                    "--data-dir" => {
                        data_dir = Some(take_value(args, &mut i, "--data-dir")?.to_string());
                    }
                    flag if flag.starts_with('-') => {
                        return Err(ArgError(format!("unknown flag {flag:?}")));
                    }
                    extra => return Err(ArgError(format!("unexpected argument {extra:?}"))),
                }
                i += 1;
            }
            Ok(Command::Serve {
                addr,
                threads,
                workers,
                cache_capacity,
                queue_capacity,
                timeout_ms,
                max_body_bytes,
                data_dir,
            })
        }
        "bench" => {
            let mut scenarios: Vec<String> = Vec::new();
            let mut all = false;
            let mut threads: Option<usize> = None;
            let mut out = ".".to_string();
            let mut repeat = 3usize;
            let mut check: Option<String> = None;
            let mut wall_tolerance: Option<f64> = None;
            let mut rss_tolerance: Option<f64> = None;
            let tolerance = |value: &str, flag: &str| -> Result<f64, ArgError> {
                value.parse::<f64>().ok().filter(|v| v.is_finite() && *v >= 0.0).ok_or_else(|| {
                    ArgError(format!("{flag} must be a non-negative fraction (e.g. 0.25)"))
                })
            };
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--scenario" | "-s" => {
                        scenarios.push(take_value(args, &mut i, "--scenario")?.to_string())
                    }
                    "--all" => all = true,
                    "--threads" | "-t" => {
                        let v: usize = take_value(args, &mut i, "--threads")?
                            .parse()
                            .map_err(|_| ArgError("--threads must be an integer".into()))?;
                        if v == 0 {
                            return Err(ArgError("--threads must be at least 1".into()));
                        }
                        threads = Some(v);
                    }
                    "--out" | "-o" => out = take_value(args, &mut i, "--out")?.to_string(),
                    "--repeat" | "-r" => {
                        let v: usize = take_value(args, &mut i, "--repeat")?
                            .parse()
                            .map_err(|_| ArgError("--repeat must be an integer".into()))?;
                        if v == 0 {
                            return Err(ArgError("--repeat must be at least 1".into()));
                        }
                        repeat = v;
                    }
                    "--check" => check = Some(take_value(args, &mut i, "--check")?.to_string()),
                    "--wall-tolerance" => {
                        wall_tolerance = Some(tolerance(
                            take_value(args, &mut i, "--wall-tolerance")?,
                            "--wall-tolerance",
                        )?)
                    }
                    "--rss-tolerance" => {
                        rss_tolerance = Some(tolerance(
                            take_value(args, &mut i, "--rss-tolerance")?,
                            "--rss-tolerance",
                        )?)
                    }
                    flag if flag.starts_with('-') => {
                        return Err(ArgError(format!("unknown flag {flag:?}")));
                    }
                    // Bare scenario names read naturally too: `bench uniprot_10k`.
                    name => scenarios.push(name.to_string()),
                }
                i += 1;
            }
            if scenarios.is_empty() && !all {
                return Err(ArgError(
                    "bench needs --scenario <name> (repeatable) or --all; \
                     `mudsprof help` lists the matrix"
                        .into(),
                ));
            }
            if !scenarios.is_empty() && all {
                return Err(ArgError("--all and --scenario are mutually exclusive".into()));
            }
            Ok(Command::Bench {
                scenarios,
                all,
                threads,
                out,
                repeat,
                check,
                wall_tolerance,
                rss_tolerance,
            })
        }
        "lint" => Ok(Command::Lint { args: args[1..].to_vec() }),
        other => Err(ArgError(format!("unknown command {other:?}; try `mudsprof help`"))),
    }
}

/// Usage text.
pub const USAGE: &str = "\
mudsprof — holistic data profiling (MUDS, EDBT 2016 reproduction)

USAGE:
  mudsprof profile <file.csv> [-a muds|hfun|baseline|tane] [-d <delim>]
                   [--no-header] [--paper-faithful] [--threads N]
                   [--format human|json] [--out <file.json>]
                   [--append <delta.csv>] [--stats]
                   [--metrics pretty|json] [--trace <file.jsonl>]
  mudsprof compare <file.csv> [-d <delim>] [--no-header] [--threads N]
                   [--metrics pretty|json] [--trace <file.jsonl>]
  mudsprof generate <dataset> [--rows N] [--cols N] [-o out.csv]
  mudsprof fuzz [--seed S] [--iters N] [--threads T] [--corpus DIR]
                [--metrics pretty|json]
  mudsprof serve [--addr HOST:PORT] [--threads N] [--workers N]
                 [--cache-capacity BYTES] [--queue-capacity N]
                 [--timeout-ms MS] [--max-body-bytes BYTES]
                 [--data-dir DIR]
  mudsprof bench --scenario <name> [--scenario <name> ...] | --all
                 [--threads N] [--out DIR] [--repeat K]
                 [--check BASELINE_DIR] [--wall-tolerance F]
                 [--rss-tolerance F]
  mudsprof lint [--root DIR] [--format human|json|sarif] [--baseline FILE]
                [--write-baseline] [--update-baseline] [--lock-graph dot]
  mudsprof help

OUTPUT:
  --format json      emit the discovered dependencies as one canonical JSON
                     document (the same wire format the serve daemon
                     returns) on stdout; diagnostics move to stderr
  --out <file>       write that JSON document to a file instead of stdout

STATISTICS:
  --stats            piggyback a full column profile on the same scan that
                     discovers the dependencies: exact distinct/null counts,
                     min/max, length stats, entropy, numeric moments and
                     approximate quantiles per column, value-format and
                     semantic-type detection with a quality score, plus
                     dependency classification (minimal UCCs ranked as
                     identifier candidates, unary INDs typed as FK
                     candidates with inclusion coverage). The JSON document
                     gains schema-versioned column_profiles and
                     relationships sections.

INCREMENTAL:
  --append <file>    profile the base table, then append the rows of <file>
                     (same schema) through the incremental delta path
                     instead of re-profiling from scratch: appends can only
                     *break* UCCs/FDs, so only dependencies whose columns
                     meet the changed clusters are revalidated. The report
                     covers the patched table and states how many
                     dependency checks ran (delta.revalidated) versus were
                     carried over untouched (delta.skipped).

SERVING:
  serve runs a long-lived profiling daemon: POST /datasets registers CSV
  data (by server-side path or uploaded body) content-addressed by
  fingerprint, POST /profile runs any algorithm with results cached under
  (fingerprint, algorithm, config) and concurrent identical requests
  coalesced into one run, GET /jobs/:id reports job status, GET /metrics
  exposes server counters. --addr binds (port 0 = ephemeral), --workers
  sizes the job pool, --cache-capacity bounds the result cache in bytes
  (k/m/g suffixes allowed), --queue-capacity bounds the job queue (429 on
  overflow), --timeout-ms is the default wait before a request parks as a
  202 job, --max-body-bytes caps request bodies (default 64m; 413 beyond
  it, k/m/g suffixes allowed). --data-dir makes the daemon restart-proof:
  registered datasets and finished results write through to that
  directory (content-addressed blobs + a manifest, atomic-rename writes)
  and are replayed on the next boot; torn files are skipped and deleted.
  SIGTERM or POST /shutdown drains in-flight work and exits.

PARALLELISM:
  --threads N        worker threads for PLI construction, lattice-level
                     validation, and dictionary sorting (default: all
                     cores). Results and counters are identical for any N;
                     --threads 1 reproduces the sequential execution.

OBSERVABILITY:
  --metrics pretty   print the span tree and all work counters (PLI cache,
                     lattice walks, SPIDER merge, per-phase FD checks)
  --metrics json     emit the same as one JSON object per algorithm run
  --trace <file>     stream span/counter events as JSON Lines while running

BENCHMARKING:
  bench runs a fixed scenario matrix (uniprot_10k, uniprot_50k, ncvoter_10k,
  ncvoter_50k, ionosphere_wide profile scenarios × four algorithms, plus a
  serve_roundtrip daemon scenario and a stats_overhead scenario timing MUDS
  with the column-statistics layer off vs on) and writes one machine-readable
  BENCH_<scenario>.json per scenario into --out: rows/s, span-tree wall and
  per-phase times, work-counter deltas, sampled peak RSS, and (when built
  with --features bench-alloc) allocated bytes. --repeat K reports each
  entry's best of K runs. With --check DIR the fresh numbers are diffed
  against the baseline reports in DIR and the exit status is non-zero when
  wall time regresses more than --wall-tolerance (default 0.25) or peak RSS
  more than --rss-tolerance (default 0.30); schema drift always fails.

FUZZING:
  fuzz generates adversarial tables (NULL-heavy, constant, near-unique,
  duplicate-heavy, degenerate, 256-column boundary), runs every pipeline
  plus exponential naive oracles on the small ones, and cross-checks
  structural invariants (FD/UCC minimality, hitting-set duality, IND
  projection closure, g3 monotonicity, thread invariance). Disagreements
  are delta-debugged to a minimal repro; with --corpus DIR the repro is
  written there as CSV. Exit status is non-zero if any check failed.

Datasets for generate: uniprot, ionosphere, ncvoter, iris, balance, chess,
abalone, nursery, b-cancer, bridges, echocard, adult, letter, hepatitis.
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn profile_defaults() {
        let cmd = parse(&argv("profile data.csv")).unwrap();
        assert_eq!(
            cmd,
            Command::Profile {
                path: "data.csv".into(),
                algorithm: Algorithm::Muds,
                delimiter: ',',
                has_header: true,
                paper_faithful: false,
                metrics: None,
                trace: None,
                threads: None,
                format: OutputFormat::Human,
                out: None,
                append: None,
                stats: false,
            }
        );
    }

    #[test]
    fn stats_flag() {
        let cmd = parse(&argv("profile x.csv --stats")).unwrap();
        assert!(matches!(cmd, Command::Profile { stats: true, .. }));
        let cmd = parse(&argv("profile x.csv")).unwrap();
        assert!(matches!(cmd, Command::Profile { stats: false, .. }));
        // --stats belongs to profile, not compare.
        assert!(parse(&argv("compare x.csv --stats")).is_err());
    }

    #[test]
    fn append_flag() {
        let cmd = parse(&argv("profile x.csv --append delta.csv")).unwrap();
        match cmd {
            Command::Profile { append, .. } => assert_eq!(append.as_deref(), Some("delta.csv")),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("profile x.csv --append")).unwrap_err().0.contains("needs a value"));
        // --append belongs to profile, not compare.
        assert!(parse(&argv("compare x.csv --append delta.csv")).is_err());
    }

    #[test]
    fn format_and_out_flags() {
        let cmd = parse(&argv("profile x.csv --format json --out deps.json")).unwrap();
        match cmd {
            Command::Profile { format, out, .. } => {
                assert_eq!(format, OutputFormat::Json);
                assert_eq!(out.as_deref(), Some("deps.json"));
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse(&argv("profile x.csv -f json")).unwrap();
        assert!(matches!(cmd, Command::Profile { format: OutputFormat::Json, out: None, .. }));
        assert!(parse(&argv("profile x.csv --format yaml"))
            .unwrap_err()
            .0
            .contains("human or json"));
        assert!(parse(&argv("profile x.csv --out d.json"))
            .unwrap_err()
            .0
            .contains("--format json"));
        // --format belongs to profile, not compare.
        assert!(parse(&argv("compare x.csv --format json")).is_err());
    }

    #[test]
    fn serve_defaults_and_flags() {
        assert_eq!(
            parse(&argv("serve")).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:7171".into(),
                threads: None,
                workers: 0,
                cache_capacity: 64 << 20,
                queue_capacity: 128,
                timeout_ms: 30_000,
                max_body_bytes: 64 << 20,
                data_dir: None,
            }
        );
        let cmd = parse(&argv(
            "serve --addr 0.0.0.0:9000 -t 2 --workers 3 --cache-capacity 16m --queue-capacity 8 --timeout-ms 500 --max-body-bytes 1m --data-dir /tmp/muds-state",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                addr: "0.0.0.0:9000".into(),
                threads: Some(2),
                workers: 3,
                cache_capacity: 16 << 20,
                queue_capacity: 8,
                timeout_ms: 500,
                max_body_bytes: 1 << 20,
                data_dir: Some("/tmp/muds-state".into()),
            }
        );
        assert!(parse(&argv("serve --cache-capacity lots")).is_err());
        assert!(parse(&argv("serve --queue-capacity 0")).unwrap_err().0.contains("at least 1"));
        assert!(parse(&argv("serve --max-body-bytes 0")).unwrap_err().0.contains("at least 1"));
        assert!(parse(&argv("serve --max-body-bytes big")).is_err());
        assert!(parse(&argv("serve --data-dir")).is_err(), "--data-dir needs a value");
        assert!(parse(&argv("serve --threads 0")).unwrap_err().0.contains("at least 1"));
        assert!(parse(&argv("serve stray")).is_err());
    }

    #[test]
    fn byte_counts_accept_suffixes() {
        assert_eq!(byte_count("4096", "--x").unwrap(), 4096);
        assert_eq!(byte_count("8k", "--x").unwrap(), 8 << 10);
        assert_eq!(byte_count("64M", "--x").unwrap(), 64 << 20);
        assert_eq!(byte_count("2g", "--x").unwrap(), 2 << 30);
        assert!(byte_count("", "--x").is_err());
        assert!(byte_count("k", "--x").is_err());
        assert!(byte_count("12q", "--x").is_err());
    }

    #[test]
    fn threads_flag() {
        let cmd = parse(&argv("profile x.csv --threads 8")).unwrap();
        assert!(matches!(cmd, Command::Profile { threads: Some(8), .. }));
        let cmd = parse(&argv("compare x.csv -t 1")).unwrap();
        assert!(matches!(cmd, Command::Compare { threads: Some(1), .. }));
        assert!(parse(&argv("profile x.csv --threads 0")).unwrap_err().0.contains("at least 1"));
        assert!(parse(&argv("profile x.csv --threads two")).is_err());
        assert!(parse(&argv("profile x.csv --threads")).is_err());
    }

    #[test]
    fn profile_with_flags() {
        let cmd = parse(&argv("profile -a tane -d ; --no-header --paper-faithful x.csv")).unwrap();
        match cmd {
            Command::Profile { path, algorithm, delimiter, has_header, paper_faithful, .. } => {
                assert_eq!(path, "x.csv");
                assert_eq!(algorithm, Algorithm::Tane);
                assert_eq!(delimiter, ';');
                assert!(!has_header);
                assert!(paper_faithful);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn metrics_and_trace_flags() {
        let cmd = parse(&argv("profile x.csv --metrics json --trace run.jsonl")).unwrap();
        match cmd {
            Command::Profile { metrics, trace, .. } => {
                assert_eq!(metrics, Some(MetricsFormat::Json));
                assert_eq!(trace.as_deref(), Some("run.jsonl"));
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse(&argv("compare x.csv --metrics pretty")).unwrap();
        match cmd {
            Command::Compare { metrics, trace, .. } => {
                assert_eq!(metrics, Some(MetricsFormat::Pretty));
                assert_eq!(trace, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("profile x.csv --metrics yaml"))
            .unwrap_err()
            .0
            .contains("pretty or json"));
        assert!(parse(&argv("profile x.csv --trace")).is_err());
    }

    #[test]
    fn compare_and_generate() {
        assert!(matches!(parse(&argv("compare x.csv")).unwrap(), Command::Compare { .. }));
        let cmd = parse(&argv("generate ncvoter --rows 500 --cols 12 -o out.csv")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                dataset: "ncvoter".into(),
                rows: 500,
                cols: 12,
                output: Some("out.csv".into())
            }
        );
    }

    #[test]
    fn errors_are_helpful() {
        assert!(parse(&argv("profile")).is_err());
        assert!(parse(&argv("profile x.csv -a nope")).unwrap_err().0.contains("unknown algorithm"));
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("profile x.csv --delimiter ,, ")).is_err());
        assert!(parse(&argv("generate --rows abc uniprot")).is_err());
    }

    #[test]
    fn fuzz_defaults_and_flags() {
        assert_eq!(
            parse(&argv("fuzz")).unwrap(),
            Command::Fuzz { seed: 42, iters: 500, threads: None, corpus: None, metrics: None }
        );
        let cmd =
            parse(&argv("fuzz --seed 7 --iters 100 -t 2 --corpus tests/corpus --metrics json"))
                .unwrap();
        assert_eq!(
            cmd,
            Command::Fuzz {
                seed: 7,
                iters: 100,
                threads: Some(2),
                corpus: Some("tests/corpus".into()),
                metrics: Some(MetricsFormat::Json),
            }
        );
        assert!(parse(&argv("fuzz --seed x")).is_err());
        assert!(parse(&argv("fuzz --iters")).is_err());
        assert!(parse(&argv("fuzz --threads 0")).unwrap_err().0.contains("at least 1"));
        assert!(parse(&argv("fuzz stray")).is_err());
    }

    #[test]
    fn bench_flags() {
        assert_eq!(
            parse(&argv("bench --all")).unwrap(),
            Command::Bench {
                scenarios: vec![],
                all: true,
                threads: None,
                out: ".".into(),
                repeat: 3,
                check: None,
                wall_tolerance: None,
                rss_tolerance: None,
            }
        );
        let cmd = parse(&argv(
            "bench -s uniprot_10k --scenario ionosphere_wide -t 4 -o target/bench -r 5 \
             --check baselines --wall-tolerance 0.5 --rss-tolerance 0.6",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Bench {
                scenarios: vec!["uniprot_10k".into(), "ionosphere_wide".into()],
                all: false,
                threads: Some(4),
                out: "target/bench".into(),
                repeat: 5,
                check: Some("baselines".into()),
                wall_tolerance: Some(0.5),
                rss_tolerance: Some(0.6),
            }
        );
        // Bare names work as positional scenarios.
        let cmd = parse(&argv("bench uniprot_10k")).unwrap();
        assert!(
            matches!(cmd, Command::Bench { ref scenarios, .. } if scenarios == &["uniprot_10k"])
        );
        assert!(parse(&argv("bench")).unwrap_err().0.contains("--scenario"));
        assert!(parse(&argv("bench --all -s x")).unwrap_err().0.contains("mutually exclusive"));
        assert!(parse(&argv("bench --all --repeat 0")).unwrap_err().0.contains("at least 1"));
        assert!(parse(&argv("bench --all --wall-tolerance -1")).is_err());
        assert!(parse(&argv("bench --all --rss-tolerance nan")).is_err());
        assert!(parse(&argv("bench --all --threads 0")).is_err());
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }
}
