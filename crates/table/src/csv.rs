//! Minimal RFC-4180-style CSV reader and writer.
//!
//! Implemented in-tree (rather than pulling a dependency) because the
//! profiling pipeline needs only a small, predictable subset: configurable
//! delimiter, double-quote quoting with `""` escapes, quoted fields that may
//! contain delimiters and newlines, and both `\n` and `\r\n` row
//! terminators. Empty fields are NULL by the conventions of
//! [`crate::column::Column`].

use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;

use crate::error::TableError;
use crate::table::Table;

/// CSV parsing options.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Whether the first record carries column names (default `true`).
    /// Without a header, columns are named `col0`, `col1`, ...
    pub has_header: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions { delimiter: ',', has_header: true }
    }
}

/// One parsed CSV record together with the 1-based source line it starts
/// on (a record spans multiple lines when a quoted field contains
/// newlines).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvRecord {
    /// 1-based line number of the record's first character.
    pub line: usize,
    /// The record's fields, in order.
    pub fields: Vec<String>,
}

/// Splits CSV `input` into records of fields.
pub fn parse_csv(input: &str, options: &CsvOptions) -> Result<Vec<Vec<String>>, TableError> {
    Ok(parse_csv_records(input, options)?.into_iter().map(|r| r.fields).collect())
}

/// [`parse_csv`], keeping each record's source line number for error
/// reporting (ragged rows, width mismatches).
pub fn parse_csv_records(input: &str, options: &CsvOptions) -> Result<Vec<CsvRecord>, TableError> {
    let mut records: Vec<CsvRecord> = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut line = 1usize;
    // Line the current record started on, captured at its first character.
    let mut record_start = 1usize;
    // Line the currently open quote started on, for unterminated-quote
    // errors (the EOF line would be useless when the field spans lines).
    let mut quote_open = 1usize;
    let mut any_char_in_record = false;

    fn end_record(
        records: &mut Vec<CsvRecord>,
        record: &mut Vec<String>,
        field: &mut String,
        any_char_in_record: &mut bool,
        record_start: usize,
    ) {
        // A terminator with no preceding content is a blank line, not an
        // empty one-field record.
        if *any_char_in_record || !field.is_empty() || !record.is_empty() {
            record.push(std::mem::take(field));
            records.push(CsvRecord { line: record_start, fields: std::mem::take(record) });
        }
        *any_char_in_record = false;
    }

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    field.push(c);
                    line += 1;
                }
                _ => field.push(c),
            }
            continue;
        }
        if !any_char_in_record && c != '\n' && c != '\r' {
            record_start = line;
        }
        match c {
            '"' => {
                in_quotes = true;
                quote_open = line;
                any_char_in_record = true;
            }
            '\r' => {
                // "\r\n" and a lone "\r" both terminate the record
                // (RFC 4180 uses CRLF; classic Mac files used bare CR —
                // silently gluing two lines together is never right).
                if chars.peek() == Some(&'\n') {
                    chars.next();
                }
                line += 1;
                end_record(
                    &mut records,
                    &mut record,
                    &mut field,
                    &mut any_char_in_record,
                    record_start,
                );
            }
            '\n' => {
                line += 1;
                end_record(
                    &mut records,
                    &mut record,
                    &mut field,
                    &mut any_char_in_record,
                    record_start,
                );
            }
            d if d == options.delimiter => {
                record.push(std::mem::take(&mut field));
                any_char_in_record = true;
            }
            _ => {
                field.push(c);
                any_char_in_record = true;
            }
        }
    }
    if in_quotes {
        return Err(TableError::Csv {
            line: quote_open,
            message: "unterminated quoted field (quote never closed before end of input)".into(),
        });
    }
    end_record(&mut records, &mut record, &mut field, &mut any_char_in_record, record_start);
    Ok(records)
}

/// Parses CSV text into a [`Table`].
pub fn table_from_csv(name: &str, input: &str, options: &CsvOptions) -> Result<Table, TableError> {
    let mut records = parse_csv_records(input, options)?;
    let header: Vec<String> = if options.has_header {
        if records.is_empty() {
            return Err(TableError::NoColumns);
        }
        records.remove(0).fields
    } else {
        let width = records.first().map_or(0, |r| r.fields.len());
        (0..width).map(|i| format!("col{i}")).collect()
    };
    if header.is_empty() {
        return Err(TableError::NoColumns);
    }
    // Validate widths here, where source line numbers are still known
    // (Table::from_rows only sees row indices).
    for (i, rec) in records.iter().enumerate() {
        if rec.fields.len() != header.len() {
            return Err(TableError::RaggedRow {
                row: i,
                expected: header.len(),
                got: rec.fields.len(),
                line: Some(rec.line),
            });
        }
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = records.into_iter().map(|r| r.fields).collect();
    Table::from_rows(name, &header_refs, &rows)
}

/// Parses raw CSV bytes (e.g. an uploaded request body) into a [`Table`].
///
/// The bytes must be UTF-8; a malformed sequence is reported as a CSV
/// error pointing at the line containing the first invalid byte.
pub fn table_from_csv_bytes(
    name: &str,
    bytes: &[u8],
    options: &CsvOptions,
) -> Result<Table, TableError> {
    let input = std::str::from_utf8(bytes).map_err(|e| {
        let line = 1 + bytes[..e.valid_up_to()].iter().filter(|&&b| b == b'\n').count();
        TableError::Csv {
            line,
            message: format!("invalid UTF-8 at byte offset {}", e.valid_up_to()),
        }
    })?;
    table_from_csv(name, input, options)
}

/// Reads a CSV file into a [`Table`], named after the file stem.
pub fn table_from_csv_file(
    path: impl AsRef<Path>,
    options: &CsvOptions,
) -> Result<Table, TableError> {
    let path = path.as_ref();
    let mut input = String::new();
    File::open(path)?.read_to_string(&mut input)?;
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("table");
    table_from_csv(name, &input, options)
}

/// Serializes a field, quoting when necessary.
fn write_field(out: &mut String, field: &str, delimiter: char) {
    let needs_quotes = field.contains(delimiter)
        || field.contains('"')
        || field.contains('\n')
        || field.contains('\r');
    if needs_quotes {
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Serializes a [`Table`] to CSV text (header included; NULLs as empty
/// fields). Round-trips through [`table_from_csv`].
pub fn table_to_csv(table: &Table, options: &CsvOptions) -> String {
    let mut out = String::new();
    for (i, name) in table.column_names().iter().enumerate() {
        if i > 0 {
            out.push(options.delimiter);
        }
        write_field(&mut out, name, options.delimiter);
    }
    out.push('\n');
    for r in 0..table.num_rows() {
        for (i, v) in table.row(r).iter().enumerate() {
            if i > 0 {
                out.push(options.delimiter);
            }
            write_field(&mut out, v.unwrap_or(""), options.delimiter);
        }
        out.push('\n');
    }
    out
}

/// Writes a [`Table`] to a CSV file.
pub fn table_to_csv_file(
    table: &Table,
    path: impl AsRef<Path>,
    options: &CsvOptions,
) -> Result<(), TableError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(table_to_csv(table, options).as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_parse() {
        let t = table_from_csv("t", "a,b\n1,2\n3,4\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.column_names(), vec!["a", "b"]);
        assert_eq!(t.row(1), vec![Some("3"), Some("4")]);
    }

    #[test]
    fn quoted_fields_with_delimiters_and_newlines() {
        let input = "a,b\n\"x,y\",\"line1\nline2\",\n";
        // Note: three fields in the data row — ragged, should error.
        assert!(table_from_csv("t", input, &CsvOptions::default()).is_err());
        let input = "a,b\n\"x,y\",\"line1\nline2\"\n";
        let t = table_from_csv("t", input, &CsvOptions::default()).unwrap();
        assert_eq!(t.row(0), vec![Some("x,y"), Some("line1\nline2")]);
    }

    #[test]
    fn escaped_quotes() {
        let t = table_from_csv("t", "a\n\"he said \"\"hi\"\"\"\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.row(0), vec![Some("he said \"hi\"")]);
    }

    #[test]
    fn unterminated_quote_is_error() {
        let err = table_from_csv("t", "a\n\"oops\n", &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, TableError::Csv { .. }));
    }

    #[test]
    fn unterminated_quote_reports_the_opening_line() {
        // The quote opens on line 2; the field then swallows the rest of
        // the input. The error must point at line 2, not at EOF.
        let err =
            table_from_csv("t", "a\n\"oops\nmore\nlines\n", &CsvOptions::default()).unwrap_err();
        match err {
            TableError::Csv { line, message } => {
                assert_eq!(line, 2, "expected the quote-open line");
                assert!(message.contains("unterminated"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn crlf_terminators() {
        let t = table_from_csv("t", "a,b\r\n1,2\r\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.row(0), vec![Some("1"), Some("2")]);
    }

    #[test]
    fn lone_carriage_return_terminates_the_record() {
        // Classic-Mac line endings: "a,b\r1,2\r" is two records, not one
        // record with glued fields (a regression the fuzzer caught: the
        // old parser swallowed the '\r' and merged adjacent lines).
        let t = table_from_csv("t", "a,b\r1,2\r3,4", &CsvOptions::default()).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.column_names(), vec!["a", "b"]);
        assert_eq!(t.row(0), vec![Some("1"), Some("2")]);
        assert_eq!(t.row(1), vec![Some("3"), Some("4")]);
        // And a ragged record after lone-\r terminators reports the right
        // line.
        let err = table_from_csv("t", "a,b\r1,2\r3,4,5\r", &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, TableError::RaggedRow { row: 1, got: 3, line: Some(3), .. }));
    }

    #[test]
    fn trailing_delimiter_is_a_ragged_row_with_line_number() {
        // "1,2," parses as three fields (the last one empty/NULL); against
        // a two-column header that is a ragged row on line 3.
        let err = table_from_csv("t", "a,b\n1,2\n3,4,\n", &CsvOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            TableError::RaggedRow { row: 1, expected: 2, got: 3, line: Some(3) }
        ));
    }

    #[test]
    fn missing_trailing_newline() {
        let t = table_from_csv("t", "a,b\n1,2", &CsvOptions::default()).unwrap();
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn empty_fields_are_null() {
        let t = table_from_csv("t", "a,b\n,2\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.row(0), vec![None, Some("2")]);
    }

    #[test]
    fn quoted_empty_string_is_also_null() {
        // We deliberately collapse "" (quoted empty) and empty to NULL.
        let t = table_from_csv("t", "a,b\n\"\",2\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.row(0), vec![None, Some("2")]);
    }

    #[test]
    fn custom_delimiter() {
        let opts = CsvOptions { delimiter: ';', has_header: true };
        let t = table_from_csv("t", "a;b\n1;2\n", &opts).unwrap();
        assert_eq!(t.row(0), vec![Some("1"), Some("2")]);
    }

    #[test]
    fn headerless_input() {
        let opts = CsvOptions { delimiter: ',', has_header: false };
        let t = table_from_csv("t", "1,2\n3,4\n", &opts).unwrap();
        assert_eq!(t.column_names(), vec!["col0", "col1"]);
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn ragged_rows_rejected_with_row_number() {
        let err = table_from_csv("t", "a,b\n1,2\n1,2,3\n", &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, TableError::RaggedRow { row: 1, line: Some(3), .. }));
    }

    #[test]
    fn ragged_row_after_multiline_quoted_field_reports_record_start_line() {
        // The second data record starts on line 3 but its quoted field
        // spans through line 5; the ragged third record starts on line 6.
        let input = "a,b\n1,2\n\"x\ny\nz\",3\n4,5,6\n";
        let err = table_from_csv("t", input, &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, TableError::RaggedRow { row: 2, got: 3, line: Some(6), .. }));
    }

    #[test]
    fn round_trip() {
        let t = table_from_csv(
            "t",
            "a,b\n\"x,1\",\n\"multi\nline\",\"q\"\"q\"\n",
            &CsvOptions::default(),
        )
        .unwrap();
        let csv = table_to_csv(&t, &CsvOptions::default());
        let t2 = table_from_csv("t", &csv, &CsvOptions::default()).unwrap();
        assert_eq!(t.num_rows(), t2.num_rows());
        for r in 0..t.num_rows() {
            assert_eq!(t.row(r), t2.row(r));
        }
    }

    #[test]
    fn file_round_trip() {
        let t = table_from_csv("x", "a,b\n1,2\n", &CsvOptions::default()).unwrap();
        let dir = std::env::temp_dir().join("muds-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csv");
        table_to_csv_file(&t, &path, &CsvOptions::default()).unwrap();
        let t2 = table_from_csv_file(&path, &CsvOptions::default()).unwrap();
        assert_eq!(t2.name(), "roundtrip");
        assert_eq!(t2.num_rows(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bytes_entry_point_parses_and_validates_utf8() {
        let t = table_from_csv_bytes("t", b"a,b\n1,2\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.num_rows(), 1);
        // Invalid UTF-8 on line 2 is reported with that line number.
        let err = table_from_csv_bytes("t", b"a,b\n1,\xff\n", &CsvOptions::default()).unwrap_err();
        match err {
            TableError::Csv { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("UTF-8"), "{message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_input_is_no_columns() {
        assert!(matches!(
            table_from_csv("t", "", &CsvOptions::default()),
            Err(TableError::NoColumns)
        ));
    }
}
