//! Error types for table construction and CSV parsing.

use std::fmt;

/// Errors raised while building a [`crate::Table`] or parsing CSV input.
#[derive(Debug)]
pub enum TableError {
    /// The input has more columns than the profiling lattice supports.
    TooManyColumns { got: usize, max: usize },
    /// A row's field count differs from the header's. `line` is the
    /// 1-based source line the record starts on, when the row came from
    /// CSV text (`None` for rows built programmatically).
    RaggedRow { row: usize, expected: usize, got: usize, line: Option<usize> },
    /// Two columns share a name.
    DuplicateColumnName(String),
    /// A delta names a row id the table does not have.
    RowOutOfRange { row: usize, num_rows: usize },
    /// The input declares no columns at all.
    NoColumns,
    /// Malformed CSV (e.g. unterminated quoted field).
    Csv { line: usize, message: String },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::TooManyColumns { got, max } => {
                write!(f, "table has {got} columns; the profiler supports at most {max}")
            }
            TableError::RaggedRow { row, expected, got, line: Some(line) } => {
                write!(f, "row {row} (line {line}) has {got} fields, expected {expected}")
            }
            TableError::RaggedRow { row, expected, got, line: None } => {
                write!(f, "row {row} has {got} fields, expected {expected}")
            }
            TableError::DuplicateColumnName(name) => {
                write!(f, "duplicate column name {name:?}")
            }
            TableError::RowOutOfRange { row, num_rows } => {
                write!(f, "row id {row} out of range for a table of {num_rows} rows")
            }
            TableError::NoColumns => write!(f, "table has no columns"),
            TableError::Csv { line, message } => write!(f, "CSV error at line {line}: {message}"),
            TableError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for TableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TableError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TableError {
    fn from(e: std::io::Error) -> Self {
        TableError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TableError::TooManyColumns { got: 300, max: 256 };
        assert!(e.to_string().contains("300"));
        let e = TableError::RaggedRow { row: 7, expected: 3, got: 5, line: None };
        assert!(e.to_string().contains("row 7"));
        let e = TableError::RaggedRow { row: 7, expected: 3, got: 5, line: Some(9) };
        assert!(e.to_string().contains("line 9"));
        let e = TableError::Csv { line: 2, message: "unterminated quote".into() };
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error;
        let e = TableError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
    }
}
