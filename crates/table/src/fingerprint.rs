//! Content fingerprinting for [`Table`]s.
//!
//! The serving layer stores datasets and caches profiling results by
//! *content*, not by name or path: two registrations of byte-identical (or
//! merely value-identical) data must collapse onto one registry entry and
//! one cache lineage. The fingerprint therefore hashes the table's
//! *canonical decoded content* — schema, row count, dictionaries, and the
//! dictionary-encoded cell codes — rather than raw CSV bytes, so a table
//! survives a CSV round-trip (quoting differences, `\r\n` vs `\n`, quoted
//! empty vs bare empty) with its fingerprint intact as long as row and
//! column order are preserved.
//!
//! The hash is FNV-1a/128 with length-prefixed framing (no separator
//! ambiguity between adjacent variable-length fields). 128 bits keeps
//! accidental collisions out of reach for any realistic registry size;
//! this is an identifier, not a cryptographic commitment.

use std::fmt;
use std::str::FromStr;

use crate::table::Table;

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Streaming FNV-1a/128 hasher over framed byte fields.
struct Fnv128(u128);

impl Fnv128 {
    fn new() -> Self {
        Fnv128(FNV128_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Writes a length-prefixed field, so `["ab","c"]` and `["a","bc"]`
    /// hash differently.
    fn write_framed(&mut self, bytes: &[u8]) {
        self.write(&(bytes.len() as u64).to_le_bytes());
        self.write(bytes);
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// A 128-bit content hash of one table. Renders as (and parses from) 32
/// lowercase hex digits — the wire form used in registry and cache keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub u128);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl FromStr for Fingerprint {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 32 {
            return Err(format!("fingerprint must be 32 hex digits, got {}", s.len()));
        }
        u128::from_str_radix(s, 16)
            .map(Fingerprint)
            .map_err(|_| "fingerprint must be 32 hex digits".to_string())
    }
}

/// Content hash of `table`'s canonical decoded form.
///
/// Covers: column count and names (in schema order), row count, each
/// column's sorted value dictionary, and each column's code sequence. Two
/// tables get the same fingerprint iff they have identical schemas and
/// identical cell values (NULLs included) in identical row order — the
/// dictionary encoding is deterministic in the values, so code sequences
/// are comparable across independently loaded copies.
pub fn fingerprint(table: &Table) -> Fingerprint {
    let mut h = Fnv128::new();
    h.write_u64(table.num_columns() as u64);
    h.write_u64(table.num_rows() as u64);
    for column in table.columns() {
        h.write_framed(column.name().as_bytes());
        // The dictionary pins what each code means; null_code pins which
        // code (if any) is NULL.
        h.write_u64(column.sorted_distinct_values().len() as u64);
        for value in column.sorted_distinct_values() {
            h.write_framed(value.as_bytes());
        }
        h.write_u64(column.null_code() as u64);
        for &code in column.codes() {
            h.write(&code.to_le_bytes());
        }
    }
    Fingerprint(h.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::{table_from_csv, table_to_csv, CsvOptions};

    fn simple() -> Table {
        Table::from_rows("t", &["a", "b"], &[vec!["1", "x"], vec!["2", ""], vec!["1", "y"]])
            .unwrap()
    }

    #[test]
    fn identical_content_same_fingerprint_regardless_of_name() {
        let a = simple();
        let b = Table::from_rows(
            "other-name",
            &["a", "b"],
            &[vec!["1", "x"], vec!["2", ""], vec!["1", "y"]],
        )
        .unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b), "table name must not affect content hash");
    }

    #[test]
    fn csv_round_trip_preserves_fingerprint() {
        let t = Table::from_rows(
            "t",
            &["a", "b"],
            &[vec!["x,1", "he said \"hi\""], vec!["", "multi\nline"]],
        )
        .unwrap();
        let csv = table_to_csv(&t, &CsvOptions::default());
        let reloaded = table_from_csv("t2", &csv, &CsvOptions::default()).unwrap();
        assert_eq!(fingerprint(&t), fingerprint(&reloaded));
    }

    #[test]
    fn any_content_difference_changes_fingerprint() {
        let base = fingerprint(&simple());
        // Different cell value.
        let t =
            Table::from_rows("t", &["a", "b"], &[vec!["1", "x"], vec!["2", ""], vec!["1", "z"]])
                .unwrap();
        assert_ne!(fingerprint(&t), base);
        // NULL vs value.
        let t =
            Table::from_rows("t", &["a", "b"], &[vec!["1", "x"], vec!["2", "q"], vec!["1", "y"]])
                .unwrap();
        assert_ne!(fingerprint(&t), base);
        // Different column name.
        let t =
            Table::from_rows("t", &["a", "c"], &[vec!["1", "x"], vec!["2", ""], vec!["1", "y"]])
                .unwrap();
        assert_ne!(fingerprint(&t), base);
        // Row order matters.
        let t =
            Table::from_rows("t", &["a", "b"], &[vec!["1", "y"], vec!["2", ""], vec!["1", "x"]])
                .unwrap();
        assert_ne!(fingerprint(&t), base);
    }

    #[test]
    fn framing_distinguishes_shifted_values() {
        // Same concatenation of dictionary bytes, different splits.
        let a = Table::from_rows("t", &["c"], &[vec!["ab"], vec!["c"]]).unwrap();
        let b = Table::from_rows("t", &["c"], &[vec!["a"], vec!["bc"]]).unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn display_and_parse_round_trip() {
        let fp = fingerprint(&simple());
        let text = fp.to_string();
        assert_eq!(text.len(), 32);
        assert_eq!(text.parse::<Fingerprint>().unwrap(), fp);
        assert!("xyz".parse::<Fingerprint>().is_err());
        assert!("g".repeat(32).parse::<Fingerprint>().is_err());
    }
}
