//! Dictionary-encoded column storage.
//!
//! Every column is stored as a vector of integer *codes* plus a sorted
//! dictionary of the distinct non-null values. This single representation
//! serves all three profiling tasks of the paper at once (§3, "shared data
//! structures"):
//!
//! * **PLIs** (UCC/FD discovery) are built by grouping equal codes — no
//!   string comparisons after load time;
//! * **SPIDER** (IND discovery) consumes the sorted dictionary directly as
//!   its duplicate-free sorted value list, exactly the synergy the paper
//!   describes ("at construction time, PLIs map values to positions so that
//!   Spider can retrieve duplicate-free value lists");
//! * cardinality statistics fall out of the dictionary length.

/// NULL handling: an empty input field is NULL. For UCC/FD discovery NULL
/// behaves as an ordinary value equal to itself (two NULLs agree) — all
/// NULL rows of a column share the single code [`Column::null_code`], so
/// they land in one PLI equality cluster: an all-NULL column is a constant
/// (∅ → A holds, the column can never be part of a minimal UCC of a
/// multi-row table), and a partially-NULL column treats its NULL rows as
/// one more distinct value. For IND discovery NULLs are ignored on the
/// dependent side: [`Column::sorted_distinct_values`] excludes them, which
/// makes an all-NULL column vacuously included in every other column —
/// both SPIDER and the De Marchi inverted index consume this same list, so
/// the two IND algorithms share one NULL semantics by construction. These
/// are the Metanome conventions the paper's evaluation framework uses;
/// they are pinned by tests here, in `muds-pli`, in `muds-ind`, and by the
/// `null_semantics` integration suite.
#[derive(Debug, Clone)]
pub struct Column {
    name: String,
    /// Per-row dictionary codes. Codes are order-preserving: `code(a) <
    /// code(b)` iff `a < b` as strings. NULL rows get [`Column::null_code`],
    /// one past the largest dictionary code, so NULLs form a single equality
    /// class.
    codes: Vec<u32>,
    /// Sorted distinct non-null values; the code of a value is its index.
    dictionary: Vec<String>,
    /// Number of NULL entries.
    null_count: usize,
}

impl Column {
    /// Dictionary-encodes `values`. Empty strings become NULL.
    pub fn from_values(name: impl Into<String>, values: &[&str]) -> Self {
        use rayon::prelude::*;
        let mut dictionary: Vec<String> =
            values.iter().filter(|v| !v.is_empty()).map(|v| v.to_string()).collect();
        // This sort is SPIDER's "sorting phase" (the sorted duplicate-free
        // value lists fall out of dictionary encoding), parallelized here.
        // Equal strings are indistinguishable, so the stable parallel sort
        // yields exactly what `sort_unstable` did.
        dictionary.par_sort_unstable();
        dictionary.dedup();
        let null_code = dictionary.len() as u32;
        let mut null_count = 0;
        // lint:allow(panic): the dictionary was built from these same
        // values two lines up, so every non-empty value binary-searches to
        // a hit; a miss is an encoder bug worth a loud abort.
        let codes = values
            .iter()
            .map(|v| {
                if v.is_empty() {
                    null_count += 1;
                    null_code
                } else {
                    dictionary.binary_search_by(|d| d.as_str().cmp(v)).expect("value in dictionary")
                        as u32
                }
            })
            .collect();
        Column { name: name.into(), codes, dictionary, null_count }
    }

    /// Assembles a column from pre-encoded parts (delta maintenance, which
    /// merges dictionaries and remaps codes instead of re-sorting raw
    /// values). The caller guarantees the [`Column::from_values`]
    /// invariants: `dictionary` sorted and duplicate-free, every code
    /// `<= dictionary.len()`, `null_count` = occurrences of the NULL code.
    pub(crate) fn from_parts(
        name: String,
        codes: Vec<u32>,
        dictionary: Vec<String>,
        null_count: usize,
    ) -> Self {
        // lint:allow(panic): windows(2) always yields two-element slices.
        debug_assert!(dictionary.windows(2).all(|w| w[0] < w[1]), "dictionary sorted + deduped");
        debug_assert!(codes.iter().all(|&c| (c as usize) <= dictionary.len()));
        debug_assert_eq!(
            null_count,
            codes.iter().filter(|&&c| c as usize == dictionary.len()).count()
        );
        Column { name, codes, dictionary, null_count }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-row dictionary codes (NULL rows carry [`Self::null_code`]).
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True iff the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The sorted, duplicate-free list of non-null values — SPIDER's input.
    pub fn sorted_distinct_values(&self) -> &[String] {
        &self.dictionary
    }

    /// The code assigned to NULL rows.
    pub fn null_code(&self) -> u32 {
        self.dictionary.len() as u32
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.null_count
    }

    /// Number of distinct values under UCC/FD semantics (NULL counts as one
    /// value when present).
    pub fn distinct_count(&self) -> usize {
        self.dictionary.len() + usize::from(self.null_count > 0)
    }

    /// Total number of distinct codes including the NULL class — the code
    /// domain size, useful for sizing PLI buffers.
    pub fn code_domain(&self) -> usize {
        self.dictionary.len() + 1
    }

    /// Decodes the value of `row`; `None` for NULL.
    pub fn value(&self, row: usize) -> Option<&str> {
        let code = self.codes[row];
        self.dictionary.get(code as usize).map(|s| s.as_str())
    }

    /// Occurrences per code over the whole code domain: `counts[c]` is the
    /// number of rows carrying code `c`, with `counts[null_code]` the NULL
    /// count. One pass over the codes — the histogram the column-statistics
    /// layer derives entropy, duplication, and count-weighted moments from.
    pub fn value_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.code_domain()];
        for &code in &self.codes {
            counts[code as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_is_sorted_and_deduped() {
        let c = Column::from_values("c", &["b", "a", "b", "c", "a"]);
        assert_eq!(c.sorted_distinct_values(), &["a", "b", "c"]);
        assert_eq!(c.distinct_count(), 3);
        assert_eq!(c.len(), 5);
        assert_eq!(c.null_count(), 0);
    }

    #[test]
    fn codes_are_order_preserving() {
        let c = Column::from_values("c", &["delta", "alpha", "charlie"]);
        // alpha=0, charlie=1, delta=2
        assert_eq!(c.codes(), &[2, 0, 1]);
    }

    #[test]
    fn nulls_share_one_code_past_dictionary() {
        let c = Column::from_values("c", &["x", "", "y", ""]);
        assert_eq!(c.null_count(), 2);
        assert_eq!(c.null_code(), 2);
        assert_eq!(c.codes(), &[0, 2, 1, 2]);
        assert_eq!(c.distinct_count(), 3); // x, y, NULL
        assert_eq!(c.sorted_distinct_values(), &["x", "y"]);
    }

    #[test]
    fn all_null_column() {
        let c = Column::from_values("c", &["", "", ""]);
        assert_eq!(c.distinct_count(), 1);
        assert_eq!(c.sorted_distinct_values().len(), 0);
        assert_eq!(c.null_code(), 0);
        assert_eq!(c.value(0), None);
    }

    #[test]
    fn empty_column() {
        let c = Column::from_values("c", &[]);
        assert!(c.is_empty());
        assert_eq!(c.distinct_count(), 0);
    }

    #[test]
    fn value_round_trips() {
        let c = Column::from_values("c", &["m", "", "k"]);
        assert_eq!(c.value(0), Some("m"));
        assert_eq!(c.value(1), None);
        assert_eq!(c.value(2), Some("k"));
    }

    #[test]
    fn value_counts_histogram_covers_the_code_domain() {
        let c = Column::from_values("c", &["b", "a", "b", "", "b"]);
        // a=0 (1 row), b=1 (3 rows), NULL=2 (1 row).
        assert_eq!(c.value_counts(), vec![1, 3, 1]);
        let empty = Column::from_values("c", &[]);
        assert_eq!(empty.value_counts(), vec![0], "empty column still has the NULL slot");
    }
}
