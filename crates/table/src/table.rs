//! In-memory relation: a named collection of dictionary-encoded columns.

use std::collections::HashSet;

use rayon::prelude::*;

use crate::column::Column;
use crate::error::TableError;

/// Maximum column count, matching `muds_lattice::MAX_COLUMNS`.
pub const MAX_COLUMNS: usize = 256;

/// An immutable, column-oriented relation instance.
///
/// This is the substrate every discovery algorithm operates on. Rows are
/// identified by their zero-based position; columns by their zero-based
/// schema position (the same indices used in `ColumnSet`s).
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
    num_rows: usize,
}

impl Table {
    /// Builds a table from row-major string data.
    ///
    /// `rows` must all have exactly `column_names.len()` fields; empty
    /// fields are NULL. Columns are dictionary-encoded independently, in
    /// parallel (schema order of the result is unaffected).
    ///
    /// A zero-column table is permitted (it also arises from
    /// [`Table::take_columns`]`(0)`); every profiling algorithm returns
    /// well-defined (empty) metadata for it.
    pub fn from_rows<S: AsRef<str> + Sync>(
        name: impl Into<String>,
        column_names: &[&str],
        rows: &[Vec<S>],
    ) -> Result<Self, TableError> {
        if column_names.len() > MAX_COLUMNS {
            return Err(TableError::TooManyColumns { got: column_names.len(), max: MAX_COLUMNS });
        }
        let mut seen = HashSet::new();
        for &n in column_names {
            if !seen.insert(n) {
                return Err(TableError::DuplicateColumnName(n.to_string()));
            }
        }
        for (i, row) in rows.iter().enumerate() {
            if row.len() != column_names.len() {
                return Err(TableError::RaggedRow {
                    row: i,
                    expected: column_names.len(),
                    got: row.len(),
                    line: None,
                });
            }
        }
        let columns = (0..column_names.len())
            .into_par_iter()
            .map(|c| {
                let values: Vec<&str> = rows.iter().map(|r| r[c].as_ref()).collect();
                Column::from_values(column_names[c], &values)
            })
            .collect();
        Ok(Table { name: name.into(), columns, num_rows: rows.len() })
    }

    /// Assembles a table from pre-built columns (delta maintenance). The
    /// caller guarantees every column has `num_rows` codes and that the
    /// schema invariants of [`Table::from_rows`] hold.
    pub(crate) fn from_parts(name: String, columns: Vec<Column>, num_rows: usize) -> Self {
        debug_assert!(columns.iter().all(|c| c.len() == num_rows));
        Table { name, columns, num_rows }
    }

    /// Table name (dataset identifier in experiment output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column at schema position `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Schema position of the column named `name`, if any.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name() == name)
    }

    /// Column names in schema order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name()).collect()
    }

    /// Reconstructs row `row` as decoded values (`None` = NULL).
    pub fn row(&self, row: usize) -> Vec<Option<&str>> {
        self.columns.iter().map(|c| c.value(row)).collect()
    }

    /// True iff the relation contains two identical rows (comparing NULLs
    /// equal). The holistic algorithms require duplicate-free input (§3 of
    /// the paper: a relation with duplicate rows has no UCC at all).
    pub fn has_duplicate_rows(&self) -> bool {
        let mut seen: HashSet<Vec<u32>> = HashSet::with_capacity(self.num_rows);
        for r in 0..self.num_rows {
            let key: Vec<u32> = self.columns.iter().map(|c| c.codes()[r]).collect();
            if !seen.insert(key) {
                return true;
            }
        }
        false
    }

    /// Returns a copy with duplicate rows removed (first occurrence kept) —
    /// the preprocessing step §3 assumes.
    pub fn dedup_rows(&self) -> Table {
        let mut seen: HashSet<Vec<u32>> = HashSet::with_capacity(self.num_rows);
        let mut keep: Vec<usize> = Vec::with_capacity(self.num_rows);
        for r in 0..self.num_rows {
            let key: Vec<u32> = self.columns.iter().map(|c| c.codes()[r]).collect();
            if seen.insert(key) {
                keep.push(r);
            }
        }
        self.select_rows(&keep)
    }

    /// Projects the table onto the given row indices (in the given order).
    /// Columns re-encode independently, in parallel.
    pub fn select_rows(&self, rows: &[usize]) -> Table {
        let columns = self
            .columns
            .par_iter()
            .map(|c| {
                let values: Vec<&str> = rows.iter().map(|&r| c.value(r).unwrap_or("")).collect();
                Column::from_values(c.name(), &values)
            })
            .collect();
        Table { name: self.name.clone(), columns, num_rows: rows.len() }
    }

    /// Projects the table onto its first `n` rows — the paper's
    /// row-scalability experiments (§6.1) work this way.
    pub fn take_rows(&self, n: usize) -> Table {
        let rows: Vec<usize> = (0..n.min(self.num_rows)).collect();
        self.select_rows(&rows)
    }

    /// Projects the table onto the first `n` columns — the paper's
    /// column-scalability experiments (§6.2) work this way.
    pub fn take_columns(&self, n: usize) -> Table {
        let n = n.min(self.columns.len());
        Table {
            name: self.name.clone(),
            columns: self.columns[..n].to_vec(),
            num_rows: self.num_rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> Table {
        Table::from_rows(
            "t",
            &["a", "b", "c"],
            &[vec!["1", "x", "p"], vec!["2", "x", "q"], vec!["3", "y", ""], vec!["1", "x", "p"]],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let t = simple();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.column_names(), vec!["a", "b", "c"]);
        assert_eq!(t.column_index("b"), Some(1));
        assert_eq!(t.column_index("zz"), None);
    }

    #[test]
    fn row_reconstruction() {
        let t = simple();
        assert_eq!(t.row(2), vec![Some("3"), Some("y"), None]);
    }

    #[test]
    fn ragged_row_rejected() {
        let err = Table::from_rows("t", &["a", "b"], &[vec!["1"]]).unwrap_err();
        assert!(matches!(err, TableError::RaggedRow { row: 0, expected: 2, got: 1, line: None }));
    }

    #[test]
    fn duplicate_column_rejected() {
        let err = Table::from_rows("t", &["a", "a"], &[vec!["1", "2"]]).unwrap_err();
        assert!(matches!(err, TableError::DuplicateColumnName(_)));
    }

    #[test]
    fn zero_columns_allowed() {
        // take_columns(0) produces such tables too; the profiling pipelines
        // must accept them, so construction does as well.
        let rows: Vec<Vec<&str>> = vec![];
        let t = Table::from_rows("t", &[], &rows).unwrap();
        assert_eq!(t.num_columns(), 0);
        assert_eq!(t.num_rows(), 0);
        let t = simple().take_columns(0);
        assert_eq!(t.num_columns(), 0);
        assert_eq!(t.num_rows(), 4);
        // All zero-width rows are equal, so dedup collapses to one row.
        assert!(t.has_duplicate_rows());
        assert_eq!(t.dedup_rows().num_rows(), 1);
    }

    #[test]
    fn too_many_columns_rejected() {
        let names: Vec<String> = (0..257).map(|i| format!("c{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let rows: Vec<Vec<&str>> = vec![];
        let err = Table::from_rows("t", &name_refs, &rows).unwrap_err();
        assert!(matches!(err, TableError::TooManyColumns { got: 257, .. }));
    }

    #[test]
    fn duplicate_detection_and_dedup() {
        let t = simple();
        assert!(t.has_duplicate_rows());
        let d = t.dedup_rows();
        assert_eq!(d.num_rows(), 3);
        assert!(!d.has_duplicate_rows());
        assert_eq!(d.row(0), vec![Some("1"), Some("x"), Some("p")]);
    }

    #[test]
    fn nulls_compare_equal_in_dedup() {
        let t = Table::from_rows("t", &["a"], &[vec![""], vec![""]]).unwrap();
        assert!(t.has_duplicate_rows());
        assert_eq!(t.dedup_rows().num_rows(), 1);
    }

    #[test]
    fn take_rows_and_columns() {
        let t = simple();
        let r = t.take_rows(2);
        assert_eq!(r.num_rows(), 2);
        assert_eq!(r.num_columns(), 3);
        let c = t.take_columns(2);
        assert_eq!(c.num_columns(), 2);
        assert_eq!(c.num_rows(), 4);
        // Requesting more than available clamps.
        assert_eq!(t.take_rows(99).num_rows(), 4);
        assert_eq!(t.take_columns(99).num_columns(), 3);
    }

    #[test]
    fn select_rows_reencodes_dictionaries() {
        let t = simple();
        let s = t.select_rows(&[1, 2]);
        assert_eq!(s.num_rows(), 2);
        // Dictionary of column a should now only contain 2 and 3.
        assert_eq!(s.column(0).sorted_distinct_values(), &["2", "3"]);
    }

    #[test]
    fn empty_table_with_columns_is_fine() {
        let rows: Vec<Vec<&str>> = vec![];
        let t = Table::from_rows("t", &["a"], &rows).unwrap();
        assert_eq!(t.num_rows(), 0);
        assert!(!t.has_duplicate_rows());
    }
}
