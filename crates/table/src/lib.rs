//! Relational table substrate for holistic data profiling.
//!
//! Provides the input representation shared by every algorithm in the
//! workspace: a column-oriented, dictionary-encoded [`Table`] plus CSV I/O.
//! The dictionary encoding is the paper's "shared data structure" (§3): it
//! simultaneously feeds PLI construction (UCC/FD discovery) and SPIDER's
//! sorted duplicate-free value lists (IND discovery), so the input is read
//! and decoded exactly once for all three tasks.

mod column;
mod csv;
mod delta;
mod error;
mod fingerprint;
mod table;

pub use column::Column;
pub use csv::{
    parse_csv, parse_csv_records, table_from_csv, table_from_csv_bytes, table_from_csv_file,
    table_to_csv, table_to_csv_file, CsvOptions, CsvRecord,
};
pub use delta::{DeltaOutcome, TableDelta};
pub use error::TableError;
pub use fingerprint::{fingerprint, Fingerprint};
pub use table::{Table, MAX_COLUMNS};
