//! Delta maintenance: appending and deleting rows of a [`Table`] without
//! re-encoding the whole relation.
//!
//! Profiling results go stale the moment the underlying table mutates, but
//! most mutations touch a tiny fraction of the data. [`Table::apply_delta`]
//! updates the dictionary encoding in place — merging new values into the
//! sorted dictionaries and remapping codes, or dropping orphaned entries
//! after a deletion — so the resulting [`Table`] is *bit-identical* to one
//! built from scratch on the final data ([`crate::fingerprint`]s match,
//! which is what lets a serving layer patch its content-addressed registry
//! instead of re-registering).
//!
//! Alongside the new table, application reports the set of **affected
//! columns**: the columns whose duplicate structure could have changed.
//! This is the input to direction-aware dependency revalidation (see
//! `muds-core`): after an append, a UCC or FD left-hand side can only
//! *break*, and only if it is fully contained in the affected set; after a
//! deletion, dependencies can only *appear*, again only inside the affected
//! set. Columns outside the set carry their verdicts over unchanged.

use std::collections::HashSet;

use rayon::prelude::*;

use crate::column::Column;
use crate::error::TableError;
use crate::table::Table;

/// A batch mutation of a table: either rows to append or row ids to delete.
///
/// Append rows use the same conventions as [`Table::from_rows`]: one
/// `Vec<String>` per row in schema order, empty strings are NULL. Appended
/// rows that duplicate an existing row (or an earlier appended row,
/// comparing NULLs equal) are dropped, preserving the duplicate-free
/// invariant the profiling algorithms require (§3 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableDelta {
    /// Append the given rows (schema order, empty string = NULL).
    Append { rows: Vec<Vec<String>> },
    /// Delete the rows with the given zero-based ids (duplicates ignored).
    Delete { rows: Vec<usize> },
}

impl TableDelta {
    /// True iff applying the delta can never change the table (no rows).
    pub fn is_empty(&self) -> bool {
        match self {
            TableDelta::Append { rows } => rows.is_empty(),
            TableDelta::Delete { rows } => rows.is_empty(),
        }
    }
}

/// The result of applying a [`TableDelta`].
#[derive(Debug)]
pub struct DeltaOutcome {
    /// The post-delta table. Dictionaries, codes, and fingerprint are
    /// identical to [`Table::from_rows`] on the final data.
    pub table: Table,
    /// Schema positions (ascending) of the columns whose duplicate
    /// structure may have changed — the only columns a dependency whose
    /// validity changed can draw from (see module docs).
    pub affected_columns: Vec<usize>,
    /// Number of rows actually appended (after duplicate dropping).
    pub appended_rows: usize,
    /// Row ids (ascending, unique, *pre-delta* numbering) that were
    /// deleted. Empty for appends.
    pub deleted_rows: Vec<u32>,
    /// Appended rows dropped because they duplicated an existing row or an
    /// earlier appended row.
    pub rows_deduplicated: usize,
}

impl Table {
    /// Applies `delta`, producing the mutated table plus the affected-column
    /// report. `self` is unchanged (columns are rebuilt from the merged
    /// dictionaries, not re-sorted from raw strings).
    ///
    /// Errors: [`TableError::RaggedRow`] when an appended row's field count
    /// differs from the schema, [`TableError::RowOutOfRange`] when a delete
    /// id is `>= num_rows()`.
    pub fn apply_delta(&self, delta: &TableDelta) -> Result<DeltaOutcome, TableError> {
        match delta {
            TableDelta::Append { rows } => self.apply_append(rows),
            TableDelta::Delete { rows } => self.apply_delete(rows),
        }
    }

    fn apply_append(&self, rows: &[Vec<String>]) -> Result<DeltaOutcome, TableError> {
        for (i, row) in rows.iter().enumerate() {
            if row.len() != self.num_columns() {
                return Err(TableError::RaggedRow {
                    row: self.num_rows() + i,
                    expected: self.num_columns(),
                    got: row.len(),
                    line: None,
                });
            }
        }
        let old_rows = self.num_rows();
        // Per column: merge the new values into the sorted dictionary and
        // encode both the old rows (code remap) and the appended rows
        // against it. Independent per column, so fan out like `from_rows`.
        let encoded: Vec<(Vec<String>, Vec<u32>, Vec<u32>)> = (0..self.num_columns())
            .into_par_iter()
            .map(|c| {
                let col = self.column(c);
                let dict = col.sorted_distinct_values();
                let mut added: Vec<&str> = rows
                    .iter()
                    .map(|r| r[c].as_str())
                    .filter(|v| {
                        !v.is_empty() && dict.binary_search_by(|d| d.as_str().cmp(v)).is_err()
                    })
                    .collect();
                added.sort_unstable();
                added.dedup();
                // Merge walk: `merged` is the sorted union, `remap[i]` the
                // new code of old code `i` (old codes shift up by the
                // number of added values sorting before them); the NULL
                // code moves from `dict.len()` to `merged.len()`.
                let mut merged: Vec<String> = Vec::with_capacity(dict.len() + added.len());
                let mut remap: Vec<u32> = vec![0; dict.len() + 1];
                let (mut i, mut j) = (0usize, 0usize);
                while i < dict.len() || j < added.len() {
                    if j < added.len() && (i >= dict.len() || added[j] < dict[i].as_str()) {
                        merged.push(added[j].to_string());
                        j += 1;
                    } else {
                        remap[i] = merged.len() as u32;
                        merged.push(dict[i].clone());
                        i += 1;
                    }
                }
                remap[dict.len()] = merged.len() as u32;
                let old_codes: Vec<u32> =
                    col.codes().iter().map(|&code| remap[code as usize]).collect();
                let null_code = merged.len() as u32;
                // lint:allow(panic): every non-empty appended value was
                // either found in the old dictionary or merged in above, so
                // the search always hits.
                let new_codes: Vec<u32> = rows
                    .iter()
                    .map(|r| {
                        let v = r[c].as_str();
                        if v.is_empty() {
                            null_code
                        } else {
                            merged
                                .binary_search_by(|d| d.as_str().cmp(v))
                                .expect("appended value in merged dictionary")
                                as u32
                        }
                    })
                    .collect();
                (merged, old_codes, new_codes)
            })
            .collect();

        // Duplicate dropping on coded keys: appended rows equal to an
        // existing row or an earlier kept append are skipped (NULLs share a
        // code, so they compare equal, matching `Table::dedup_rows`). A
        // duplicate contributes no dictionary value its original doesn't,
        // so the merged dictionaries above are unaffected by the drop.
        let mut seen: HashSet<Vec<u32>> = HashSet::with_capacity(old_rows + rows.len());
        for r in 0..old_rows {
            seen.insert(encoded.iter().map(|(_, old, _)| old[r]).collect());
        }
        let mut kept: Vec<usize> = Vec::with_capacity(rows.len());
        for k in 0..rows.len() {
            let key: Vec<u32> = encoded.iter().map(|(_, _, new)| new[k]).collect();
            if seen.insert(key) {
                kept.push(k);
            }
        }
        // Zero-column tables: every row is the empty tuple, so at most one
        // survives in total (mirroring `dedup_rows`).
        let kept = if self.num_columns() == 0 {
            if old_rows == 0 && !rows.is_empty() {
                vec![0]
            } else {
                Vec::new()
            }
        } else {
            kept
        };

        let num_rows = old_rows + kept.len();
        let mut affected: Vec<usize> = Vec::new();
        let columns: Vec<Column> = encoded
            .into_iter()
            .zip(self.columns())
            .map(|((merged, mut codes, new_codes), col)| {
                let null_code = merged.len() as u32;
                let mut null_count = col.null_count();
                codes.reserve(kept.len());
                for &k in &kept {
                    codes.push(new_codes[k]);
                    if new_codes[k] == null_code {
                        null_count += 1;
                    }
                }
                Column::from_parts(col.name().to_string(), codes, merged, null_count)
            })
            .collect();
        // Affected = columns where some appended row landed in a duplicate
        // cluster of the final table (its code occurs at least twice). Only
        // dependencies drawn entirely from these columns can break: an
        // appended row that is unique in column c makes every set
        // containing c trivially violation-free for that row.
        for (c, col) in columns.iter().enumerate() {
            let mut counts = vec![0u32; col.code_domain()];
            for &code in col.codes() {
                counts[code as usize] += 1;
            }
            if col.codes()[old_rows..].iter().any(|&code| counts[code as usize] >= 2) {
                affected.push(c);
            }
        }

        Ok(DeltaOutcome {
            table: Table::from_parts(self.name().to_string(), columns, num_rows),
            affected_columns: affected,
            appended_rows: kept.len(),
            deleted_rows: Vec::new(),
            rows_deduplicated: rows.len() - kept.len(),
        })
    }

    fn apply_delete(&self, rows: &[usize]) -> Result<DeltaOutcome, TableError> {
        let mut deleted: Vec<usize> = rows.to_vec();
        deleted.sort_unstable();
        deleted.dedup();
        if let Some(&bad) = deleted.iter().find(|&&r| r >= self.num_rows()) {
            return Err(TableError::RowOutOfRange { row: bad, num_rows: self.num_rows() });
        }
        let delete_set: HashSet<usize> = deleted.iter().copied().collect();
        let keep: Vec<usize> = (0..self.num_rows()).filter(|r| !delete_set.contains(r)).collect();

        // Affected = columns where some deleted row sat in a duplicate
        // cluster of the *old* table: removing a row that was unique in
        // column c cannot make any set containing c newly unique (no
        // violating pair through c involved it), so only dependencies
        // drawn entirely from these columns can flip to valid.
        let mut affected: Vec<usize> = Vec::new();
        for (c, col) in self.columns().iter().enumerate() {
            let mut counts = vec![0u32; col.code_domain()];
            for &code in col.codes() {
                counts[code as usize] += 1;
            }
            if deleted.iter().any(|&r| counts[col.codes()[r] as usize] >= 2) {
                affected.push(c);
            }
        }

        // Per column: drop dictionary entries no surviving row references,
        // remap the kept codes down. Independent per column.
        let columns: Vec<Column> = self
            .columns()
            .par_iter()
            .map(|col| {
                let domain = col.code_domain();
                let mut refs = vec![0u32; domain];
                for &r in &keep {
                    refs[col.codes()[r] as usize] += 1;
                }
                let dict = col.sorted_distinct_values();
                let mut remap: Vec<u32> = vec![0; domain];
                let mut new_dict: Vec<String> = Vec::with_capacity(dict.len());
                for (code, value) in dict.iter().enumerate() {
                    remap[code] = new_dict.len() as u32;
                    if refs[code] > 0 {
                        new_dict.push(value.clone());
                    }
                }
                remap[dict.len()] = new_dict.len() as u32;
                let codes: Vec<u32> =
                    keep.iter().map(|&r| remap[col.codes()[r] as usize]).collect();
                let null_count = refs[dict.len()] as usize;
                Column::from_parts(col.name().to_string(), codes, new_dict, null_count)
            })
            .collect();

        Ok(DeltaOutcome {
            table: Table::from_parts(self.name().to_string(), columns, keep.len()),
            affected_columns: affected,
            appended_rows: 0,
            deleted_rows: deleted.iter().map(|&r| r as u32).collect(),
            rows_deduplicated: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint;

    fn table(rows: &[&[&str]]) -> Table {
        let names: Vec<String> =
            (0..rows.first().map_or(0, |r| r.len())).map(|i| format!("c{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let rows: Vec<Vec<&str>> = rows.iter().map(|r| r.to_vec()).collect();
        Table::from_rows("t", &name_refs, &rows).unwrap()
    }

    fn rows_of(table: &Table) -> Vec<Vec<String>> {
        (0..table.num_rows())
            .map(|r| table.row(r).into_iter().map(|v| v.unwrap_or("").to_string()).collect())
            .collect()
    }

    /// The gold standard: applying the delta must equal re-encoding the
    /// final row set from scratch, down to the fingerprint.
    fn assert_matches_from_scratch(outcome: &DeltaOutcome) {
        let rows = rows_of(&outcome.table);
        let names = outcome.table.column_names();
        let scratch = Table::from_rows("t", &names, &rows).unwrap();
        assert_eq!(fingerprint(&outcome.table), fingerprint(&scratch));
        for (a, b) in outcome.table.columns().iter().zip(scratch.columns()) {
            assert_eq!(a.codes(), b.codes());
            assert_eq!(a.sorted_distinct_values(), b.sorted_distinct_values());
            assert_eq!(a.null_count(), b.null_count());
        }
    }

    fn append(rows: &[&[&str]]) -> TableDelta {
        TableDelta::Append {
            rows: rows.iter().map(|r| r.iter().map(|v| v.to_string()).collect()).collect(),
        }
    }

    #[test]
    fn append_new_values_rebuilds_dictionary() {
        let t = table(&[&["b", "1"], &["d", "2"]]);
        let out = t.apply_delta(&append(&[&["a", "3"], &["c", "1"]])).unwrap();
        assert_eq!(out.table.num_rows(), 4);
        assert_eq!(out.appended_rows, 2);
        assert_eq!(out.table.column(0).sorted_distinct_values(), &["a", "b", "c", "d"]);
        // Old rows keep their values under the remapped codes.
        assert_eq!(out.table.row(0), vec![Some("b"), Some("1")]);
        assert_eq!(out.table.row(3), vec![Some("c"), Some("1")]);
        assert_matches_from_scratch(&out);
        // "1" now duplicated in column 1; column 0 all unique.
        assert_eq!(out.affected_columns, vec![1]);
    }

    #[test]
    fn append_existing_values_skips_dictionary_merge() {
        let t = table(&[&["a", "x"], &["b", "y"]]);
        let out = t.apply_delta(&append(&[&["a", "y"]])).unwrap();
        assert_eq!(out.table.num_rows(), 3);
        assert_matches_from_scratch(&out);
        assert_eq!(out.affected_columns, vec![0, 1]);
    }

    #[test]
    fn append_unique_row_affects_nothing() {
        let t = table(&[&["a", "x"], &["b", "y"]]);
        let out = t.apply_delta(&append(&[&["c", "z"]])).unwrap();
        assert!(out.affected_columns.is_empty());
        assert_matches_from_scratch(&out);
    }

    #[test]
    fn append_null_collides_with_null() {
        let t = table(&[&["a", ""], &["b", "y"]]);
        let out = t.apply_delta(&append(&[&["c", ""]])).unwrap();
        // NULLs compare equal for UCC/FD semantics: column 1 is affected.
        assert_eq!(out.affected_columns, vec![1]);
        assert_eq!(out.table.column(1).null_count(), 2);
        assert_matches_from_scratch(&out);
    }

    #[test]
    fn append_duplicate_rows_are_dropped() {
        let t = table(&[&["a", "x"], &["b", "y"]]);
        let out = t.apply_delta(&append(&[&["a", "x"], &["c", "z"], &["c", "z"]])).unwrap();
        assert_eq!(out.appended_rows, 1);
        assert_eq!(out.rows_deduplicated, 2);
        assert_eq!(out.table.num_rows(), 3);
        assert!(!out.table.has_duplicate_rows());
        assert_matches_from_scratch(&out);
    }

    #[test]
    fn empty_append_is_identity() {
        let t = table(&[&["a", "x"]]);
        let out = t.apply_delta(&append(&[])).unwrap();
        assert_eq!(fingerprint(&out.table), fingerprint(&t));
        assert!(out.affected_columns.is_empty());
        assert_eq!(out.appended_rows, 0);
    }

    #[test]
    fn ragged_append_rejected() {
        let t = table(&[&["a", "x"]]);
        let err = t
            .apply_delta(&TableDelta::Append { rows: vec![vec!["only-one".to_string()]] })
            .unwrap_err();
        assert!(matches!(err, TableError::RaggedRow { row: 1, expected: 2, got: 1, .. }));
    }

    #[test]
    fn delete_drops_orphaned_dictionary_entries() {
        let t = table(&[&["a", "x"], &["b", "x"], &["c", "y"]]);
        let out = t.apply_delta(&TableDelta::Delete { rows: vec![2] }).unwrap();
        assert_eq!(out.table.num_rows(), 2);
        assert_eq!(out.table.column(0).sorted_distinct_values(), &["a", "b"]);
        assert_eq!(out.table.column(1).sorted_distinct_values(), &["x"]);
        assert_matches_from_scratch(&out);
        // Row 2 was unique in both columns: nothing can become newly valid.
        assert!(out.affected_columns.is_empty());
        assert_eq!(out.deleted_rows, vec![2]);
    }

    #[test]
    fn delete_from_cluster_marks_column_affected() {
        let t = table(&[&["a", "x"], &["b", "x"], &["c", "y"]]);
        let out = t.apply_delta(&TableDelta::Delete { rows: vec![0] }).unwrap();
        // Row 0 shared "x" in column 1 but was unique in column 0.
        assert_eq!(out.affected_columns, vec![1]);
        assert_matches_from_scratch(&out);
    }

    #[test]
    fn delete_null_rows_updates_null_count() {
        let t = table(&[&["a", ""], &["b", ""], &["c", "y"]]);
        let out = t.apply_delta(&TableDelta::Delete { rows: vec![0] }).unwrap();
        assert_eq!(out.table.column(1).null_count(), 1);
        assert_eq!(out.affected_columns, vec![1]);
        assert_matches_from_scratch(&out);
    }

    #[test]
    fn delete_all_rows_leaves_empty_table() {
        let t = table(&[&["a", "x"], &["b", "y"]]);
        let out = t.apply_delta(&TableDelta::Delete { rows: vec![1, 0] }).unwrap();
        assert_eq!(out.table.num_rows(), 0);
        assert!(out.table.column(0).sorted_distinct_values().is_empty());
        assert_matches_from_scratch(&out);
        assert_eq!(out.deleted_rows, vec![0, 1]);
    }

    #[test]
    fn delete_duplicate_ids_collapse() {
        let t = table(&[&["a", "x"], &["b", "y"]]);
        let out = t.apply_delta(&TableDelta::Delete { rows: vec![0, 0, 0] }).unwrap();
        assert_eq!(out.table.num_rows(), 1);
        assert_eq!(out.deleted_rows, vec![0]);
        assert_matches_from_scratch(&out);
    }

    #[test]
    fn delete_out_of_range_rejected() {
        let t = table(&[&["a", "x"]]);
        let err = t.apply_delta(&TableDelta::Delete { rows: vec![5] }).unwrap_err();
        assert!(matches!(err, TableError::RowOutOfRange { row: 5, num_rows: 1 }));
    }

    #[test]
    fn zero_column_table_appends_collapse() {
        let rows: Vec<Vec<&str>> = vec![];
        let t = Table::from_rows("t", &[], &rows).unwrap();
        let out = t.apply_delta(&TableDelta::Append { rows: vec![vec![], vec![]] }).unwrap();
        assert_eq!(out.table.num_rows(), 1);
        assert_eq!(out.rows_deduplicated, 1);
        let out2 = out.table.apply_delta(&TableDelta::Append { rows: vec![vec![]] }).unwrap();
        assert_eq!(out2.table.num_rows(), 1);
        assert_eq!(out2.rows_deduplicated, 1);
    }

    #[test]
    fn append_then_delete_round_trips_fingerprint() {
        let t = table(&[&["a", "x"], &["b", "y"]]);
        let out = t.apply_delta(&append(&[&["c", "z"], &["d", "x"]])).unwrap();
        let back = out.table.apply_delta(&TableDelta::Delete { rows: vec![2, 3] }).unwrap();
        assert_eq!(fingerprint(&back.table), fingerprint(&t));
        assert_matches_from_scratch(&back);
    }

    proptest::proptest! {
        /// Random base tables and deltas: the incremental encoding must be
        /// indistinguishable from a from-scratch build of the final rows.
        #[test]
        fn random_deltas_match_from_scratch(
            (base, extra, dels) in (
                proptest::collection::vec(
                    proptest::collection::vec(cell_strategy(4), 3), 0..12),
                proptest::collection::vec(
                    proptest::collection::vec(cell_strategy(5), 3), 0..6),
                proptest::collection::vec(0usize..12, 0..6),
            )
        ) {
            let rows: Vec<Vec<&str>> =
                base.iter().map(|r| r.iter().map(|v| v.as_str()).collect()).collect();
            let t = Table::from_rows("t", &["a", "b", "c"], &rows).unwrap().dedup_rows();
            let out = t.apply_delta(&TableDelta::Append { rows: extra.clone() }).unwrap();
            assert_matches_from_scratch(&out);
            let dels: Vec<usize> = dels.into_iter().filter(|&r| r < t.num_rows()).collect();
            let out = t.apply_delta(&TableDelta::Delete { rows: dels }).unwrap();
            assert_matches_from_scratch(&out);
        }
    }

    /// Small value domain (including NULL) so collisions — the interesting
    /// case for dictionary merging and affected-column tracking — abound.
    fn cell_strategy(domain: u32) -> impl proptest::Strategy<Value = String> {
        use proptest::Strategy as _;
        (0..domain).prop_map(|v| if v == 0 { String::new() } else { format!("v{v}") })
    }
}
