//! Deterministic synthetic dataset generators.
//!
//! Stand-ins for the paper's evaluation data (DESIGN.md §3): the
//! [`DatasetSpec`] recipe language plus presets for
//! [`uniprot_like`]/[`ionosphere_like`]/[`ncvoter_like`] (Figures 6–8) and
//! the eleven [`uci_dataset`]s of Table 3.

mod paper;
mod spec;
mod uci;

pub use paper::{ionosphere_like, ncvoter_like, uniprot_like};
pub use spec::{ColumnKind, ColumnSpec, DatasetSpec};
pub use uci::{
    abalone, adult, balance, breast_cancer, bridges, chess, echocardiogram, hepatitis, iris,
    letter, nursery, uci_dataset, TABLE3_DATASETS,
};
