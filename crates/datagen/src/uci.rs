//! Stand-ins for the eleven UCI datasets of Table 3.
//!
//! Each generator reproduces the original's column count, row count, and —
//! approximately — its dependency profile, which is what determines the
//! relative algorithm runtimes the paper reports:
//!
//! | dataset   | cols | rows | character |
//! |-----------|------|------|-----------|
//! | iris      | 5    | 150  | 4 discretized measurements + class; a handful of FDs |
//! | balance   | 5    | 625  | full 5⁴ factorial + derived class → exactly 1 FD |
//! | chess     | 7    | 28k  | near-factorial board coordinates + derived class → 1 FD |
//! | abalone   | 9    | 4k   | continuous measurements → ≈137 accidental FDs |
//! | nursery   | 9    | 12k  | categorical factorial + derived class → 1 FD |
//! | b-cancer  | 11   | 699  | near-key id + 9 graded attributes → ≈46 FDs |
//! | bridges   | 13   | 108  | id + sparse categorical attributes → ≈142 FDs |
//! | echocard  | 13   | 132  | continuous clinical measurements → ≈538 FDs |
//! | adult     | 14   | 48k  | census mix; near-key fnlwgt; ≈78 FDs with large lhs |
//! | letter    | 17   | 20k  | correlated pixel statistics; few deep FDs (paper: 61) |
//! | hepatitis | 20   | 155  | mostly binary attributes on few rows → thousands of FDs |
//!
//! The paper's Table 3 ranking hinges on: HFUN ≥ baseline always; MUDS
//! winning from ~14 columns (adult, letter) where minimal FDs have large
//! left-hand sides; TANE winning on hepatitis where shadowed FDs explode.

use crate::spec::{ColumnKind, ColumnSpec, DatasetSpec};
use muds_table::Table;

/// Names of all Table 3 datasets in the paper's order.
pub const TABLE3_DATASETS: [&str; 11] = [
    "iris",
    "balance",
    "chess",
    "abalone",
    "nursery",
    "b-cancer",
    "bridges",
    "echocard",
    "adult",
    "letter",
    "hepatitis",
];

/// Generates the stand-in for a Table 3 dataset by name.
///
/// # Panics
///
/// Panics on an unknown name; see [`TABLE3_DATASETS`].
pub fn uci_dataset(name: &str) -> Table {
    match name {
        "iris" => iris(),
        "balance" => balance(),
        "chess" => chess(),
        "abalone" => abalone(),
        "nursery" => nursery(),
        "b-cancer" => breast_cancer(),
        "bridges" => bridges(),
        "echocard" => echocardiogram(),
        "adult" => adult(),
        "letter" => letter(),
        "hepatitis" => hepatitis(),
        // lint:allow(panic): documented contract (see "# Panics" above) —
        // the CLI validates names against TABLE3_DATASETS before calling.
        other => panic!("unknown Table 3 dataset {other:?}"),
    }
}

/// iris: 150 rows × 5 columns (4 measurements, 1 class).
pub fn iris() -> Table {
    let columns = vec![
        ColumnSpec::new("sepal_len", ColumnKind::Random { cardinality: 35 }).shared(),
        ColumnSpec::new("sepal_wid", ColumnKind::Random { cardinality: 23 }).shared(),
        ColumnSpec::new("petal_len", ColumnKind::Random { cardinality: 43 }).shared(),
        ColumnSpec::new("petal_wid", ColumnKind::Random { cardinality: 22 }).shared(),
        ColumnSpec::new(
            "class",
            ColumnKind::Noisy { source: 2, cardinality: 3, flip_permille: 100 },
        )
        .shared(),
    ];
    DatasetSpec { name: "iris".into(), rows: 150, columns, seed: 0x1215 }.generate()
}

/// balance-scale: the full 5⁴ factorial (625 rows) plus the derived class —
/// exactly one FD: all four attributes → class.
pub fn balance() -> Table {
    let columns = vec![
        ColumnSpec::new("left_weight", ColumnKind::Factorial { stride: 1, arity: 5 }).shared(),
        ColumnSpec::new("left_dist", ColumnKind::Factorial { stride: 5, arity: 5 }).shared(),
        ColumnSpec::new("right_weight", ColumnKind::Factorial { stride: 25, arity: 5 }).shared(),
        ColumnSpec::new("right_dist", ColumnKind::Factorial { stride: 125, arity: 5 }).shared(),
        ColumnSpec::new("class", ColumnKind::Derived { sources: vec![0, 1, 2, 3], cardinality: 3 })
            .shared(),
    ];
    DatasetSpec { name: "balance".into(), rows: 625, columns, seed: 0xBA1A }.generate()
}

/// chess (king-rook vs king): 28,056 rows × 7 columns — board coordinates
/// close to a factorial plus the derived game-theoretic class.
pub fn chess() -> Table {
    let columns = vec![
        ColumnSpec::new("wk_file", ColumnKind::Factorial { stride: 1, arity: 4 }).shared(),
        ColumnSpec::new("wk_rank", ColumnKind::Factorial { stride: 4, arity: 4 }).shared(),
        ColumnSpec::new("wr_file", ColumnKind::Factorial { stride: 16, arity: 8 }).shared(),
        ColumnSpec::new("wr_rank", ColumnKind::Factorial { stride: 128, arity: 8 }).shared(),
        ColumnSpec::new("bk_file", ColumnKind::Factorial { stride: 1024, arity: 8 }).shared(),
        ColumnSpec::new("bk_rank", ColumnKind::Factorial { stride: 8192, arity: 4 }).shared(),
        ColumnSpec::new(
            "outcome",
            ColumnKind::Derived { sources: vec![0, 1, 2, 3, 4, 5], cardinality: 18 },
        )
        .shared(),
    ];
    DatasetSpec { name: "chess".into(), rows: 28_056, columns, seed: 0xC4E5 }.generate()
}

/// abalone: 4,177 rows × 9 columns of continuous physical measurements.
pub fn abalone() -> Table {
    let columns = vec![
        ColumnSpec::new("sex", ColumnKind::Random { cardinality: 3 }).shared(),
        ColumnSpec::new("length", ColumnKind::Random { cardinality: 134 }).shared(),
        ColumnSpec::new(
            "diameter",
            ColumnKind::Noisy { source: 1, cardinality: 111, flip_permille: 150 },
        )
        .shared(),
        ColumnSpec::new("height", ColumnKind::Random { cardinality: 51 }).shared(),
        ColumnSpec::new("whole_w", ColumnKind::Random { cardinality: 2429 }).shared(),
        ColumnSpec::new(
            "shucked_w",
            ColumnKind::Noisy { source: 4, cardinality: 1515, flip_permille: 300 },
        )
        .shared(),
        ColumnSpec::new("viscera_w", ColumnKind::Random { cardinality: 880 }).shared(),
        ColumnSpec::new("shell_w", ColumnKind::Random { cardinality: 926 }).shared(),
        ColumnSpec::new("rings", ColumnKind::Random { cardinality: 28 }).shared(),
    ];
    DatasetSpec { name: "abalone".into(), rows: 4_177, columns, seed: 0xABA1 }.generate()
}

/// nursery: 12,960 rows × 9 columns — the full categorical factorial of the
/// admission attributes plus the derived recommendation class.
pub fn nursery() -> Table {
    let columns = vec![
        ColumnSpec::new("parents", ColumnKind::Factorial { stride: 1, arity: 3 }).shared(),
        ColumnSpec::new("has_nurs", ColumnKind::Factorial { stride: 3, arity: 5 }).shared(),
        ColumnSpec::new("form", ColumnKind::Factorial { stride: 15, arity: 4 }).shared(),
        ColumnSpec::new("children", ColumnKind::Factorial { stride: 60, arity: 4 }).shared(),
        ColumnSpec::new("housing", ColumnKind::Factorial { stride: 240, arity: 3 }).shared(),
        ColumnSpec::new("finance", ColumnKind::Factorial { stride: 720, arity: 2 }).shared(),
        ColumnSpec::new("social", ColumnKind::Factorial { stride: 1440, arity: 3 }).shared(),
        ColumnSpec::new("health", ColumnKind::Factorial { stride: 4320, arity: 3 }).shared(),
        ColumnSpec::new(
            "class",
            ColumnKind::Derived { sources: vec![0, 1, 2, 3, 4, 5, 6, 7], cardinality: 5 },
        )
        .shared(),
    ];
    DatasetSpec { name: "nursery".into(), rows: 12_960, columns, seed: 0x9025 }.generate()
}

/// breast-cancer-wisconsin: 699 rows × 11 columns — near-key id plus nine
/// graded (1–10) cytology attributes and the class.
pub fn breast_cancer() -> Table {
    let mut columns = vec![ColumnSpec::new("id", ColumnKind::Random { cardinality: 645 }).shared()];
    for i in 0..9 {
        columns.push(
            ColumnSpec::new(format!("attr{i}"), ColumnKind::Random { cardinality: 10 }).shared(),
        );
    }
    columns.push(
        ColumnSpec::new(
            "class",
            ColumnKind::Noisy { source: 1, cardinality: 2, flip_permille: 150 },
        )
        .shared(),
    );
    DatasetSpec { name: "b-cancer".into(), rows: 699, columns, seed: 0xBC01 }.generate()
}

/// bridges: 108 rows × 13 columns — an id plus sparse categorical design
/// attributes with NULLs.
pub fn bridges() -> Table {
    let mut columns = vec![
        ColumnSpec::new("id", ColumnKind::Serial),
        ColumnSpec::new("river", ColumnKind::Random { cardinality: 3 }).shared(),
        ColumnSpec::new("location", ColumnKind::Random { cardinality: 12 }).shared(),
        ColumnSpec::new("erected", ColumnKind::Random { cardinality: 15 }).shared(),
    ];
    for i in 4..13 {
        let cardinality = [2, 3, 4, 2, 3, 7, 2, 4, 3][i - 4];
        columns.push(
            ColumnSpec::new(format!("design{i}"), ColumnKind::Random { cardinality })
                .shared()
                .with_nulls(60),
        );
    }
    DatasetSpec { name: "bridges".into(), rows: 108, columns, seed: 0xB21D }.generate()
}

/// echocardiogram: 132 rows × 13 columns of continuous clinical
/// measurements — few rows, high cardinalities, hundreds of accidental FDs.
pub fn echocardiogram() -> Table {
    let cards = [2, 70, 2, 2, 40, 30, 25, 45, 24, 3, 2, 10, 2];
    let columns: Vec<ColumnSpec> = cards
        .iter()
        .enumerate()
        .map(|(i, &cardinality)| {
            ColumnSpec::new(format!("m{i}"), ColumnKind::Random { cardinality })
                .shared()
                .with_nulls(if i % 4 == 3 { 40 } else { 0 })
        })
        .collect();
    DatasetSpec { name: "echocard".into(), rows: 132, columns, seed: 0xEC40 }.generate()
}

/// adult (census income): 48,842 rows × 14 columns — the mix of a near-key
/// numeric column (fnlwgt), several mid-cardinality categoricals, and FD
/// structure with *large left-hand sides*, the regime where the paper
/// measures MUDS 12× faster than the baseline.
pub fn adult() -> Table {
    let columns = vec![
        ColumnSpec::new("age", ColumnKind::Random { cardinality: 74 }).shared(),
        ColumnSpec::new("workclass", ColumnKind::Random { cardinality: 9 }).shared(),
        ColumnSpec::new("fnlwgt", ColumnKind::Random { cardinality: 28_523 }).shared(),
        ColumnSpec::new("education", ColumnKind::Random { cardinality: 16 }).shared(),
        ColumnSpec::new("edu_num", ColumnKind::Derived { sources: vec![3], cardinality: 16 })
            .shared(),
        ColumnSpec::new("marital", ColumnKind::Random { cardinality: 7 }).shared(),
        ColumnSpec::new("occupation", ColumnKind::Random { cardinality: 15 }).shared(),
        ColumnSpec::new("relationship", ColumnKind::Derived { sources: vec![5], cardinality: 6 })
            .shared(),
        ColumnSpec::new("race", ColumnKind::Random { cardinality: 5 }).shared(),
        ColumnSpec::new("sex", ColumnKind::Random { cardinality: 2 }).shared(),
        ColumnSpec::new("cap_gain", ColumnKind::Random { cardinality: 123 }).shared(),
        ColumnSpec::new("cap_loss", ColumnKind::Random { cardinality: 99 }).shared(),
        ColumnSpec::new("hours", ColumnKind::Random { cardinality: 96 }).shared(),
        ColumnSpec::new(
            "income",
            ColumnKind::Noisy { source: 4, cardinality: 2, flip_permille: 250 },
        )
        .shared(),
    ];
    DatasetSpec { name: "adult".into(), rows: 48_842, columns, seed: 0xAD17 }.generate()
}

/// letter-recognition: 20,000 rows × 17 columns — sixteen pixel statistics
/// in a 16-value domain plus the letter class. The paper's headline result
/// (MUDS 48× faster than Holistic FUN) comes from this dataset's *deep*
/// dependency structure, which the generator reproduces through strong
/// inter-feature correlation.
pub fn letter() -> Table {
    // Pixel statistics of the same glyph are strongly correlated: a few
    // independent base measurements plus noisy derivations of them. The
    // correlation keeps low-level column combinations collision-rich, so
    // minimal UCCs (and with them the few minimal FDs) sit high in the
    // lattice — the "very large left hand sides" regime the paper
    // attributes to letter.
    let mut columns: Vec<ColumnSpec> = (0..16)
        .map(|i| {
            if i < 4 {
                ColumnSpec::new(format!("px{i}"), ColumnKind::Random { cardinality: 16 }).shared()
            } else {
                ColumnSpec::new(
                    format!("px{i}"),
                    ColumnKind::Noisy { source: i % 4, cardinality: 16, flip_permille: 250 },
                )
                .shared()
            }
        })
        .collect();
    columns.push(
        ColumnSpec::new(
            "letter",
            ColumnKind::Noisy { source: 0, cardinality: 26, flip_permille: 300 },
        )
        .shared(),
    );
    DatasetSpec { name: "letter".into(), rows: 20_000, columns, seed: 0x1E77 }.generate()
}

/// hepatitis: 155 rows × 20 columns — mostly binary clinical flags on very
/// few rows, producing thousands of minimal FDs and heavy shadowing (the
/// dataset where TANE beats MUDS in Table 3).
pub fn hepatitis() -> Table {
    let cards = [2, 50, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 36, 18, 40, 30, 66, 2];
    let columns: Vec<ColumnSpec> = cards
        .iter()
        .enumerate()
        .map(|(i, &cardinality)| {
            ColumnSpec::new(format!("a{i}"), ColumnKind::Random { cardinality })
                .shared()
                .with_nulls(if i >= 14 { 80 } else { 0 })
        })
        .collect();
    DatasetSpec { name: "hepatitis".into(), rows: 155, columns, seed: 0x4EA7 }.generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_table3_datasets_generate_with_paper_shapes() {
        let expected: [(&str, usize, usize); 11] = [
            ("iris", 5, 150),
            ("balance", 5, 625),
            ("chess", 7, 28_056),
            ("abalone", 9, 4_177),
            ("nursery", 9, 12_960),
            ("b-cancer", 11, 699),
            ("bridges", 13, 108),
            ("echocard", 13, 132),
            ("adult", 14, 48_842),
            ("letter", 17, 20_000),
            ("hepatitis", 20, 155),
        ];
        for (name, cols, rows) in expected {
            let t = uci_dataset(name);
            assert_eq!(t.num_columns(), cols, "{name} column count");
            // Dedup may remove a few collided rows; stay within 2%.
            assert!(
                t.num_rows() >= rows * 98 / 100 && t.num_rows() <= rows,
                "{name}: {} rows vs expected {rows}",
                t.num_rows()
            );
            assert!(!t.has_duplicate_rows(), "{name} has duplicates");
        }
    }

    #[test]
    #[should_panic(expected = "unknown Table 3 dataset")]
    fn unknown_dataset_panics() {
        let _ = uci_dataset("mnist");
    }

    #[test]
    fn balance_has_exactly_one_fd() {
        let t = balance();
        let fds = muds_fd::naive_minimal_fds(&t);
        assert_eq!(t.num_rows(), 625);
        assert_eq!(
            fds.len(),
            1,
            "balance should have exactly the class FD, got {:?}",
            fds.display_sorted()
        );
    }

    #[test]
    fn small_datasets_have_fd_counts_in_paper_band() {
        // Paper: iris 4, bridges 142, echocard 538, hepatitis 8009+.
        // Exact counts depend on RNG; assert order of magnitude.
        let iris_fds = muds_fd::naive_minimal_fds(&iris()).len();
        assert!((1..=40).contains(&iris_fds), "iris: {iris_fds} FDs");
        let bridges_fds = muds_fd::naive_minimal_fds(&bridges()).len();
        assert!((40..=1500).contains(&bridges_fds), "bridges: {bridges_fds} FDs");
        let echo_fds = muds_fd::naive_minimal_fds(&echocardiogram()).len();
        assert!((150..=2500).contains(&echo_fds), "echocard: {echo_fds} FDs");
    }
}
