//! Generators for the three headline datasets of the paper's evaluation.
//!
//! Each generator is tuned so the *dependency profile* — not the actual
//! values — matches what the paper reports for the original data. See
//! DESIGN.md §3 for the substitution rationale; EXPERIMENTS.md records the
//! shapes measured on these stand-ins next to the paper's figures.

use crate::spec::{ColumnKind, ColumnSpec, DatasetSpec};
use muds_table::Table;

/// uniprot-like data for the row-scalability experiment (Figure 6).
///
/// The original: 539k × 223 protein records; the experiment uses the first
/// 10 columns and 50k–250k rows. Profile to preserve: an id-style key, a
/// dense web of FDs among annotation columns *with several overlapping
/// composite near-keys*, so that MUDS' shadowed-FD phase dominates (the
/// paper: "the discovery of shadowed FDs is particularly expensive on this
/// dataset") while Holistic FUN finishes fastest.
pub fn uniprot_like(rows: usize, cols: usize) -> Table {
    assert!(cols >= 5, "uniprot-like needs at least 5 columns, got {cols}");
    // Overlapping composite keys: (hi, lo), (hi, entry), (lo, entry) — the
    // precondition for shadowed-FD work (§4.3 needs connected minimal
    // UCCs). The stride is √rows so the keys hold exactly for any prefix
    // of the rows (row-scalability subsets included).
    let stride = (rows as f64).sqrt().ceil() as u64;
    let mut columns = vec![
        ColumnSpec::new("acc_hi", ColumnKind::Factorial { stride, arity: u64::MAX }),
        ColumnSpec::new("acc_lo", ColumnKind::Factorial { stride: 1, arity: stride }),
        ColumnSpec::new("entry_name", ColumnKind::LatinSquare { stride, shift: 1 }),
        // Organism: medium-cardinality category.
        ColumnSpec::new("organism", ColumnKind::Random { cardinality: 64 }).shared(),
        // Taxonomy is determined by organism (FD chain organism → taxon).
        ColumnSpec::new("taxon", ColumnKind::Derived { sources: vec![3], cardinality: 16 })
            .shared(),
    ];
    // Annotation columns: a dense web of derived attributes over organism
    // and over each other (many FDs among non-key columns, including
    // pair-left-hand-side FDs — shadowed-FD fuel), plus correlated
    // attributes; several share domains (a few INDs) and several are
    // sparse (NULLs).
    let mut idx = columns.len();
    while idx < cols {
        let spec = match idx % 4 {
            // Distinct salted functions of organism: a family of mutually
            // incomparable category columns.
            0 | 1 => ColumnSpec::new(
                format!("anno{idx}"),
                ColumnKind::Derived { sources: vec![3], cardinality: 20 },
            )
            .shared()
            .with_nulls(if idx % 4 == 1 { 50 } else { 0 }),
            // Second-level derivations with pair left-hand sides.
            2 => ColumnSpec::new(
                format!("anno{idx}"),
                ColumnKind::Derived { sources: vec![idx - 2, idx - 1], cardinality: 30 },
            )
            .shared(),
            _ => ColumnSpec::new(
                format!("attr{idx}"),
                ColumnKind::Noisy { source: 3, cardinality: 32, flip_permille: 30 },
            )
            .shared(),
        };
        columns.push(spec);
        idx += 1;
    }
    columns.truncate(cols);
    DatasetSpec { name: format!("uniprot-like-{rows}x{cols}"), rows, columns, seed: 0x0041 }
        .generate()
}

/// ionosphere-like data for the column-scalability experiment (Figure 7).
///
/// The original: 351 radar returns × 34 attributes — "many and large FDs
/// … a challenge for any FD discovery algorithm and a test of its pruning
/// capabilities". The radar channels cluster around a few extreme values,
/// so their *effective* cardinality is low; with few rows that pushes
/// minimal UCCs and minimal FDs to **high lattice levels** (left-hand
/// sides of six or more columns), which is what makes breadth-first
/// algorithms (FUN, TANE) explode with the column count while MUDS'
/// UCC-first depth-first strategy stays flat — the Figure 7 shape.
pub fn ionosphere_like(cols: usize) -> Table {
    const ROWS: usize = 351;
    let columns: Vec<ColumnSpec> = (0..cols)
        .map(|i| {
            // Real radar channels are pairwise correlated (in-phase vs
            // quadrature of the same pulse): every third channel is a
            // low-cardinality function of the previous four, planting FDs
            // whose minimal left-hand sides sit several levels up the
            // lattice and overlap each other.
            if i >= 4 && i % 3 == 2 {
                ColumnSpec::new(
                    format!("ch{i}"),
                    ColumnKind::Derived {
                        sources: vec![i - 4, i - 3, i - 2, i - 1],
                        cardinality: 3,
                    },
                )
                .shared()
            } else {
                // Low effective cardinalities like thresholded returns.
                let cardinality = match i % 6 {
                    0 => 2,
                    1 => 3,
                    2 => 4,
                    3 => 2,
                    4 => 5,
                    _ => 3,
                };
                ColumnSpec::new(format!("ch{i}"), ColumnKind::Random { cardinality }).shared()
            }
        })
        .collect();
    DatasetSpec { name: format!("ionosphere-like-{cols}"), rows: ROWS, columns, seed: 0x1050 }
        .generate()
}

/// ncvoter-like data for the phase-analysis experiment (Figure 8: 10,000
/// rows × 20 columns).
///
/// The original: North Carolina voter registrations — administrative data
/// with an id key, address/jurisdiction FD chains (zip → city → county),
/// and several overlapping composite near-keys; the paper uses it to show
/// the shadowed-FD phases dominating MUDS' runtime (≈22× the discovery
/// phases).
pub fn ncvoter_like(rows: usize, cols: usize) -> Table {
    assert!(cols >= 8, "ncvoter-like needs at least 8 columns, got {cols}");
    // Registration-number halves plus an overlapping name surrogate: three
    // pairwise composite keys, like (reg_num, name, birth) combinations in
    // the real data.
    let stride = (rows as f64).sqrt().ceil() as u64;
    let mut columns = vec![
        ColumnSpec::new("reg_hi", ColumnKind::Factorial { stride, arity: u64::MAX }),
        ColumnSpec::new("reg_lo", ColumnKind::Factorial { stride: 1, arity: stride }),
        ColumnSpec::new("name_key", ColumnKind::LatinSquare { stride, shift: 1 }),
        ColumnSpec::new("birth_year", ColumnKind::Random { cardinality: 80 }).shared(),
        // Jurisdiction chain: precinct → municipality → county → district.
        ColumnSpec::new("precinct", ColumnKind::Random { cardinality: 120 }).shared(),
        ColumnSpec::new("municipality", ColumnKind::Derived { sources: vec![4], cardinality: 40 })
            .shared(),
        ColumnSpec::new("county", ColumnKind::Derived { sources: vec![5], cardinality: 12 })
            .shared(),
        ColumnSpec::new("district", ColumnKind::Derived { sources: vec![6], cardinality: 4 })
            .shared(),
    ];
    let mut idx = columns.len();
    while idx < cols {
        let spec = match idx % 5 {
            0 => ColumnSpec::new(
                format!("status{idx}"),
                ColumnKind::Derived { sources: vec![4, 3], cardinality: 30 },
            )
            .shared(),
            1 => ColumnSpec::new(format!("party{idx}"), ColumnKind::Random { cardinality: 6 })
                .shared(),
            2 => ColumnSpec::new(
                format!("flag{idx}"),
                ColumnKind::Derived { sources: vec![idx - 2, idx - 1], cardinality: 64 },
            )
            .shared()
            .with_nulls(30),
            3 => ColumnSpec::new(
                format!("code{idx}"),
                ColumnKind::Derived { sources: vec![7, idx - 1], cardinality: 200 },
            )
            .shared(),
            _ => ColumnSpec::new(
                format!("area{idx}"),
                ColumnKind::Noisy { source: 6, cardinality: 10, flip_permille: 20 },
            )
            .shared(),
        };
        columns.push(spec);
        idx += 1;
    }
    columns.truncate(cols);
    DatasetSpec { name: format!("ncvoter-like-{rows}x{cols}"), rows, columns, seed: 0x0C17 }
        .generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use muds_lattice::ColumnSet;

    #[test]
    fn uniprot_like_shape_and_overlapping_keys() {
        let t = uniprot_like(2000, 10);
        assert_eq!(t.num_columns(), 10);
        assert!(t.num_rows() >= 1990); // dedup removes at most a handful
                                       // Three overlapping composite keys, no singleton key.
        for pair in [[0usize, 1], [0, 2], [1, 2]] {
            assert!(muds_ucc::is_unique(&t, &ColumnSet::from_indices(pair)), "{pair:?}");
        }
        for c in 0..3 {
            assert!(!muds_ucc::is_unique(&t, &ColumnSet::single(c)));
        }
        // FD chain organism → taxon present.
        assert!(muds_fd::holds(&t, &ColumnSet::single(3), 4));
    }

    #[test]
    fn uniprot_like_scales_rows_deterministically() {
        let a = uniprot_like(500, 10);
        let b = uniprot_like(500, 10);
        for r in 0..a.num_rows() {
            assert_eq!(a.row(r), b.row(r));
        }
    }

    #[test]
    fn ionosphere_like_has_deep_uccs_and_exploding_fd_counts() {
        let t = ionosphere_like(10);
        assert!(t.num_rows() > 300, "dedup should keep most of the 351 rows");
        // Low-cardinality columns push minimal UCCs to high lattice levels —
        // the Figure 7 regime (large FD left-hand sides).
        let uccs = muds_ucc::naive_minimal_uccs(&t);
        assert!(!uccs.is_empty());
        let min_level = uccs.iter().map(|u| u.cardinality()).min().unwrap();
        assert!(min_level >= 5, "expected deep keys, got level {min_level}: {uccs:?}");
        let fds = muds_fd::naive_minimal_fds(&t);
        assert!(fds.len() >= 2, "expected planted FDs, got {}", fds.len());

        // The defining Figure 7 property: FD counts explode with columns
        // (measured: 3 → 344 → 20k minimal FDs at 10 → 14 → 18 columns).
        let t14 = ionosphere_like(14);
        let mut cache = muds_pli::PliCache::new(&t14);
        let fd14 = muds_fd::tane(&mut cache).fds.len();
        let fd10 = fds.len();
        assert!(
            fd14 > 10 * fd10.max(1),
            "expected explosive FD growth: {fd10} FDs at 10 cols vs {fd14} at 14"
        );
    }

    #[test]
    fn ncvoter_like_has_fd_chain_and_overlapping_keys() {
        let t = ncvoter_like(3000, 20);
        assert_eq!(t.num_columns(), 20);
        for pair in [[0usize, 1], [0, 2], [1, 2]] {
            assert!(muds_ucc::is_unique(&t, &ColumnSet::from_indices(pair)), "{pair:?}");
        }
        // precinct → municipality → county → district chain.
        assert!(muds_fd::holds(&t, &ColumnSet::single(4), 5));
        assert!(muds_fd::holds(&t, &ColumnSet::single(5), 6));
        assert!(muds_fd::holds(&t, &ColumnSet::single(6), 7));
    }
}
