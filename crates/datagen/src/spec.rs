//! Declarative dataset specifications.
//!
//! The paper evaluates on real datasets (uniprot, ionosphere, ncvoter, and
//! eleven UCI tables) that this reproduction does not ship. Instead, every
//! experiment dataset is generated from a [`DatasetSpec`]: a seeded, fully
//! deterministic recipe of column kinds whose dependency structure is
//! *planted* — keys, FD chains, derived attributes, factorial designs —
//! so the metadata profile (how many UCCs/FDs, how large their left-hand
//! sides, how much shadowing) matches the behaviour the paper reports for
//! the original data. See DESIGN.md §3 for the per-dataset substitution
//! notes.

use rand::prelude::*;
use rand::rngs::StdRng;

use muds_table::Table;

/// How a generated column's values relate to the row index and to other
/// columns.
#[derive(Debug, Clone)]
pub enum ColumnKind {
    /// Unique values: `v(i) = i` — a guaranteed single-column key.
    Serial,
    /// Independent uniform categorical values with the given number of
    /// distinct values.
    Random { cardinality: u64 },
    /// A deterministic function of other (earlier) columns, collapsed to
    /// `cardinality` distinct values:
    /// `v(i) = hash(column_index, sources(i)) % cardinality`. Plants the FD
    /// `sources → this` (and nothing stronger when `cardinality` is small
    /// enough to collapse). The column index salts the hash, so two derived
    /// columns with identical sources are *different* functions.
    Derived { sources: Vec<usize>, cardinality: u64 },
    /// Factorial-design coordinate: `v(i) = (i / stride) % arity`. A set of
    /// these with strides equal to the cumulative products of the previous
    /// arities (1, a₀, a₀·a₁, ...) and row count `∏ aᵢ` forms a full
    /// factorial — no FDs among them, and together they are a key.
    Factorial { stride: u64, arity: u64 },
    /// Latin-square coordinate: `v(i) = (i + shift · (i / stride)) % stride`
    /// — distinct within every block of `stride` consecutive rows, cycling
    /// across blocks. Together with the block id
    /// (`Factorial { stride, .. }`) it forms a composite key, and two
    /// Latin-square columns with different `shift`s form a key with each
    /// other (for up to `stride²` rows when the shift difference is coprime
    /// with `stride`): the way to plant *overlapping composite keys*, the
    /// precondition for the paper's shadowed-FD machinery.
    LatinSquare { stride: u64, shift: u64 },
    /// Mostly a function of `source`, with a per-row chance of a random
    /// value instead — breaks the FD while keeping correlation (no planted
    /// dependency).
    Noisy { source: usize, cardinality: u64, flip_permille: u32 },
    /// The same value in every row (determined by the empty set).
    Constant,
}

/// One column of a [`DatasetSpec`].
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Value recipe.
    pub kind: ColumnKind,
    /// Per-mille probability of replacing a value with NULL.
    pub null_permille: u32,
    /// When `true`, values are rendered as bare integers shared across all
    /// such columns (inclusion dependencies can arise); when `false`, they
    /// are prefixed with the column name (no INDs with other columns).
    pub shared_domain: bool,
}

impl ColumnSpec {
    /// A column with no nulls in its own value domain.
    pub fn new(name: impl Into<String>, kind: ColumnKind) -> Self {
        ColumnSpec { name: name.into(), kind, null_permille: 0, shared_domain: false }
    }

    /// Switches the column into the shared integer domain (IND-capable).
    pub fn shared(mut self) -> Self {
        self.shared_domain = true;
        self
    }

    /// Adds NULLs with the given per-mille rate.
    pub fn with_nulls(mut self, permille: u32) -> Self {
        self.null_permille = permille;
        self
    }
}

/// A complete dataset recipe.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Table name (dataset identifier in experiment output).
    pub name: String,
    /// Number of rows to generate (before deduplication).
    pub rows: usize,
    /// Column recipes; `Derived`/`Noisy` sources must reference earlier
    /// columns.
    pub columns: Vec<ColumnSpec>,
    /// RNG seed; generation is fully deterministic.
    pub seed: u64,
}

impl DatasetSpec {
    /// Generates the table. Duplicate rows are removed afterwards (the
    /// paper's precondition, §3), so the result may have slightly fewer
    /// rows than requested.
    pub fn generate(&self) -> Table {
        let n_cols = self.columns.len();
        for (i, c) in self.columns.iter().enumerate() {
            let sources: &[usize] = match &c.kind {
                ColumnKind::Derived { sources, .. } => sources,
                ColumnKind::Noisy { source, .. } => std::slice::from_ref(source),
                _ => &[],
            };
            for &s in sources {
                assert!(s < i, "column {i} ({}) references non-earlier column {s}", c.name);
            }
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        // Raw numeric values per column (u64), NULL as None.
        let mut raw: Vec<Vec<Option<u64>>> = Vec::with_capacity(n_cols);
        for (col_idx, spec) in self.columns.iter().enumerate() {
            let mut col: Vec<Option<u64>> = Vec::with_capacity(self.rows);
            // `raw` is indexed by *earlier column* then row; iterating it
            // directly would not fit the row loop.
            #[allow(clippy::needless_range_loop)]
            for i in 0..self.rows {
                let v = match &spec.kind {
                    ColumnKind::Serial => i as u64,
                    ColumnKind::Random { cardinality } => rng.gen_range(0..*cardinality.max(&1)),
                    ColumnKind::Derived { sources, cardinality } => {
                        let mut h: u64 =
                            0xcbf29ce484222325 ^ (col_idx as u64).wrapping_mul(0x9E3779B97F4A7C15);
                        for &s in sources {
                            let v = raw[s][i].map_or(u64::MAX, |x| x);
                            h ^= v.wrapping_add(0x9e3779b97f4a7c15);
                            h = h.wrapping_mul(0x100000001b3);
                        }
                        h % cardinality.max(&1)
                    }
                    ColumnKind::Factorial { stride, arity } => {
                        (i as u64 / (*stride).max(1)) % (*arity).max(1)
                    }
                    ColumnKind::LatinSquare { stride, shift } => {
                        let stride = (*stride).max(1);
                        (i as u64 + shift * (i as u64 / stride)) % stride
                    }
                    ColumnKind::Noisy { source, cardinality, flip_permille } => {
                        let card = (*cardinality).max(1);
                        if rng.gen_range(0..1000) < *flip_permille {
                            rng.gen_range(0..card)
                        } else {
                            raw[*source][i].map_or(0, |v| v % card)
                        }
                    }
                    ColumnKind::Constant => 0,
                };
                if spec.null_permille > 0 && rng.gen_range(0..1000) < spec.null_permille {
                    col.push(None);
                } else {
                    col.push(Some(v));
                }
            }
            raw.push(col);
        }

        // Render to strings.
        let names: Vec<&str> = self.columns.iter().map(|c| c.name.as_str()).collect();
        let rows: Vec<Vec<String>> = (0..self.rows)
            .map(|i| {
                self.columns
                    .iter()
                    .enumerate()
                    .map(|(c, spec)| match raw[c][i] {
                        None => String::new(),
                        Some(v) if spec.shared_domain => v.to_string(),
                        Some(v) => format!("{}_{v}", spec.name),
                    })
                    .collect()
            })
            .collect();

        // lint:allow(panic): the generator emits one value per (row,
        // column) of its own grid, so the shape checks hold by
        // construction; failure is a datagen bug worth a loud abort.
        Table::from_rows(self.name.clone(), &names, &rows)
            .expect("spec produces a valid table")
            .dedup_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muds_lattice::ColumnSet;

    #[test]
    fn serial_column_is_a_key() {
        let spec = DatasetSpec {
            name: "t".into(),
            rows: 100,
            columns: vec![
                ColumnSpec::new("id", ColumnKind::Serial),
                ColumnSpec::new("r", ColumnKind::Random { cardinality: 5 }),
            ],
            seed: 1,
        };
        let t = spec.generate();
        assert_eq!(t.num_rows(), 100);
        assert!(muds_ucc::is_unique(&t, &ColumnSet::single(0)));
    }

    #[test]
    fn derived_column_plants_fd() {
        let spec = DatasetSpec {
            name: "t".into(),
            rows: 200,
            columns: vec![
                ColumnSpec::new("id", ColumnKind::Serial),
                ColumnSpec::new("g", ColumnKind::Derived { sources: vec![0], cardinality: 10 }),
                ColumnSpec::new("h", ColumnKind::Derived { sources: vec![1], cardinality: 3 }),
            ],
            seed: 2,
        };
        let t = spec.generate();
        // g → h holds by construction.
        assert!(muds_fd::holds(&t, &ColumnSet::single(1), 2));
    }

    #[test]
    fn factorial_design_is_a_composite_key() {
        let spec = DatasetSpec {
            name: "t".into(),
            rows: 27,
            columns: vec![
                ColumnSpec::new("f0", ColumnKind::Factorial { stride: 1, arity: 3 }),
                ColumnSpec::new("f1", ColumnKind::Factorial { stride: 3, arity: 3 }),
                ColumnSpec::new("f2", ColumnKind::Factorial { stride: 9, arity: 3 }),
            ],
            seed: 3,
        };
        let t = spec.generate();
        assert_eq!(t.num_rows(), 27);
        assert!(muds_ucc::is_unique(&t, &ColumnSet::full(3)));
        assert!(!muds_ucc::is_unique(&t, &ColumnSet::from_indices([0, 1])));
        // No FDs among factorial coordinates.
        assert!(!muds_fd::holds(&t, &ColumnSet::from_indices([0, 1]), 2));
    }

    #[test]
    fn latin_square_plants_overlapping_keys() {
        let spec = DatasetSpec {
            name: "t".into(),
            rows: 64, // stride² = 64 with stride 8
            columns: vec![
                ColumnSpec::new("block", ColumnKind::Factorial { stride: 8, arity: 8 }),
                ColumnSpec::new("pos", ColumnKind::Factorial { stride: 1, arity: 8 }),
                ColumnSpec::new("latin", ColumnKind::LatinSquare { stride: 8, shift: 1 }),
            ],
            seed: 11,
        };
        let t = spec.generate();
        assert_eq!(t.num_rows(), 64);
        // Three overlapping composite keys, no singleton keys.
        for pair in [[0, 1], [0, 2], [1, 2]] {
            assert!(
                muds_ucc::is_unique(&t, &ColumnSet::from_indices(pair)),
                "{pair:?} should be a key"
            );
        }
        for single in 0..3 {
            assert!(!muds_ucc::is_unique(&t, &ColumnSet::single(single)));
        }
    }

    #[test]
    fn constant_column() {
        let spec = DatasetSpec {
            name: "t".into(),
            rows: 10,
            columns: vec![
                ColumnSpec::new("id", ColumnKind::Serial),
                ColumnSpec::new("k", ColumnKind::Constant),
            ],
            seed: 4,
        };
        let t = spec.generate();
        assert!(muds_fd::holds(&t, &ColumnSet::empty(), 1));
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec {
            name: "t".into(),
            rows: 50,
            columns: vec![
                ColumnSpec::new("a", ColumnKind::Random { cardinality: 4 }),
                ColumnSpec::new(
                    "b",
                    ColumnKind::Noisy { source: 0, cardinality: 4, flip_permille: 100 },
                ),
            ],
            seed: 9,
        };
        let t1 = spec.generate();
        let t2 = spec.generate();
        assert_eq!(t1.num_rows(), t2.num_rows());
        for r in 0..t1.num_rows() {
            assert_eq!(t1.row(r), t2.row(r));
        }
    }

    #[test]
    fn nulls_are_injected() {
        let spec = DatasetSpec {
            name: "t".into(),
            rows: 500,
            columns: vec![
                ColumnSpec::new("id", ColumnKind::Serial),
                ColumnSpec::new("x", ColumnKind::Random { cardinality: 50 }).with_nulls(200),
            ],
            seed: 5,
        };
        let t = spec.generate();
        let nulls = t.column(1).null_count();
        assert!(nulls > 50 && nulls < 200, "expected ≈20% nulls, got {nulls}/500");
    }

    #[test]
    fn shared_domain_enables_inds() {
        let spec = DatasetSpec {
            name: "t".into(),
            rows: 300,
            columns: vec![
                ColumnSpec::new("small", ColumnKind::Random { cardinality: 4 }).shared(),
                ColumnSpec::new("big", ColumnKind::Random { cardinality: 24 }).shared(),
            ],
            seed: 6,
        };
        let t = spec.generate();
        let inds = muds_ind::naive_inds(&t);
        assert!(
            inds.contains(&muds_ind::Ind::new(0, 1)),
            "small-domain column should be included in the large-domain one"
        );
    }

    #[test]
    #[should_panic(expected = "non-earlier")]
    fn forward_reference_rejected() {
        let spec = DatasetSpec {
            name: "t".into(),
            rows: 5,
            columns: vec![ColumnSpec::new(
                "bad",
                ColumnKind::Derived { sources: vec![0], cardinality: 2 },
            )],
            seed: 1,
        };
        let _ = spec.generate();
    }

    #[test]
    fn duplicates_are_removed() {
        // Two low-cardinality random columns over many rows will collide.
        let spec = DatasetSpec {
            name: "t".into(),
            rows: 1000,
            columns: vec![
                ColumnSpec::new("a", ColumnKind::Random { cardinality: 2 }),
                ColumnSpec::new("b", ColumnKind::Random { cardinality: 2 }),
            ],
            seed: 7,
        };
        let t = spec.generate();
        assert!(t.num_rows() <= 4);
        assert!(!t.has_duplicate_rows());
    }
}
