//! Content-addressed dataset registry.
//!
//! Datasets register under a client-chosen name, but are *stored* under
//! their content [`Fingerprint`] (schema + dictionaries + codes, see
//! `muds_table::fingerprint`): registering the same data twice — under one
//! name or many, from a file path or an uploaded body, through any
//! row-order-preserving CSV round trip — lands on the same `Arc<Table>` and
//! the same cache identity. Tables are row-deduplicated on ingest (the
//! paper's §3 precondition), so the fingerprint describes the relation the
//! profilers actually see.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use muds_table::{
    fingerprint, table_from_csv_bytes, table_from_csv_file, CsvOptions, Fingerprint, Table,
    TableDelta, TableError,
};

use crate::persist::Persist;
use crate::sync::lock;

/// What a registration returned — enough for the `POST /datasets` response.
#[derive(Debug, Clone)]
pub struct DatasetInfo {
    /// Registered name.
    pub name: String,
    /// Content fingerprint (the cache identity).
    pub fingerprint: Fingerprint,
    /// Column names in schema order.
    pub columns: Vec<String>,
    /// Row count after deduplication.
    pub rows: usize,
    /// Duplicate rows dropped on ingest.
    pub rows_deduplicated: usize,
    /// True when identical content was already stored (under any name):
    /// the registry reused the existing table instead of storing a copy.
    pub already_registered: bool,
}

/// What [`Registry::apply_delta`] did — enough for the endpoint response
/// and for the server's surgical cache eviction.
#[derive(Debug, Clone)]
pub struct DeltaApplied {
    /// Fingerprint the name was bound to before the delta (the cache
    /// identity whose entries are now stale for this name).
    pub old_fingerprint: Fingerprint,
    /// Rows appended (after deduplication against the existing table).
    pub appended_rows: usize,
    /// Rows removed.
    pub deleted_rows: usize,
    /// Appended rows dropped as duplicates of existing ones.
    pub rows_deduplicated: usize,
    /// Columns whose cluster structure could have changed (the monotone
    /// invalidation frontier — see `muds_table::DeltaOutcome`).
    pub affected_columns: Vec<usize>,
    /// Registration info for the patched table (new fingerprint inside).
    pub info: DatasetInfo,
}

#[derive(Default)]
struct RegistryInner {
    /// Content-addressed store: one `Arc<Table>` per distinct content.
    tables: HashMap<Fingerprint, Arc<Table>>,
    /// Name bindings (sorted for stable listings). Re-registering a name
    /// rebinds it; unreferenced content stays resident until shutdown.
    names: BTreeMap<String, Fingerprint>,
    /// Mutation counter: versions manifest snapshots so concurrent
    /// registrations keep last-writer-wins semantics on disk too.
    version: u64,
}

/// Thread-safe dataset registry shared by all connection handlers.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
    /// Write-through persistence (`--data-dir`); `None` = memory only.
    persist: Option<Arc<Persist>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// A registry that writes table blobs and the name manifest through to
    /// disk on every mutation.
    pub fn with_persist(persist: Arc<Persist>) -> Self {
        Registry { inner: Mutex::default(), persist: Some(persist) }
    }

    /// Seeds the registry from recovered state without re-persisting it
    /// (the blobs and manifest are already on disk).
    pub fn restore(&self, tables: Vec<(Fingerprint, Table)>, names: BTreeMap<String, Fingerprint>) {
        let mut inner = lock(&self.inner);
        // lint:allow(hash-order): `tables` is a Vec in directory-read order;
        // every element lands in a fingerprint-keyed map, so iteration order
        // cannot affect the resulting registry state.
        for (fp, table) in tables {
            inner.tables.insert(fp, Arc::new(table));
        }
        inner.names = names;
        inner.version += 1;
        // Seed the persisted-manifest version so the first live mutation
        // (version 2+) always supersedes the recovered snapshot.
        if let Some(persist) = &self.persist {
            persist.note_manifest_version(inner.version);
        }
    }

    /// Registers an already-built table under `name`.
    pub fn register_table(&self, name: &str, table: Table) -> DatasetInfo {
        let before = table.num_rows();
        let table = if table.has_duplicate_rows() { table.dedup_rows() } else { table };
        let fp = fingerprint(&table);
        let rows = table.num_rows();
        let columns: Vec<String> = table.column_names().iter().map(|c| c.to_string()).collect();
        let table = Arc::new(table);
        let (already_registered, version, names_snapshot) = {
            let mut inner = lock(&self.inner);
            let already_registered = inner.tables.contains_key(&fp);
            if !already_registered {
                inner.tables.insert(fp, Arc::clone(&table));
            }
            inner.names.insert(name.to_string(), fp);
            inner.version += 1;
            // Snapshot under the lock so the manifest written for this
            // version is exactly the bindings this mutation produced.
            let snapshot = self.persist.as_ref().map(|_| inner.names.clone());
            (already_registered, inner.version, snapshot)
        };
        // Disk writes happen outside the lock: a multi-MB table blob (and
        // its fsync) must not stall resolve() for other datasets. The blob
        // lands before the manifest that references it.
        if let Some(persist) = &self.persist {
            if !already_registered {
                persist.store_table(fp, &table);
            }
            if let Some(names) = names_snapshot {
                persist.store_manifest(version, &names);
            }
        }
        DatasetInfo {
            name: name.to_string(),
            fingerprint: fp,
            columns,
            rows,
            rows_deduplicated: before - rows,
            already_registered,
        }
    }

    /// Registers a dataset from raw CSV bytes (an uploaded body).
    pub fn register_csv_bytes(
        &self,
        name: &str,
        bytes: &[u8],
        options: &CsvOptions,
    ) -> Result<DatasetInfo, TableError> {
        let table = table_from_csv_bytes(name, bytes, options)?;
        Ok(self.register_table(name, table))
    }

    /// Registers a dataset from a CSV file on the server's filesystem.
    pub fn register_csv_path(
        &self,
        name: &str,
        path: &str,
        options: &CsvOptions,
    ) -> Result<DatasetInfo, TableError> {
        let table = table_from_csv_file(path, options)?;
        Ok(self.register_table(name, table))
    }

    /// Applies `delta` to the dataset bound to `name`: builds the patched
    /// table, stores it content-addressed, and rebinds the name to the new
    /// fingerprint. The old content (and any other names bound to it) is
    /// untouched. Returns `Ok(None)` for an unknown name.
    ///
    /// The delta is applied outside the registry lock — a large table may
    /// take a while to patch, and readers of *other* datasets must not
    /// stall behind it. The name is rebound afterwards, last writer wins,
    /// exactly like re-registering.
    pub fn apply_delta(
        &self,
        name: &str,
        delta: &TableDelta,
    ) -> Result<Option<DeltaApplied>, TableError> {
        let old = {
            let inner = lock(&self.inner);
            match inner.names.get(name) {
                Some(fp) => Arc::clone(&inner.tables[fp]),
                None => return Ok(None),
            }
        };
        let old_fingerprint = fingerprint(&old);
        let outcome = old.apply_delta(delta)?;
        let deleted_rows = outcome.deleted_rows.len();
        let info = self.register_table(name, outcome.table);
        Ok(Some(DeltaApplied {
            old_fingerprint,
            appended_rows: outcome.appended_rows,
            deleted_rows,
            rows_deduplicated: outcome.rows_deduplicated,
            affected_columns: outcome.affected_columns,
            info,
        }))
    }

    /// Resolves `key` — a registered name, or a 32-hex-digit fingerprint —
    /// to the stored table.
    pub fn resolve(&self, key: &str) -> Option<(Fingerprint, Arc<Table>)> {
        let inner = lock(&self.inner);
        if let Some(fp) = inner.names.get(key) {
            return inner.tables.get(fp).map(|t| (*fp, Arc::clone(t)));
        }
        let fp: Fingerprint = key.parse().ok()?;
        inner.tables.get(&fp).map(|t| (fp, Arc::clone(t)))
    }

    /// Name bindings in sorted order: `(name, fingerprint, rows, columns)`.
    pub fn list(&self) -> Vec<(String, Fingerprint, usize, usize)> {
        let inner = lock(&self.inner);
        inner
            .names
            .iter()
            .map(|(name, fp)| {
                let t = &inner.tables[fp];
                (name.clone(), *fp, t.num_rows(), t.num_columns())
            })
            .collect()
    }

    /// Number of registered names.
    pub fn names_len(&self) -> usize {
        lock(&self.inner).names.len()
    }

    /// Number of distinct contents stored.
    pub fn contents_len(&self) -> usize {
        lock(&self.inner).tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muds_table::table_to_csv;

    const CSV: &str = "a,b\n1,x\n2,y\n2,y\n";

    #[test]
    fn identical_content_is_stored_once() {
        let reg = Registry::new();
        let first = reg.register_csv_bytes("one", CSV.as_bytes(), &CsvOptions::default()).unwrap();
        let second = reg.register_csv_bytes("two", CSV.as_bytes(), &CsvOptions::default()).unwrap();
        assert!(!first.already_registered);
        assert!(second.already_registered);
        assert_eq!(first.fingerprint, second.fingerprint);
        assert_eq!(reg.names_len(), 2);
        assert_eq!(reg.contents_len(), 1);
        let (fa, ta) = reg.resolve("one").unwrap();
        let (fb, tb) = reg.resolve("two").unwrap();
        assert_eq!(fa, fb);
        assert!(Arc::ptr_eq(&ta, &tb), "same content shares one table");
    }

    #[test]
    fn rows_are_deduplicated_on_ingest() {
        let reg = Registry::new();
        let info = reg.register_csv_bytes("d", CSV.as_bytes(), &CsvOptions::default()).unwrap();
        assert_eq!(info.rows, 2);
        assert_eq!(info.rows_deduplicated, 1);
        assert_eq!(info.columns, vec!["a", "b"]);
    }

    #[test]
    fn fingerprint_is_stable_across_row_order_preserving_reloads() {
        let reg = Registry::new();
        let info = reg.register_csv_bytes("d", CSV.as_bytes(), &CsvOptions::default()).unwrap();
        // Round-trip the stored table through CSV (quoting and duplicate
        // removal may change the bytes) and re-register: same fingerprint.
        let (_, table) = reg.resolve("d").unwrap();
        let rewritten = table_to_csv(&table, &CsvOptions::default());
        assert_ne!(rewritten.as_bytes(), CSV.as_bytes());
        let again =
            reg.register_csv_bytes("d2", rewritten.as_bytes(), &CsvOptions::default()).unwrap();
        assert_eq!(info.fingerprint, again.fingerprint);
        assert!(again.already_registered);
    }

    #[test]
    fn resolve_accepts_fingerprints_and_rejects_unknowns() {
        let reg = Registry::new();
        let info = reg.register_csv_bytes("d", CSV.as_bytes(), &CsvOptions::default()).unwrap();
        assert!(reg.resolve(&info.fingerprint.to_string()).is_some());
        assert!(reg.resolve("missing").is_none());
        assert!(reg.resolve(&"0".repeat(32)).is_none());
    }

    #[test]
    fn apply_delta_rebinds_the_name_and_keeps_old_content() {
        let reg = Registry::new();
        reg.register_csv_bytes("d", CSV.as_bytes(), &CsvOptions::default()).unwrap();
        let (old_fp, _) = reg.resolve("d").unwrap();
        let applied = reg
            .apply_delta("d", &TableDelta::Append { rows: vec![vec!["7".into(), "q".into()]] })
            .unwrap()
            .expect("name is registered");
        assert_eq!(applied.old_fingerprint, old_fp);
        assert_eq!(applied.appended_rows, 1);
        assert_ne!(applied.info.fingerprint, old_fp, "content changed, fingerprint changed");
        let (fp, table) = reg.resolve("d").unwrap();
        assert_eq!(fp, applied.info.fingerprint);
        assert_eq!(table.num_rows(), 3);
        // The old content is still resolvable by fingerprint.
        assert!(reg.resolve(&old_fp.to_string()).is_some());
        assert_eq!(reg.contents_len(), 2);
    }

    #[test]
    fn apply_delta_surfaces_unknown_names_and_bad_rows() {
        let reg = Registry::new();
        assert!(reg.apply_delta("ghost", &TableDelta::Delete { rows: vec![0] }).unwrap().is_none());
        reg.register_csv_bytes("d", CSV.as_bytes(), &CsvOptions::default()).unwrap();
        let err = reg.apply_delta("d", &TableDelta::Delete { rows: vec![99] }).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        // The failed delta changed nothing.
        let (_, table) = reg.resolve("d").unwrap();
        assert_eq!(table.num_rows(), 2);
    }

    #[test]
    fn rebinding_a_name_points_at_the_new_content() {
        let reg = Registry::new();
        reg.register_csv_bytes("d", CSV.as_bytes(), &CsvOptions::default()).unwrap();
        let other = "a,b\n9,z\n8,w\n";
        let info = reg.register_csv_bytes("d", other.as_bytes(), &CsvOptions::default()).unwrap();
        let (fp, table) = reg.resolve("d").unwrap();
        assert_eq!(fp, info.fingerprint);
        assert_eq!(table.num_rows(), 2);
        assert_eq!(reg.contents_len(), 2);
    }
}
