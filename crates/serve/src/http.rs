//! Minimal HTTP/1.1 framing — just enough protocol for the profiling
//! daemon's JSON endpoints, with no dependencies beyond std.
//!
//! Scope: request line + headers + `Content-Length` bodies, with HTTP/1.1
//! keep-alive (the epoll reactor serves many requests per connection; the
//! legacy blocking path still answers `Connection: close`). No chunked
//! encoding, no TLS. Requests are size-capped (header block and body
//! independently) so a misbehaving client cannot balloon server memory:
//! `Content-Length` is parsed as a full `u64` and checked against the cap
//! *before* any buffer is reserved, so a hostile
//! `Content-Length: 18446744073709551615` costs nothing but a 413.
//!
//! The core parser, [`parse_buffered`], is *incremental*: it looks at the
//! bytes buffered so far and either produces one complete request (plus
//! how many bytes it consumed, so pipelined successors stay in the
//! buffer) or reports that more bytes are needed. The blocking
//! [`read_request`] is a thin loop over it.

use std::io::{self, Read, Write};

/// Maximum size of the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 64 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Decoded path component of the target, e.g. `/profile`.
    pub path: String,
    /// Decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection may serve another request after this one:
    /// HTTP/1.1 unless `Connection: close`, HTTP/1.0 only with an explicit
    /// `Connection: keep-alive`.
    pub keep_alive: bool,
}

impl Request {
    /// First header with the given lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Each variant maps to one response
/// status at the connection handler.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or framing.
    BadRequest(String),
    /// Head or body exceeded its size cap.
    TooLarge(String),
    /// Peer closed the connection before a full request arrived.
    Closed,
    /// Transport error (including read timeouts).
    Io(io::Error),
}

impl HttpError {
    /// The response status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::TooLarge(_) => 413,
            HttpError::Io(_) => 408,
            _ => 400,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::TooLarge(m) => write!(f, "request too large: {m}"),
            HttpError::Closed => write!(f, "connection closed mid-request"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// Decodes `%XX` sequences and `+` (as space) in a query component.
/// Invalid escapes are kept literally rather than rejected — query strings
/// are only used for short identifiers here.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let params = query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();
    (percent_decode(path), params)
}

/// Outcome of [`parse_buffered`] on the bytes seen so far.
#[derive(Debug)]
pub enum Framed {
    /// The buffer does not yet hold a complete request; read more.
    NeedMore,
    /// One complete request. `consumed` is how many buffer bytes it spans;
    /// anything after that offset is the start of a pipelined successor.
    Complete { request: Request, consumed: usize },
}

/// Incremental request parser: frames at most one request out of `buf`.
/// `max_body` caps the `Content-Length` the server is willing to buffer —
/// checked against the *declared* length, before any allocation.
pub fn parse_buffered(buf: &[u8], max_body: usize) -> Result<Framed, HttpError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(format!("head exceeds {MAX_HEAD_BYTES} bytes")));
        }
        return Ok(Framed::NeedMore);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(HttpError::TooLarge(format!("head exceeds {MAX_HEAD_BYTES} bytes")));
    }

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("head is not valid UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::BadRequest("empty request line".into()))?
        .to_ascii_uppercase();
    let target =
        parts.next().ok_or_else(|| HttpError::BadRequest("request line has no target".into()))?;
    let http11 = match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => v != "HTTP/1.0",
        _ => return Err(HttpError::BadRequest("expected an HTTP/1.x version".into())),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // Framing headers must be unambiguous: a request carrying more than
    // one Content-Length is the classic request-smuggling shape (two
    // parsers picking different values), so it is rejected outright — even
    // when the duplicates agree.
    let mut content_lengths = headers.iter().filter(|(n, _)| n == "content-length");
    let content_length = match content_lengths.next() {
        Some((_, v)) => {
            if content_lengths.next().is_some() {
                return Err(HttpError::BadRequest("multiple content-length headers".into()));
            }
            // Full u64 so every syntactically valid length gets a verdict
            // from the cap, not from usize overflow behavior.
            v.parse::<u64>()
                .map_err(|_| HttpError::BadRequest(format!("bad content-length {v:?}")))?
        }
        None => 0,
    };
    if content_length > max_body as u64 {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes (max {max_body})"
        )));
    }
    let content_length = content_length as usize;

    let body_start = head_end + 4;
    if buf.len() - body_start < content_length {
        return Ok(Framed::NeedMore);
    }
    let body = buf[body_start..body_start + content_length].to_vec();

    let connection = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.as_str())
        .unwrap_or_default();
    let token = |t: &str| connection.split(',').any(|c| c.trim().eq_ignore_ascii_case(t));
    let keep_alive = if http11 { !token("close") } else { token("keep-alive") };

    let (path, query) = parse_target(target);
    Ok(Framed::Complete {
        request: Request { method, path, query, headers, body, keep_alive },
        consumed: body_start + content_length,
    })
}

/// Reads one request from `stream` (blocking). `max_body` caps the
/// `Content-Length` the server is willing to buffer.
pub fn read_request(stream: &mut impl Read, max_body: usize) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    loop {
        if let Framed::Complete { request, .. } = parse_buffered(&buf, max_body)? {
            return Ok(request);
        }
        let n = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            if buf.is_empty() {
                return Err(HttpError::Closed);
            }
            let what = if find_head_end(&buf).is_some() { "body" } else { "head" };
            return Err(HttpError::BadRequest(format!("truncated {what}")));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response about to be written.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    /// Extra headers (e.g. `Retry-After`, `X-Cache`).
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    pub fn text(status: u16, body: &str) -> Self {
        Response {
            status,
            content_type: "text/plain",
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    /// JSON error envelope: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Self {
        Response::json(status, format!("{{\"error\":{}}}", muds_core::json::json_string(message)))
    }

    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serializes the full response. `keep_alive` picks the `Connection`
    /// header; callers that reuse the socket must pass `true`.
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(256 + self.body.len());
        let connection = if keep_alive { "keep-alive" } else { "close" };
        out.extend_from_slice(
            format!(
                "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
                self.status,
                reason(self.status),
                self.content_type,
                self.body.len()
            )
            .as_bytes(),
        );
        for (name, value) in &self.headers {
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(value.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Writes the response and closes the exchange (`Connection: close`) —
    /// the legacy one-request-per-connection path.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(&self.to_bytes(false))?;
        w.flush()
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut io::Cursor::new(raw.to_vec()), 1024)
    }

    #[test]
    fn parses_request_line_headers_and_body() {
        let r = req(
            b"POST /profile?x=1&name=a%20b HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody",
        )
        .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/profile");
        assert_eq!(r.query_param("x"), Some("1"));
        assert_eq!(r.query_param("name"), Some("a b"));
        assert_eq!(r.header("host"), Some("h"));
        assert_eq!(r.body, b"body");
    }

    #[test]
    fn body_without_content_length_is_empty() {
        let r = req(b"GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert!(r.body.is_empty());
    }

    #[test]
    fn rejects_oversized_bodies_and_garbage() {
        assert!(matches!(
            req(b"POST /x HTTP/1.1\r\nContent-Length: 99999\r\n\r\n"),
            Err(HttpError::TooLarge(_))
        ));
        assert!(matches!(req(b"not http at all\r\n\r\n"), Err(HttpError::BadRequest(_))));
        assert!(matches!(req(b""), Err(HttpError::Closed)));
        assert!(matches!(
            req(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::BadRequest(_))
        ));
    }

    /// The cap is enforced on the *declared* length as a full u64: the
    /// hostile `18446744073709551615` (u64::MAX) and friends answer 413
    /// without reserving a byte, overflowing digits are a 400, and the
    /// boundary sits exactly at `max_body`.
    #[test]
    fn hostile_content_lengths_are_capped_before_allocation() {
        let max = req(b"POST /x HTTP/1.1\r\nContent-Length: 18446744073709551615\r\n\r\n");
        assert!(matches!(max, Err(HttpError::TooLarge(m)) if m.contains("18446744073709551615")));
        // One past u64::MAX no longer parses: bad framing, not a cap hit.
        let over = req(b"POST /x HTTP/1.1\r\nContent-Length: 18446744073709551616\r\n\r\n");
        assert!(matches!(over, Err(HttpError::BadRequest(m)) if m.contains("content-length")));
        assert!(matches!(
            req(b"POST /x HTTP/1.1\r\nContent-Length: -1\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        // Exactly max_body passes; max_body + 1 is rejected.
        let at =
            format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}", 1024, "a".repeat(1024));
        assert_eq!(req(at.as_bytes()).unwrap().body.len(), 1024);
        let past = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 1025);
        assert!(matches!(req(past.as_bytes()), Err(HttpError::TooLarge(_))));
    }

    /// Duplicate Content-Length headers are the request-smuggling shape:
    /// rejected whether the copies conflict or agree, instead of silently
    /// trusting whichever one `find()` happens to see first.
    #[test]
    fn duplicate_content_length_headers_are_rejected() {
        let conflicting = b"POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 2\r\n\r\nbody";
        assert!(
            matches!(req(conflicting), Err(HttpError::BadRequest(m)) if m.contains("multiple"))
        );
        let agreeing = b"POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody";
        assert!(matches!(req(agreeing), Err(HttpError::BadRequest(_))));
        // A single header still frames the body normally.
        let single = b"POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        assert_eq!(req(single).unwrap().body, b"body");
    }

    /// A peer that closes the socket mid-body gets a clean BadRequest
    /// (→ 400) immediately — the reader must not spin or wait for more
    /// bytes that can never arrive.
    #[test]
    fn mid_body_close_is_a_clean_bad_request() {
        let truncated = b"POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\nonly-a-few-bytes";
        let start = std::time::Instant::now();
        assert!(matches!(
            req(truncated),
            Err(HttpError::BadRequest(m)) if m.contains("truncated body")
        ));
        assert!(start.elapsed() < std::time::Duration::from_secs(1), "no blocking retry");
    }

    /// The incremental parser frames exactly one request and reports the
    /// bytes it consumed, leaving a pipelined successor in place.
    #[test]
    fn parse_buffered_is_incremental_and_pipelining_aware() {
        let wire = b"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcGET /b HTTP/1.1\r\n\r\n";
        // Every strict prefix of the first request needs more bytes.
        let first_len = wire.len() - b"GET /b HTTP/1.1\r\n\r\n".len();
        for cut in 0..first_len {
            assert!(
                matches!(parse_buffered(&wire[..cut], 1024).unwrap(), Framed::NeedMore),
                "cut={cut}"
            );
        }
        let Framed::Complete { request, consumed } = parse_buffered(wire, 1024).unwrap() else {
            panic!("complete request expected");
        };
        assert_eq!(request.path, "/a");
        assert_eq!(request.body, b"abc");
        assert_eq!(consumed, first_len, "pipelined successor stays buffered");
        let Framed::Complete { request, consumed } =
            parse_buffered(&wire[consumed..], 1024).unwrap()
        else {
            panic!("second request expected");
        };
        assert_eq!(request.path, "/b");
        assert_eq!(consumed, b"GET /b HTTP/1.1\r\n\r\n".len());
    }

    #[test]
    fn unbounded_heads_are_rejected_while_buffering() {
        let garbage = vec![b'a'; MAX_HEAD_BYTES + 1];
        assert!(matches!(parse_buffered(&garbage, 1024), Err(HttpError::TooLarge(_))));
    }

    /// Keep-alive per the HTTP/1.x defaults: 1.1 persists unless told to
    /// close, 1.0 closes unless told to persist.
    #[test]
    fn keep_alive_follows_version_and_connection_header() {
        assert!(req(b"GET / HTTP/1.1\r\n\r\n").unwrap().keep_alive);
        assert!(!req(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().keep_alive);
        assert!(!req(b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").unwrap().keep_alive);
        assert!(!req(b"GET / HTTP/1.0\r\n\r\n").unwrap().keep_alive);
        assert!(req(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap().keep_alive);
    }

    #[test]
    fn response_is_framed_with_length_and_close() {
        let mut out = Vec::new();
        Response::json(200, "{}".into()).with_header("X-Cache", "hit").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("X-Cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn keep_alive_responses_advertise_it() {
        let bytes = Response::text(200, "ok").to_bytes(true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(!text.contains("Connection: close"));
    }

    #[test]
    fn error_envelope_escapes_the_message() {
        let r = Response::error(400, "bad \"name\"");
        assert_eq!(String::from_utf8(r.body).unwrap(), "{\"error\":\"bad \\\"name\\\"\"}");
    }
}
