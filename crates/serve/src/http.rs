//! Minimal HTTP/1.1 framing — just enough protocol for the profiling
//! daemon's JSON endpoints, with no dependencies beyond std.
//!
//! Scope: request line + headers + `Content-Length` bodies, one request per
//! connection (`Connection: close` on every response). No chunked encoding,
//! no keep-alive, no TLS. Requests are size-capped (header block and body
//! independently) so a misbehaving client cannot balloon server memory.

use std::io::{self, Read, Write};

/// Maximum size of the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 64 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Decoded path component of the target, e.g. `/profile`.
    pub path: String,
    /// Decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Each variant maps to one response
/// status at the connection handler.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or framing.
    BadRequest(String),
    /// Head or body exceeded its size cap.
    TooLarge(String),
    /// Peer closed the connection before a full request arrived.
    Closed,
    /// Transport error (including read timeouts).
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::TooLarge(m) => write!(f, "request too large: {m}"),
            HttpError::Closed => write!(f, "connection closed mid-request"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// Decodes `%XX` sequences and `+` (as space) in a query component.
/// Invalid escapes are kept literally rather than rejected — query strings
/// are only used for short identifiers here.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let params = query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();
    (percent_decode(path), params)
}

/// Reads one request from `stream`. `max_body` caps the `Content-Length`
/// the server is willing to buffer.
pub fn read_request(stream: &mut impl Read, max_body: usize) -> Result<Request, HttpError> {
    // Accumulate until the blank line that ends the head. Reads go through
    // a small stack buffer; whatever arrives past the head start the body.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(format!("head exceeds {MAX_HEAD_BYTES} bytes")));
        }
        let n = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            if buf.is_empty() {
                return Err(HttpError::Closed);
            }
            return Err(HttpError::BadRequest("truncated head".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("head is not valid UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::BadRequest("empty request line".into()))?
        .to_ascii_uppercase();
    let target =
        parts.next().ok_or_else(|| HttpError::BadRequest("request line has no target".into()))?;
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(HttpError::BadRequest("expected an HTTP/1.x version".into())),
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // Framing headers must be unambiguous: a request carrying more than
    // one Content-Length is the classic request-smuggling shape (two
    // parsers picking different values), so it is rejected outright — even
    // when the duplicates agree.
    let mut content_lengths = headers.iter().filter(|(n, _)| n == "content-length");
    let content_length = match content_lengths.next() {
        Some((_, v)) => {
            if content_lengths.next().is_some() {
                return Err(HttpError::BadRequest("multiple content-length headers".into()));
            }
            v.parse::<usize>()
                .map_err(|_| HttpError::BadRequest(format!("bad content-length {v:?}")))?
        }
        None => 0,
    };
    if content_length > max_body {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes (max {max_body})"
        )));
    }

    // Body: bytes already read past the head, then the remainder.
    let mut body = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        return Err(HttpError::BadRequest("more body bytes than content-length".into()));
    }
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want]).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::BadRequest("truncated body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }

    let (path, query) = parse_target(target);
    Ok(Request { method, path, query, headers, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response about to be written. All responses close the connection.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    /// Extra headers (e.g. `Retry-After`, `X-Cache`).
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    pub fn text(status: u16, body: &str) -> Self {
        Response {
            status,
            content_type: "text/plain",
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    /// JSON error envelope: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Self {
        Response::json(status, format!("{{\"error\":{}}}", muds_core::json::json_string(message)))
    }

    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut io::Cursor::new(raw.to_vec()), 1024)
    }

    #[test]
    fn parses_request_line_headers_and_body() {
        let r = req(
            b"POST /profile?x=1&name=a%20b HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody",
        )
        .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/profile");
        assert_eq!(r.query_param("x"), Some("1"));
        assert_eq!(r.query_param("name"), Some("a b"));
        assert_eq!(r.header("host"), Some("h"));
        assert_eq!(r.body, b"body");
    }

    #[test]
    fn body_without_content_length_is_empty() {
        let r = req(b"GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert!(r.body.is_empty());
    }

    #[test]
    fn rejects_oversized_bodies_and_garbage() {
        assert!(matches!(
            req(b"POST /x HTTP/1.1\r\nContent-Length: 99999\r\n\r\n"),
            Err(HttpError::TooLarge(_))
        ));
        assert!(matches!(req(b"not http at all\r\n\r\n"), Err(HttpError::BadRequest(_))));
        assert!(matches!(req(b""), Err(HttpError::Closed)));
        assert!(matches!(
            req(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::BadRequest(_))
        ));
    }

    /// Duplicate Content-Length headers are the request-smuggling shape:
    /// rejected whether the copies conflict or agree, instead of silently
    /// trusting whichever one `find()` happens to see first.
    #[test]
    fn duplicate_content_length_headers_are_rejected() {
        let conflicting = b"POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 2\r\n\r\nbody";
        assert!(
            matches!(req(conflicting), Err(HttpError::BadRequest(m)) if m.contains("multiple"))
        );
        let agreeing = b"POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody";
        assert!(matches!(req(agreeing), Err(HttpError::BadRequest(_))));
        // A single header still frames the body normally.
        let single = b"POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        assert_eq!(req(single).unwrap().body, b"body");
    }

    /// A peer that closes the socket mid-body gets a clean BadRequest
    /// (→ 400) immediately — the reader must not spin or wait for more
    /// bytes that can never arrive.
    #[test]
    fn mid_body_close_is_a_clean_bad_request() {
        let truncated = b"POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\nonly-a-few-bytes";
        let start = std::time::Instant::now();
        assert!(matches!(
            req(truncated),
            Err(HttpError::BadRequest(m)) if m.contains("truncated body")
        ));
        assert!(start.elapsed() < std::time::Duration::from_secs(1), "no blocking retry");
    }

    #[test]
    fn response_is_framed_with_length_and_close() {
        let mut out = Vec::new();
        Response::json(200, "{}".into()).with_header("X-Cache", "hit").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("X-Cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn error_envelope_escapes_the_message() {
        let r = Response::error(400, "bad \"name\"");
        assert_eq!(String::from_utf8(r.body).unwrap(), "{\"error\":\"bad \\\"name\\\"\"}");
    }
}
