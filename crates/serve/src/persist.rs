//! Disk persistence for the daemon (`--data-dir`): content-addressed
//! write-through of the dataset registry and the Ready result-cache
//! entries, plus crash-safe recovery on startup.
//!
//! # On-disk layout (all under the data dir)
//!
//! ```text
//! manifest.json                      {"version":1,"names":{"<name>":"<fp>"}}
//! tables/<fingerprint>.csv           canonical CSV of the deduplicated table
//! results/<fp>-<algorithm>-<cfg>.json
//!     line 1: {"fingerprint":"…","algorithm":"…","config":"…"}  (the key)
//!     line 2: the cached ProfilePayload JSON, byte-identical to what
//!             `POST /profile` served
//! tmp/                               staging area for atomic writes
//! ```
//!
//! Table blobs and result documents are *content-addressed*: their
//! identity is in the filename and repeated in the file, so recovery can
//! validate each file independently of the manifest. The manifest only
//! restores the name → fingerprint bindings; a binding whose blob is
//! missing or damaged is dropped, and an orphaned blob (no binding) is
//! still served by fingerprint.
//!
//! # Atomicity and recovery
//!
//! Every write goes tmp-file → `fsync` → atomic `rename` → directory
//! `fsync`, so a `kill -9` at any instant leaves either the old file, the
//! new file, or a stale tmp file — never a half-written final file. On
//! startup, stale tmp files are discarded, every blob is re-validated
//! (tables by re-fingerprinting, results by re-parsing the payload), and
//! anything torn is counted in `persist.torn_skipped` and deleted; intact
//! state counts into `persist.recovered`.
//!
//! Persistence failures are deliberately non-fatal: memory stays the
//! source of truth, a failed write is logged to stderr and the daemon
//! keeps serving (it just won't recover that entry after a restart).

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use muds_core::json::{json_string, parse_json, JsonValue};
use muds_core::Algorithm;
use muds_table::{fingerprint, table_from_csv_bytes, table_to_csv, CsvOptions, Fingerprint, Table};

use crate::cache::CacheKey;
use crate::metrics::ServeMetrics;
use crate::sync::lock;

/// FNV-1a/64 over `bytes` — compresses the config string into a fixed-width
/// filename component (the full config is repeated inside the file).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything recovery found intact in a data dir.
#[derive(Default)]
pub struct Recovered {
    /// Validated table blobs (fingerprint re-checked against content).
    pub tables: Vec<(Fingerprint, Table)>,
    /// Name bindings whose table blob survived.
    pub names: BTreeMap<String, Fingerprint>,
    /// Validated result documents, sorted by filename for deterministic
    /// LRU reconciliation.
    pub results: Vec<(CacheKey, String)>,
}

/// Handle on one data dir. Shared by the registry (table blobs + manifest)
/// and the result cache (result documents).
pub struct Persist {
    tables_dir: PathBuf,
    results_dir: PathBuf,
    tmp_dir: PathBuf,
    manifest_path: PathBuf,
    metrics: Arc<ServeMetrics>,
    /// Unique suffix for staged tmp files.
    seq: AtomicU64,
    /// Version of the last manifest actually written; stale snapshots
    /// (from a registration that lost the race to a later one) are
    /// skipped, keeping last-writer-wins semantics on disk.
    manifest_written: Mutex<u64>,
}

impl Persist {
    /// Opens (creating if needed) a data dir and sweeps stale tmp files.
    pub fn open(root: &Path, metrics: Arc<ServeMetrics>) -> io::Result<Arc<Persist>> {
        let tables_dir = root.join("tables");
        let results_dir = root.join("results");
        let tmp_dir = root.join("tmp");
        fs::create_dir_all(&tables_dir)?;
        fs::create_dir_all(&results_dir)?;
        fs::create_dir_all(&tmp_dir)?;
        // Stale tmp files are the residue of a crash mid-write: the rename
        // never happened, so they are invisible to recovery and safe to
        // drop.
        if let Ok(entries) = fs::read_dir(&tmp_dir) {
            for entry in entries.flatten() {
                if let Err(e) = fs::remove_file(entry.path()) {
                    if e.kind() != io::ErrorKind::NotFound {
                        eprintln!(
                            "muds-serve: persist: tmp sweep of {} failed: {e} (continuing)",
                            entry.path().display()
                        );
                    }
                }
            }
        }
        Ok(Arc::new(Persist {
            tables_dir,
            results_dir,
            tmp_dir,
            manifest_path: root.join("manifest.json"),
            metrics,
            seq: AtomicU64::new(0),
            manifest_written: Mutex::new(0),
        }))
    }

    /// Atomic write: stage in `tmp/`, fsync the file, rename into place,
    /// fsync the parent dir (so the rename itself is durable).
    fn write_atomic(&self, final_path: &Path, bytes: &[u8]) -> io::Result<()> {
        let staged = self.tmp_dir.join(format!("{}.tmp", self.seq.fetch_add(1, Ordering::Relaxed)));
        let mut file = fs::File::create(&staged)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        if let Err(e) = fs::rename(&staged, final_path) {
            self.remove_quiet("staged-file cleanup", &staged);
            return Err(e);
        }
        if let Some(parent) = final_path.parent() {
            fs::File::open(parent)?.sync_all()?;
        }
        self.metrics.persist_writes.inc();
        Ok(())
    }

    fn report(&self, what: &str, path: &Path, err: &io::Error) {
        eprintln!("muds-serve: persist: {what} {} failed: {err} (continuing)", path.display());
    }

    /// Removes a file, reporting any failure except "already gone" —
    /// deletes race with crash-recovery sweeps, so `NotFound` is success.
    fn remove_quiet(&self, what: &str, path: &Path) {
        if let Err(e) = fs::remove_file(path) {
            if e.kind() != io::ErrorKind::NotFound {
                self.report(what, path, &e);
            }
        }
    }

    fn table_path(&self, fp: Fingerprint) -> PathBuf {
        self.tables_dir.join(format!("{fp}.csv"))
    }

    fn result_path(&self, key: &CacheKey) -> PathBuf {
        self.results_dir.join(format!(
            "{}-{}-{:016x}.json",
            key.fingerprint,
            key.algorithm.name(),
            fnv64(key.config.as_bytes())
        ))
    }

    /// Writes a table blob if it is not already on disk (content-addressed:
    /// same fingerprint, same bytes).
    pub fn store_table(&self, fp: Fingerprint, table: &Table) {
        let path = self.table_path(fp);
        if path.exists() {
            return;
        }
        let csv = table_to_csv(table, &CsvOptions::default());
        if let Err(e) = self.write_atomic(&path, csv.as_bytes()) {
            self.report("table write", &path, &e);
        }
    }

    /// Seeds the last-written manifest version (after recovery), so the
    /// recovered snapshot is not re-written and live mutations — which
    /// version above it — always supersede it.
    pub fn note_manifest_version(&self, version: u64) {
        let mut written = lock(&self.manifest_written);
        *written = (*written).max(version);
    }

    /// Writes the name → fingerprint manifest, unless a newer snapshot
    /// already landed (`version` is the registry's mutation counter).
    pub fn store_manifest(&self, version: u64, names: &BTreeMap<String, Fingerprint>) {
        let mut written = lock(&self.manifest_written);
        if version <= *written {
            return;
        }
        let mut doc = String::with_capacity(64 + names.len() * 64);
        doc.push_str("{\"version\":1,\"names\":{");
        for (i, (name, fp)) in names.iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(&json_string(name));
            doc.push_str(&format!(":\"{fp}\""));
        }
        doc.push_str("}}");
        let path = self.manifest_path.clone();
        match self.write_atomic(&path, doc.as_bytes()) {
            Ok(()) => *written = version,
            Err(e) => self.report("manifest write", &self.manifest_path, &e),
        }
    }

    /// Writes one Ready cache entry: a self-describing header line (the
    /// full cache key) followed by the cached payload, byte-identical to
    /// what hits serve.
    pub fn store_result(&self, key: &CacheKey, json: &str) {
        let path = self.result_path(key);
        let mut doc = String::with_capacity(json.len() + 128);
        doc.push_str(&format!(
            "{{\"fingerprint\":\"{}\",\"algorithm\":\"{}\",\"config\":{}}}\n",
            key.fingerprint,
            key.algorithm.name(),
            json_string(&key.config)
        ));
        doc.push_str(json);
        if let Err(e) = self.write_atomic(&path, doc.as_bytes()) {
            self.report("result write", &path, &e);
        }
    }

    /// Removes a persisted result (entry evicted or invalidated).
    pub fn remove_result(&self, key: &CacheKey) {
        self.remove_quiet("result remove", &self.result_path(key));
    }

    /// Files in `dir`, sorted by name for deterministic recovery order.
    fn sorted_entries(dir: &Path) -> Vec<PathBuf> {
        let mut entries: Vec<PathBuf> = match fs::read_dir(dir) {
            Ok(iter) => iter.flatten().map(|e| e.path()).collect(),
            Err(_) => Vec::new(),
        };
        entries.sort();
        entries
    }

    fn torn(&self, why: &str, path: &Path) {
        self.metrics.persist_torn_skipped.inc();
        eprintln!("muds-serve: persist: skipping {}: {why}", path.display());
        self.remove_quiet("torn-file remove", path);
    }

    /// Replays the data dir: validates every blob, drops torn or orphaned
    /// files, and returns what survived. Counters: each intact table and
    /// result increments `persist.recovered`; each damaged file increments
    /// `persist.torn_skipped` (and is deleted, so it cannot re-fail on the
    /// next boot).
    pub fn recover(&self) -> Recovered {
        let mut out = Recovered::default();

        for path in Self::sorted_entries(&self.tables_dir) {
            let Some(expected) = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_suffix(".csv"))
                .and_then(|n| n.parse::<Fingerprint>().ok())
            else {
                self.torn("not a <fingerprint>.csv file", &path);
                continue;
            };
            let Ok(bytes) = fs::read(&path) else {
                self.torn("unreadable", &path);
                continue;
            };
            let table =
                match table_from_csv_bytes(&expected.to_string(), &bytes, &CsvOptions::default()) {
                    Ok(table) => table,
                    Err(_) => {
                        self.torn("table blob does not parse as CSV", &path);
                        continue;
                    }
                };
            if fingerprint(&table) != expected {
                self.torn("table content does not match its fingerprint", &path);
                continue;
            }
            self.metrics.persist_recovered.inc();
            out.tables.push((expected, table));
        }

        if self.manifest_path.exists() {
            match fs::read_to_string(&self.manifest_path)
                .map_err(|e| e.to_string())
                .and_then(|text| parse_json(&text).map_err(|e| e.to_string()))
            {
                Ok(doc) => {
                    if let Some(JsonValue::Object(entries)) = doc.get("names") {
                        for (name, value) in entries {
                            let fp = value.as_str().and_then(|s| s.parse::<Fingerprint>().ok());
                            match fp {
                                // A binding is only as good as its blob: a
                                // name pointing at a missing or torn table
                                // is dropped (orphaned binding).
                                Some(fp) if out.tables.iter().any(|(t, _)| *t == fp) => {
                                    out.names.insert(name.clone(), fp);
                                }
                                _ => self.metrics.persist_torn_skipped.inc(),
                            }
                        }
                    }
                }
                // A torn manifest loses only the name bindings — every
                // blob is still content-addressed and re-registering the
                // same data lands on the same fingerprint.
                Err(_) => {
                    let path = self.manifest_path.clone();
                    self.torn("manifest does not parse", &path);
                }
            }
        }

        for path in Self::sorted_entries(&self.results_dir) {
            let Ok(text) = fs::read_to_string(&path) else {
                self.torn("unreadable", &path);
                continue;
            };
            let Some((header, payload)) = text.split_once('\n') else {
                self.torn("missing result header line", &path);
                continue;
            };
            let Some(key) = parse_json(header).ok().and_then(|doc| {
                Some(CacheKey {
                    fingerprint: doc.get("fingerprint")?.as_str()?.parse().ok()?,
                    algorithm: Algorithm::from_name(doc.get("algorithm")?.as_str()?)?,
                    config: doc.get("config")?.as_str()?.to_string(),
                })
            }) else {
                self.torn("result header does not parse", &path);
                continue;
            };
            // The filename is derived from the key; a mismatch means the
            // file was renamed or its header was corrupted in place.
            if self.result_path(&key) != path {
                self.torn("result header does not match its filename", &path);
                continue;
            }
            if muds_core::profile_from_json(payload).is_err() {
                self.torn("result payload does not parse", &path);
                continue;
            }
            self.metrics.persist_recovered.inc();
            out.results.push((key, payload.to_string()));
        }

        out
    }
}
