//! Content-addressed result cache with single-flight computation dedup.
//!
//! Results are keyed by `(dataset fingerprint, algorithm, config)` — the
//! full identity of a profiling run. Because the fingerprint addresses
//! *content*, two datasets registered under different names but identical
//! bytes share cache entries, and re-registering a dataset never invalidates
//! anything.
//!
//! The cache is also the daemon's computation-dedup point: the first
//! request for a missing key becomes the *leader* and is handed a
//! [`Flight`]; every concurrent request for the same key becomes a
//! *follower* that waits on the same flight. N identical concurrent
//! requests therefore cost exactly one profiling run, however they
//! interleave.
//!
//! Ready entries live in an LRU bounded by a byte budget over the stored
//! JSON documents. In-flight entries are never evicted (they hold no
//! payload), and a just-completed entry survives its own insertion even if
//! it alone exceeds the budget — the next completion will evict it.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use muds_core::Algorithm;
use muds_table::Fingerprint;

use crate::metrics::ServeMetrics;
use crate::persist::Persist;
use crate::sync::{cond_wait_timeout, lock};

/// Identity of one profiling computation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Content fingerprint of the (deduplicated) input table.
    pub fingerprint: Fingerprint,
    /// Algorithm that runs.
    pub algorithm: Algorithm,
    /// Canonical encoding of every result-affecting config knob
    /// ([`muds_core::ProfilerConfig::cache_key`]).
    pub config: String,
}

/// A computation in progress. Followers block on this (not on the cache
/// map), so an entry being evicted or replaced can never strand a waiter.
pub struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
    /// Scheduler job id, published by the leader after submission so
    /// followers can point clients at `GET /jobs/:id`. Zero = not yet
    /// submitted.
    job_id: std::sync::atomic::AtomicU64,
}

#[derive(Clone)]
enum FlightState {
    Pending,
    Done(Result<Arc<String>, Arc<String>>),
}

impl Flight {
    fn new() -> Arc<Flight> {
        Arc::new(Flight {
            state: Mutex::new(FlightState::Pending),
            done: Condvar::new(),
            job_id: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Publishes the scheduler job id executing this flight.
    pub fn set_job_id(&self, id: u64) {
        self.job_id.store(id, std::sync::atomic::Ordering::Release);
    }

    /// Job id executing this flight (`None` until the leader submitted).
    pub fn job_id(&self) -> Option<u64> {
        match self.job_id.load(std::sync::atomic::Ordering::Acquire) {
            0 => None,
            id => Some(id),
        }
    }

    /// Blocks until the flight resolves or `timeout` elapses. `None` means
    /// timeout — the computation keeps running and will land in the cache.
    pub fn wait(&self, timeout: Duration) -> Option<Result<Arc<String>, Arc<String>>> {
        let deadline = Instant::now() + timeout;
        let mut state = lock(&self.state);
        loop {
            if let FlightState::Done(outcome) = &*state {
                return Some(outcome.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, timed_out) = cond_wait_timeout(&self.done, state, deadline - now);
            state = next;
            if timed_out.timed_out() {
                if let FlightState::Done(outcome) = &*state {
                    return Some(outcome.clone());
                }
                return None;
            }
        }
    }

    fn resolve(&self, outcome: Result<Arc<String>, Arc<String>>) {
        let mut state = lock(&self.state);
        *state = FlightState::Done(outcome);
        self.done.notify_all();
    }
}

enum Slot {
    /// Computation running; requests coalesce onto the flight.
    InFlight(Arc<Flight>),
    /// Result cached. `stamp` is the LRU recency key.
    Ready { json: Arc<String>, stamp: u64 },
}

struct CacheInner {
    entries: HashMap<CacheKey, Slot>,
    /// Recency-ordered mirror of the Ready entries (stamps are unique).
    lru: BTreeMap<u64, CacheKey>,
    bytes: usize,
    tick: u64,
}

/// Outcome of [`ResultCache::begin`].
pub enum Begin {
    /// Cached result, served immediately.
    Hit(Arc<String>),
    /// Nothing cached or running: the caller owns the computation and must
    /// resolve the flight via [`ResultCache::complete`] or
    /// [`ResultCache::abort`] — on every path, or followers stall until
    /// their timeouts.
    Leader(Arc<Flight>),
    /// Someone else is computing this key; wait on the flight.
    Follower(Arc<Flight>),
}

/// The shared result cache. All methods are `&self`; one mutex guards the
/// map (held only for bookkeeping, never during computation or waits).
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    capacity_bytes: usize,
    metrics: Arc<ServeMetrics>,
    /// Write-through persistence (`--data-dir`); `None` = memory only.
    persist: Option<Arc<Persist>>,
}

impl ResultCache {
    pub fn new(capacity_bytes: usize, metrics: Arc<ServeMetrics>) -> Self {
        ResultCache::with_persist(capacity_bytes, metrics, None)
    }

    /// A cache that writes Ready entries through to disk and deletes their
    /// files when they are evicted or invalidated.
    pub fn with_persist(
        capacity_bytes: usize,
        metrics: Arc<ServeMetrics>,
        persist: Option<Arc<Persist>>,
    ) -> Self {
        ResultCache {
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                lru: BTreeMap::new(),
                bytes: 0,
                tick: 0,
            }),
            capacity_bytes,
            metrics,
            persist,
        }
    }

    /// Looks up `key`, claiming leadership of the computation on a miss.
    pub fn begin(&self, key: &CacheKey) -> Begin {
        let mut inner = lock(&self.inner);
        let inner = &mut *inner;
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(key) {
            Some(Slot::Ready { json, stamp }) => {
                let json = Arc::clone(json);
                let old = *stamp;
                *stamp = tick;
                inner.lru.remove(&old);
                inner.lru.insert(tick, key.clone());
                self.metrics.cache_hits.inc();
                Begin::Hit(json)
            }
            Some(Slot::InFlight(flight)) => {
                self.metrics.cache_coalesced.inc();
                Begin::Follower(Arc::clone(flight))
            }
            None => {
                let flight = Flight::new();
                inner.entries.insert(key.clone(), Slot::InFlight(Arc::clone(&flight)));
                self.metrics.cache_misses.inc();
                self.metrics.cache_entries.set(inner.entries.len() as i64);
                Begin::Leader(flight)
            }
        }
    }

    /// Inserts a Ready entry and applies the LRU budget, returning the
    /// victims (so the caller can delete their persisted files outside the
    /// lock). Never evicts the entry just inserted — its stamp is the
    /// newest.
    fn insert_ready(&self, key: &CacheKey, json: &Arc<String>) -> Vec<CacheKey> {
        let mut victims = Vec::new();
        let mut inner = lock(&self.inner);
        let inner = &mut *inner;
        inner.tick += 1;
        let tick = inner.tick;
        inner.bytes += json.len();
        inner.entries.insert(key.clone(), Slot::Ready { json: Arc::clone(json), stamp: tick });
        inner.lru.insert(tick, key.clone());
        while inner.bytes > self.capacity_bytes {
            let victim =
                inner.lru.iter().map(|(s, k)| (*s, k.clone())).find(|(stamp, _)| *stamp != tick);
            match victim {
                Some((stamp, victim_key)) => {
                    inner.lru.remove(&stamp);
                    if let Some(Slot::Ready { json, .. }) = inner.entries.remove(&victim_key) {
                        inner.bytes -= json.len();
                    }
                    self.metrics.cache_evictions.inc();
                    victims.push(victim_key);
                }
                None => break,
            }
        }
        self.metrics.cache_bytes.set(inner.bytes as i64);
        self.metrics.cache_entries.set(inner.entries.len() as i64);
        victims
    }

    /// Resolves a flight with a computed result and caches it. With
    /// persistence, the result document lands on disk *before* the entry
    /// becomes visible, so a crash right after completion still recovers
    /// it.
    pub fn complete(&self, key: &CacheKey, flight: &Arc<Flight>, json: Arc<String>) {
        if let Some(persist) = &self.persist {
            persist.store_result(key, &json);
        }
        let victims = self.insert_ready(key, &json);
        if let Some(persist) = &self.persist {
            for victim in &victims {
                persist.remove_result(victim);
            }
        }
        flight.resolve(Ok(json));
    }

    /// Re-inserts a recovered Ready entry without re-persisting it (its
    /// file already exists). Budget reconciliation still applies: entries
    /// that no longer fit are evicted and their files deleted.
    pub fn restore(&self, key: &CacheKey, json: String) {
        let json = Arc::new(json);
        let victims = self.insert_ready(key, &json);
        if let Some(persist) = &self.persist {
            for victim in &victims {
                persist.remove_result(victim);
            }
        }
    }

    /// Resolves a flight with an error; nothing is cached (the next request
    /// for the key becomes a fresh leader).
    pub fn abort(&self, key: &CacheKey, flight: &Arc<Flight>, error: &str) {
        {
            let mut inner = lock(&self.inner);
            // Only remove the slot if it is still this flight (a later
            // completion may have replaced it).
            if let Some(Slot::InFlight(current)) = inner.entries.get(key) {
                if Arc::ptr_eq(current, flight) {
                    inner.entries.remove(key);
                    self.metrics.cache_entries.set(inner.entries.len() as i64);
                }
            }
        }
        flight.resolve(Err(Arc::new(error.to_string())));
    }

    /// Surgically evicts every Ready entry for one dataset fingerprint —
    /// all `(fingerprint, algorithm, config)` combinations of that content,
    /// and nothing else. Entries for other fingerprints keep their LRU
    /// position and bytes. In-flight entries are left alone: their result
    /// is still correct for the old content (the cache is content-
    /// addressed), and removing the slot would orphan coalesced waiters.
    /// Returns the number of entries removed.
    pub fn evict_fingerprint(&self, fingerprint: Fingerprint) -> usize {
        let victims = {
            let mut inner = lock(&self.inner);
            let inner = &mut *inner;
            // lint:allow(hash-order): victim order cannot leak — every
            // victim is removed below, and counters/gauges are
            // order-insensitive.
            let victims: Vec<CacheKey> = inner
                .entries
                .iter()
                .filter(|(k, slot)| {
                    k.fingerprint == fingerprint && matches!(slot, Slot::Ready { .. })
                })
                .map(|(k, _)| k.clone())
                .collect();
            for key in &victims {
                if let Some(Slot::Ready { json, stamp }) = inner.entries.remove(key) {
                    inner.bytes -= json.len();
                    inner.lru.remove(&stamp);
                    self.metrics.cache_invalidated.inc();
                }
            }
            self.metrics.cache_bytes.set(inner.bytes as i64);
            self.metrics.cache_entries.set(inner.entries.len() as i64);
            victims
        };
        // File deletes outside the lock: surgical eviction on disk mirrors
        // the in-memory semantics (only the stale fingerprint's entries).
        if let Some(persist) = &self.persist {
            for victim in &victims {
                persist.remove_result(victim);
            }
        }
        victims.len()
    }

    /// Number of entries (Ready + in flight).
    pub fn len(&self) -> usize {
        lock(&self.inner).entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of cached JSON currently held.
    pub fn bytes(&self) -> usize {
        lock(&self.inner).bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    fn key(tag: u128) -> CacheKey {
        CacheKey { fingerprint: Fingerprint(tag), algorithm: Algorithm::Muds, config: "cfg".into() }
    }

    fn metrics() -> Arc<ServeMetrics> {
        Arc::new(ServeMetrics::new())
    }

    fn fill(cache: &ResultCache, k: &CacheKey, payload: &str) {
        match cache.begin(k) {
            Begin::Leader(flight) => cache.complete(k, &flight, Arc::new(payload.to_string())),
            _ => panic!("expected leadership for fresh key"),
        }
    }

    #[test]
    fn leader_computes_followers_share_hits_follow() {
        let m = metrics();
        let cache = ResultCache::new(1 << 20, Arc::clone(&m));
        let k = key(1);
        fill(&cache, &k, "result");
        match cache.begin(&k) {
            Begin::Hit(json) => assert_eq!(*json, "result"),
            _ => panic!("expected hit"),
        }
        assert_eq!(m.cache_misses.get(), 1);
        assert_eq!(m.cache_hits.get(), 1);
    }

    #[test]
    fn concurrent_identical_requests_coalesce_to_one_computation() {
        let m = metrics();
        let cache = Arc::new(ResultCache::new(1 << 20, Arc::clone(&m)));
        let k = key(7);
        let computations = AtomicUsize::new(0);
        const THREADS: usize = 16;
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    barrier.wait();
                    match cache.begin(&k) {
                        Begin::Leader(flight) => {
                            computations.fetch_add(1, Ordering::SeqCst);
                            // Linger so the other threads arrive mid-flight.
                            std::thread::sleep(Duration::from_millis(30));
                            cache.complete(&k, &flight, Arc::new("r".to_string()));
                        }
                        Begin::Follower(flight) => {
                            let got = flight
                                .wait(Duration::from_secs(10))
                                .expect("flight resolves")
                                .expect("flight succeeds");
                            assert_eq!(*got, "r");
                        }
                        Begin::Hit(json) => assert_eq!(*json, "r"),
                    }
                });
            }
        });
        assert_eq!(computations.load(Ordering::SeqCst), 1, "exactly one computation ran");
        assert_eq!(m.cache_misses.get(), 1);
        assert_eq!(m.cache_hits.get() + m.cache_coalesced.get(), (THREADS - 1) as u64);
    }

    #[test]
    fn lru_evicts_oldest_ready_entries_when_over_budget() {
        let m = metrics();
        // Budget fits two 10-byte payloads.
        let cache = ResultCache::new(20, Arc::clone(&m));
        let (a, b, c) = (key(1), key(2), key(3));
        fill(&cache, &a, "aaaaaaaaaa");
        fill(&cache, &b, "bbbbbbbbbb");
        // Touch `a` so `b` becomes the oldest.
        assert!(matches!(cache.begin(&a), Begin::Hit(_)));
        fill(&cache, &c, "cccccccccc");
        assert_eq!(m.cache_evictions.get(), 1);
        assert!(matches!(cache.begin(&a), Begin::Hit(_)), "recently used survives");
        assert!(matches!(cache.begin(&c), Begin::Hit(_)), "newest survives");
        assert!(matches!(cache.begin(&b), Begin::Leader(_)), "oldest was evicted");
        assert!(cache.bytes() <= 20 + 10, "budget respected (modulo the in-flight b)");
    }

    #[test]
    fn oversized_entry_survives_its_own_insertion() {
        let m = metrics();
        let cache = ResultCache::new(4, Arc::clone(&m));
        let k = key(9);
        fill(&cache, &k, "way-over-budget");
        assert!(matches!(cache.begin(&k), Begin::Hit(_)));
        // The next completion evicts it.
        let k2 = key(10);
        fill(&cache, &k2, "also-big");
        assert!(matches!(cache.begin(&k), Begin::Leader(_)));
    }

    /// Eviction by fingerprint removes every algorithm/config variant of
    /// that content and nothing else; in-flight slots survive.
    #[test]
    fn evict_fingerprint_is_surgical() {
        let m = metrics();
        let cache = ResultCache::new(1 << 20, Arc::clone(&m));
        let mut stale_muds = key(1);
        stale_muds.algorithm = Algorithm::Muds;
        let mut stale_tane = key(1);
        stale_tane.algorithm = Algorithm::Tane;
        let other = key(2);
        fill(&cache, &stale_muds, "m");
        fill(&cache, &stale_tane, "t");
        fill(&cache, &other, "other");
        // An in-flight variant of the stale fingerprint.
        let mut inflight = key(1);
        inflight.config = "other-cfg".into();
        let flight = match cache.begin(&inflight) {
            Begin::Leader(f) => f,
            _ => panic!("fresh key leads"),
        };
        assert_eq!(cache.evict_fingerprint(Fingerprint(1)), 2);
        assert_eq!(m.cache_invalidated.get(), 2);
        assert!(matches!(cache.begin(&stale_muds), Begin::Leader(_)), "stale muds gone");
        assert!(matches!(cache.begin(&other), Begin::Hit(_)), "other fingerprint survives");
        assert!(matches!(cache.begin(&inflight), Begin::Follower(_)), "in-flight survives");
        cache.abort(&inflight, &flight, "cleanup");
        assert_eq!(cache.bytes(), "other".len(), "bytes track the survivors");
    }

    #[test]
    fn aborted_flights_propagate_the_error_and_cache_nothing() {
        let m = metrics();
        let cache = Arc::new(ResultCache::new(1 << 20, m));
        let k = key(5);
        let flight = match cache.begin(&k) {
            Begin::Leader(f) => f,
            _ => panic!("leader expected"),
        };
        let follower = match cache.begin(&k) {
            Begin::Follower(f) => f,
            _ => panic!("follower expected"),
        };
        cache.abort(&k, &flight, "boom");
        let err = follower.wait(Duration::from_secs(1)).expect("resolved").unwrap_err();
        assert_eq!(*err, "boom");
        // The failure was not cached: a fresh request leads again.
        assert!(matches!(cache.begin(&k), Begin::Leader(_)));
    }

    #[test]
    fn wait_times_out_while_pending() {
        let cache = ResultCache::new(1 << 20, metrics());
        let k = key(6);
        let flight = match cache.begin(&k) {
            Begin::Leader(f) => f,
            _ => panic!("leader expected"),
        };
        assert!(flight.wait(Duration::from_millis(20)).is_none());
        cache.complete(&k, &flight, Arc::new("late".to_string()));
        assert!(flight.wait(Duration::from_millis(1)).is_some());
    }
}
