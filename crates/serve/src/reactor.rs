//! Nonblocking epoll reactor (Linux): connection scalability without a
//! thread per connection.
//!
//! The legacy accept loop spawns one OS thread per connection, so 10k
//! idle keep-alive clients cost 10k stacks. This reactor owns *all*
//! sockets on one thread behind `epoll`: read/write readiness and request
//! framing happen here, and only *complete* requests are handed to a
//! small fixed pool of handler threads (which route, wait on scheduler
//! flights, and push serialized responses back). Idle connections cost a
//! file descriptor and a small buffer — nothing else.
//!
//! The epoll calls go through a raw `extern "C"` shim (std already links
//! libc; the same philosophy as the `signal(2)` latch in `server.rs` and
//! the vendored-rayon subset: no new dependencies for three syscalls).
//!
//! # Connection state machine
//!
//! ```text
//! Reading ──complete request──▶ Handling ──response──▶ Writing
//!    ▲                          (EPOLLIN off: kernel      │
//!    │                           backpressure bounds      │
//!    └────────keep-alive────────pipelined bytes)──────────┘
//! ```
//!
//! One request is in flight per connection at a time. While a request is
//! being handled the connection's read interest is dropped, so a client
//! that pipelines aggressively is throttled by the kernel's receive
//! buffer, not by server memory.
//!
//! Framing-level rejections (oversized body, malformed head, request
//! timeout) answer and then *close* the connection: the request's unread
//! body bytes are still in flight, and parsing them as the next
//! request's start-line would desync the stream. Routed requests are
//! always fully framed first — their body is consumed — so keep-alive
//! reuse after any routed response (including 4xx/5xx) is safe.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::http::{parse_buffered, Framed, HttpError, Request, Response};
use crate::server::{respond, ServerState};
use crate::sync::{cond_wait, lock};

/// Handler threads routing complete requests. A small fixed pool: routing
/// is cheap (profiling runs on the scheduler's own workers), the pool only
/// bounds how many requests can concurrently *wait* on scheduler flights.
const HANDLER_THREADS: usize = 8;

/// How long a connection may sit on a partial request head/body before it
/// is answered 408 and closed (slowloris guard). Idle keep-alive
/// connections with *no* buffered bytes are not reaped.
const PARTIAL_REQUEST_TIMEOUT: Duration = Duration::from_secs(10);

/// epoll_wait tick: bounds shutdown-flag latency.
const WAIT_TICK_MS: i32 = 50;

// --- raw epoll shim -------------------------------------------------------

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// Mirror of `struct epoll_event`. The kernel ABI packs it on x86-64
/// (12 bytes); other architectures use natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// Owned epoll instance. All `unsafe` in this module is confined here.
struct Epoll {
    fd: i32,
}

impl Epoll {
    fn new() -> io::Result<Epoll> {
        // SAFETY: `epoll_create1(2)` is linked by std on Linux and the
        // declared signature matches libc's. It touches no memory of ours;
        // the returned fd (or -1) is validated below.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token };
        // SAFETY: `ev` is a live, writable `epoll_event`-layout struct for
        // the duration of the call; `self.fd` is a valid epoll fd for the
        // lifetime of this struct; the signature matches libc's.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    fn modify(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    fn del(&self, fd: i32) {
        // A pre-2.6.9 kernel quirk requires a non-null event even for DEL;
        // passing one is always valid.
        // lint:allow(swallowed-result): DEL on a closing fd can only fail
        // with ENOENT/EBADF, both of which mean "already deregistered".
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Waits up to `timeout_ms`; EINTR reads as an empty wakeup.
    fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let max = events.len() as i32;
        // SAFETY: `events` is a live, writable slice of `epoll_event`-layout
        // structs and `max` is exactly its length, so the kernel writes only
        // within bounds; the signature matches libc's.
        let rc = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), max, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(rc as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is a valid fd owned exclusively by this
        // struct; nothing uses it after drop.
        unsafe {
            close(self.fd);
        }
    }
}

// --- handler pool ---------------------------------------------------------

struct Dispatch {
    token: u64,
    request: Request,
}

struct Completion {
    token: u64,
    bytes: Vec<u8>,
    close_after: bool,
}

/// Shared between the reactor thread and the handler pool.
struct HandlerShared {
    queue: Mutex<VecDeque<Dispatch>>,
    wake: Condvar,
    completions: Mutex<Vec<Completion>>,
    /// Write half of the waker pair: one byte per completion batch nudges
    /// the reactor out of `epoll_wait`.
    waker_tx: UnixStream,
    shutdown: AtomicBool,
}

impl HandlerShared {
    fn push_completion(&self, completion: Completion) {
        lock(&self.completions).push(completion);
        // A full pipe means a wakeup is already pending; dropping the
        // byte is correct.
        // lint:allow(swallowed-result): WouldBlock = wakeup already queued;
        // any other failure still resolves via the reactor's idle tick.
        let _ = (&self.waker_tx).write(&[1u8]);
    }
}

/// Joinable handle on the handler pool. `Server::run` joins it *after*
/// `Scheduler::shutdown()`, which resolves every flight a handler could
/// still be waiting on.
pub(crate) struct HandlerPool {
    shared: Arc<HandlerShared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl HandlerPool {
    pub(crate) fn shutdown_join(self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake.notify_all();
        for thread in self.threads {
            // lint:allow(swallowed-result): a handler that panicked has
            // already printed its panic; teardown must still join the rest.
            let _ = thread.join();
        }
    }
}

fn handler_loop(state: Arc<ServerState>, shared: Arc<HandlerShared>) {
    loop {
        let dispatch = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(dispatch) = queue.pop_front() {
                    break dispatch;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = cond_wait(&shared.wake, queue);
            }
        };
        let keep_alive = dispatch.request.keep_alive;
        let response = respond(&state, &dispatch.request);
        shared.push_completion(Completion {
            token: dispatch.token,
            bytes: response.to_bytes(keep_alive),
            close_after: !keep_alive,
        });
    }
}

// --- connection state -----------------------------------------------------

#[derive(PartialEq, Eq, Clone, Copy)]
enum Phase {
    /// Waiting for (more of) a request.
    Reading,
    /// A complete request is with the handler pool; read interest is off.
    Handling,
    /// Flushing a response.
    Writing,
}

struct Conn {
    stream: TcpStream,
    /// Buffered request bytes not yet consumed by the parser.
    buf: Vec<u8>,
    out: Vec<u8>,
    out_pos: usize,
    phase: Phase,
    /// Close once the staged response is flushed (framing error, client
    /// asked, or the peer already half-closed).
    close_after_write: bool,
    /// Events currently registered with epoll.
    interest: u32,
    /// Peer sent EOF; no more request bytes will arrive.
    peer_closed: bool,
    last_activity: Instant,
}

const LISTENER_TOKEN: u64 = 0;
const WAKER_TOKEN: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

struct Reactor {
    epoll: Epoll,
    listener: TcpListener,
    waker_rx: UnixStream,
    state: Arc<ServerState>,
    shared: Arc<HandlerShared>,
    conns: BTreeMap<u64, Conn>,
    next_token: u64,
    last_sweep: Instant,
}

/// Runs the reactor until shutdown, then drains in-flight responses.
/// Returns the handler pool for the caller to join once the scheduler has
/// resolved every outstanding flight.
pub(crate) fn run(listener: TcpListener, state: Arc<ServerState>) -> io::Result<HandlerPool> {
    listener.set_nonblocking(true)?;
    let (waker_rx, waker_tx) = UnixStream::pair()?;
    waker_rx.set_nonblocking(true)?;
    waker_tx.set_nonblocking(true)?;

    let shared = Arc::new(HandlerShared {
        queue: Mutex::new(VecDeque::new()),
        wake: Condvar::new(),
        completions: Mutex::new(Vec::new()),
        waker_tx,
        shutdown: AtomicBool::new(false),
    });
    let mut threads = Vec::with_capacity(HANDLER_THREADS);
    for i in 0..HANDLER_THREADS {
        let state = Arc::clone(&state);
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("muds-serve-http-{i}"))
                .spawn(move || handler_loop(state, shared))?,
        );
    }
    let pool = HandlerPool { shared: Arc::clone(&shared), threads };

    let epoll = Epoll::new()?;
    epoll.add(listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN)?;
    epoll.add(waker_rx.as_raw_fd(), EPOLLIN, WAKER_TOKEN)?;
    let mut reactor = Reactor {
        epoll,
        listener,
        waker_rx,
        state,
        shared,
        conns: BTreeMap::new(),
        next_token: FIRST_CONN_TOKEN,
        last_sweep: Instant::now(),
    };
    reactor.serve()?;
    Ok(pool)
}

impl Reactor {
    fn serve(&mut self) -> io::Result<()> {
        let mut events = [EpollEvent { events: 0, data: 0 }; 256];
        while !self.state.shutting_down() {
            let n = self.epoll.wait(&mut events, WAIT_TICK_MS)?;
            for ev in &events[..n] {
                // Copies out of the (possibly packed) event struct; no
                // references into it are formed.
                let token = ev.data;
                let revents = ev.events;
                match token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKER_TOKEN => self.drain_waker(),
                    _ => self.conn_ready(token, revents),
                }
            }
            self.apply_completions();
            self.sweep_partial_requests();
        }
        self.drain();
        Ok(())
    }

    /// Post-shutdown drain: stop accepting, drop idle connections, give
    /// in-flight requests up to 5 s to flush their responses.
    fn drain(&mut self) {
        self.epoll.del(self.listener.as_raw_fd());
        let idle: Vec<u64> =
            self.conns.iter().filter(|(_, c)| c.phase == Phase::Reading).map(|(t, _)| *t).collect();
        for token in idle {
            self.close_conn(token);
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut events = [EpollEvent { events: 0, data: 0 }; 256];
        while !self.conns.is_empty() && Instant::now() < deadline {
            let n = match self.epoll.wait(&mut events, WAIT_TICK_MS) {
                Ok(n) => n,
                Err(_) => break,
            };
            for ev in &events[..n] {
                let token = ev.data;
                let revents = ev.events;
                match token {
                    LISTENER_TOKEN => {}
                    WAKER_TOKEN => self.drain_waker(),
                    _ => self.conn_ready(token, revents),
                }
            }
            self.apply_completions();
            // Responses finished during drain leave Reading connections
            // behind; close them instead of serving another request.
            let finished: Vec<u64> = self
                .conns
                .iter()
                .filter(|(_, c)| c.phase == Phase::Reading)
                .map(|(t, _)| *t)
                .collect();
            for token in finished {
                self.close_conn(token);
            }
        }
        let leftover: Vec<u64> = self.conns.keys().copied().collect();
        for token in leftover {
            self.close_conn(token);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => self.admit(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient per-connection accept failures (ECONNABORTED
                // and friends) must not kill the reactor.
                Err(_) => break,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        if self.conns.len() >= self.state.config.max_connections {
            // Single non-blocking write attempt of the 503: the socket
            // buffer of a fresh connection almost always has room, and a
            // client whose buffer is already full doesn't get to stall
            // the event loop for its error message.
            let bytes = Response::error(503, "connection limit reached").to_bytes(false);
            // lint:allow(swallowed-result): best-effort courtesy reply on
            // a connection being dropped anyway; the close conveys it.
            let _ = (&stream).write(&bytes);
            self.state.metrics.count_response(503);
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        let interest = EPOLLIN | EPOLLRDHUP;
        if self.epoll.add(stream.as_raw_fd(), interest, token).is_err() {
            return;
        }
        self.conns.insert(
            token,
            Conn {
                stream,
                buf: Vec::new(),
                out: Vec::new(),
                out_pos: 0,
                phase: Phase::Reading,
                close_after_write: false,
                interest,
                peer_closed: false,
                last_activity: Instant::now(),
            },
        );
        self.state.metrics.connections_active.fetch_add(1, Ordering::AcqRel);
        self.state.metrics.reactor_connections.set(self.conns.len() as i64);
    }

    fn drain_waker(&mut self) {
        let mut sink = [0u8; 64];
        while matches!((&self.waker_rx).read(&mut sink), Ok(n) if n > 0) {}
    }

    fn conn_ready(&mut self, token: u64, revents: u32) {
        if !self.conns.contains_key(&token) {
            return;
        }
        if revents & (EPOLLERR | EPOLLHUP) != 0 {
            // Socket error or both halves gone: nothing useful can be
            // read or written anymore.
            self.close_conn(token);
            return;
        }
        if revents & (EPOLLIN | EPOLLRDHUP) != 0 {
            self.readable(token);
        }
        if revents & EPOLLOUT != 0 {
            self.writable(token);
        }
    }

    fn readable(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.buf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        self.advance(token);
    }

    /// Tries to frame one request out of the connection's buffer and move
    /// the state machine forward.
    fn advance(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if conn.phase != Phase::Reading {
            return;
        }
        match parse_buffered(&conn.buf, self.state.config.max_body) {
            Ok(Framed::Complete { request, consumed }) => {
                conn.buf.drain(..consumed);
                conn.phase = Phase::Handling;
                // If the peer already half-closed, this response is the
                // last one regardless of keep-alive.
                // Read interest off while the request is in flight: one
                // request per connection at a time, pipelined bytes wait
                // in the kernel's receive buffer.
                self.set_interest(token, EPOLLRDHUP);
                {
                    let mut queue = lock(&self.shared.queue);
                    queue.push_back(Dispatch { token, request });
                }
                self.shared.wake.notify_one();
            }
            Ok(Framed::NeedMore) => {
                if conn.peer_closed {
                    if conn.buf.is_empty() {
                        // Clean keep-alive close between requests.
                        self.close_conn(token);
                    } else {
                        let truncated = HttpError::BadRequest("truncated request".to_string());
                        self.reject(token, &truncated);
                    }
                }
            }
            Err(e) => self.reject(token, &e),
        }
    }

    /// Answers a framing-level error and closes the connection once the
    /// response flushes — unread request bytes may still be in flight, so
    /// the stream cannot be reused (leftover body bytes would parse as
    /// the next request's start-line).
    fn reject(&mut self, token: u64, error: &HttpError) {
        let response = Response::error(error.status(), &error.to_string());
        self.state.metrics.count_response(response.status);
        self.stage_response(token, response.to_bytes(false), true);
    }

    fn stage_response(&mut self, token: u64, bytes: Vec<u8>, close_after: bool) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        conn.out = bytes;
        conn.out_pos = 0;
        conn.phase = Phase::Writing;
        conn.close_after_write = close_after || conn.peer_closed;
        self.writable(token);
    }

    fn writable(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if conn.phase != Phase::Writing {
            return;
        }
        loop {
            if conn.out_pos == conn.out.len() {
                self.finish_response(token);
                return;
            }
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    self.close_conn(token);
                    return;
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.set_interest(token, EPOLLOUT | EPOLLRDHUP);
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
    }

    fn finish_response(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if conn.close_after_write {
            self.close_conn(token);
            return;
        }
        conn.out = Vec::new();
        conn.out_pos = 0;
        conn.phase = Phase::Reading;
        conn.last_activity = Instant::now();
        self.set_interest(token, EPOLLIN | EPOLLRDHUP);
        // A pipelined successor may already be buffered; frame it now
        // rather than waiting for more bytes to arrive.
        self.advance(token);
    }

    fn set_interest(&mut self, token: u64, events: u32) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if conn.interest == events {
            return;
        }
        conn.interest = events;
        if let Err(e) = self.epoll.modify(conn.stream.as_raw_fd(), events, token) {
            // A connection we can no longer watch is a connection we can
            // no longer serve: drop it rather than let it hang silently.
            eprintln!("muds-serve: epoll modify failed for token {token}: {e}; closing");
            self.close_conn(token);
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.epoll.del(conn.stream.as_raw_fd());
            self.state.metrics.connections_active.fetch_sub(1, Ordering::AcqRel);
            self.state.metrics.reactor_connections.set(self.conns.len() as i64);
        }
    }

    /// Reaps connections stuck mid-request (slowloris): a partial head or
    /// body older than the timeout answers 408 and closes. Runs at most
    /// once a second; purely idle keep-alive connections are untouched.
    fn sweep_partial_requests(&mut self) {
        if self.last_sweep.elapsed() < Duration::from_secs(1) {
            return;
        }
        self.last_sweep = Instant::now();
        let stale: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.phase == Phase::Reading
                    && !c.buf.is_empty()
                    && c.last_activity.elapsed() > PARTIAL_REQUEST_TIMEOUT
            })
            .map(|(t, _)| *t)
            .collect();
        for token in stale {
            let timeout =
                HttpError::Io(io::Error::new(io::ErrorKind::TimedOut, "request timed out"));
            self.reject(token, &timeout);
        }
    }

    fn apply_completions(&mut self) {
        let completions: Vec<Completion> = {
            let mut pending = lock(&self.shared.completions);
            std::mem::take(&mut *pending)
        };
        for completion in completions {
            // The connection may have died (EPOLLERR) while its request
            // was being handled; the response is simply dropped.
            self.stage_response(completion.token, completion.bytes, completion.close_after);
        }
    }
}
