//! The daemon: TCP accept loop, request routing, and graceful shutdown.
//!
//! # Endpoints
//!
//! | Method | Path          | Purpose |
//! |--------|---------------|---------|
//! | POST   | `/datasets`   | Register a dataset (JSON `{"name","path"}` or an uploaded CSV body with `?name=`) |
//! | GET    | `/datasets`   | List registered datasets |
//! | POST   | `/profile`    | Run (or fetch) a profiling job: `{"dataset","algorithm","timeout_ms"?}` |
//! | GET    | `/jobs/:id`   | Job status |
//! | GET    | `/metrics`    | Cumulative server counters |
//! | GET    | `/healthz`    | Liveness |
//! | POST   | `/shutdown`   | Graceful shutdown (same path SIGTERM takes) |
//!
//! `POST /profile` semantics: cache hit → `200` immediately (`X-Cache:
//! hit`); miss → the request waits up to its timeout for the job, then
//! either `200` (`X-Cache: miss` for the leader, `coalesced` for requests
//! that joined an in-flight run) or `202` with the job id; full queue →
//! `429` with `Retry-After`.
//!
//! Shutdown (SIGTERM, or `POST /shutdown`) stops the accept loop, lets
//! in-flight connections finish, then drains the job queue and joins the
//! scheduler workers before `run()` returns.

use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use muds_core::json::{json_string, parse_json, JsonValue};
use muds_core::{Algorithm, ProfilerConfig};
use muds_table::CsvOptions;

use muds_table::TableDelta;

use crate::cache::{Begin, CacheKey, ResultCache};
use crate::http::{Request, Response};
use crate::metrics::ServeMetrics;
use crate::persist::Persist;
use crate::registry::{DatasetInfo, Registry};
use crate::scheduler::{retry_after_secs, JobSpec, JobStatus, Scheduler};

/// Server tunables. `ServeConfig::default()` matches the CLI defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7171` (port 0 picks an ephemeral one).
    pub addr: String,
    /// Scheduler worker threads (0 = available parallelism, capped at 4).
    pub workers: usize,
    /// Bounded job-queue capacity; overflow answers 429.
    pub queue_capacity: usize,
    /// Result-cache byte budget over the stored JSON documents.
    pub cache_capacity: usize,
    /// How long `POST /profile` waits for a result before answering 202.
    /// Also the queued-job expiry deadline. Overridable per request.
    pub default_timeout: Duration,
    /// Largest accepted request body (CSV uploads).
    pub max_body: usize,
    /// Concurrent connection cap; overflow answers 503.
    pub max_connections: usize,
    /// When set, the dataset registry and Ready result-cache entries write
    /// through to this directory and are replayed on restart (§14).
    pub data_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7171".to_string(),
            workers: 0,
            queue_capacity: 128,
            cache_capacity: 64 << 20,
            default_timeout: Duration::from_secs(30),
            max_body: 64 << 20,
            max_connections: 256,
            data_dir: None,
        }
    }
}

/// Shared state behind every connection handler.
pub struct ServerState {
    pub registry: Registry,
    pub cache: Arc<ResultCache>,
    pub scheduler: Scheduler,
    pub metrics: Arc<ServeMetrics>,
    pub(crate) config: ServeConfig,
    shutdown: AtomicBool,
    /// Sequence for server-minted trace ids.
    trace_seq: AtomicU64,
}

impl ServerState {
    /// The trace id for one request: a sanitized `X-Muds-Trace` header if
    /// the client sent one (distributed callers propagate their own ids),
    /// otherwise a fresh `muds-<n>` id. Every response echoes it back.
    fn trace_for(&self, request: &Request) -> String {
        let propagated =
            request.header("x-muds-trace").map(sanitize_trace_id).filter(|t| !t.is_empty());
        match propagated {
            Some(trace) => {
                self.metrics.trace_ids_propagated.inc();
                trace
            }
            None => {
                self.metrics.trace_ids_generated.inc();
                let seq = self.trace_seq.fetch_add(1, Ordering::Relaxed) + 1;
                format!("muds-{seq:08x}")
            }
        }
    }
    /// Requests shutdown: the accept loop exits on its next poll tick.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire) || sigterm_received()
    }
}

/// Process-wide SIGTERM/SIGINT latch. A signal handler may only touch
/// static atomics, so this cannot live in per-server state; the accept
/// loop ORs it with the server's own flag.
static TERM_FLAG: AtomicBool = AtomicBool::new(false);

fn sigterm_received() -> bool {
    TERM_FLAG.load(Ordering::Acquire)
}

/// Installs SIGTERM/SIGINT handlers that set [`TERM_FLAG`]. std already
/// links libc on unix, so the two symbols are declared directly instead of
/// pulling in a crate.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_term(_signum: i32) {
        TERM_FLAG.store(true, Ordering::Release);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `signal(2)` is linked by std on every unix target, and the
    // declared signature matches libc's. `on_term` is async-signal-safe:
    // it performs a single store to a static `AtomicBool` (lock-free on
    // all supported targets) and touches no allocator, lock, or errno.
    // The `Release` store pairs with the `Acquire` load in
    // `sigterm_received`, so the accept loop observes the latch.
    unsafe {
        signal(SIGTERM, on_term);
        signal(SIGINT, on_term);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener and spins up the scheduler; `run()` starts
    /// serving.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let metrics = Arc::new(ServeMetrics::new());
        let persist = match &config.data_dir {
            Some(dir) => Some(Persist::open(dir, Arc::clone(&metrics))?),
            None => None,
        };
        let cache = Arc::new(ResultCache::with_persist(
            config.cache_capacity,
            Arc::clone(&metrics),
            persist.clone(),
        ));
        let registry = match &persist {
            Some(persist) => Registry::with_persist(Arc::clone(persist)),
            None => Registry::new(),
        };
        if let Some(persist) = &persist {
            // Replay what survived the last process: intact table blobs,
            // the manifest's name bindings, and Ready cache entries. Torn
            // or orphaned files were counted and skipped by `recover`.
            let recovered = persist.recover();
            registry.restore(recovered.tables, recovered.names);
            for (key, json) in recovered.results {
                cache.restore(&key, json);
            }
            metrics.datasets.set(registry.names_len() as i64);
        }
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).min(4)
        } else {
            config.workers
        };
        let scheduler = Scheduler::new(
            workers,
            config.queue_capacity,
            Arc::clone(&cache),
            Arc::clone(&metrics),
        )?;
        let state = Arc::new(ServerState {
            registry,
            cache,
            scheduler,
            metrics,
            config,
            shutdown: AtomicBool::new(false),
            trace_seq: AtomicU64::new(0),
        });
        Ok(Server { listener, state })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Shared state handle — lets embedders (tests, the CLI) request
    /// shutdown or read metrics while `run()` owns the server.
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Serves until shutdown is requested (SIGTERM, SIGINT, `POST
    /// /shutdown`, or [`ServerState::request_shutdown`]), then drains:
    /// in-flight connections get 5 s to finish, queued jobs run to
    /// completion, workers are joined.
    pub fn run(self) -> std::io::Result<()> {
        install_signal_handlers();
        #[cfg(target_os = "linux")]
        {
            // Epoll reactor: all sockets on one thread, complete requests
            // handed to a small fixed handler pool. Joined only after the
            // scheduler shut down (which resolves every flight a handler
            // could still be blocked on).
            let pool = crate::reactor::run(self.listener, Arc::clone(&self.state))?;
            self.state.scheduler.shutdown();
            pool.shutdown_join();
            Ok(())
        }
        #[cfg(not(target_os = "linux"))]
        {
            self.run_thread_per_connection()
        }
    }

    /// Portable fallback: one thread per connection, `Connection: close`
    /// after every response.
    #[cfg(not(target_os = "linux"))]
    fn run_thread_per_connection(self) -> std::io::Result<()> {
        // Non-blocking accept so the loop can poll the shutdown flags; a
        // signal handler cannot wake a blocking accept portably.
        self.listener.set_nonblocking(true)?;
        while !self.state.shutting_down() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let active =
                        self.state.metrics.connections_active.fetch_add(1, Ordering::AcqRel) + 1;
                    if active as usize > self.state.config.max_connections {
                        self.state.metrics.connections_active.fetch_sub(1, Ordering::AcqRel);
                        // lint:allow(swallowed-result): best-effort courtesy
                        // reply on a connection being dropped anyway.
                        let _ =
                            Response::error(503, "connection limit reached").write_to(&mut &stream);
                        self.state.metrics.count_response(503);
                        continue;
                    }
                    let state = Arc::clone(&self.state);
                    let spawned = std::thread::Builder::new()
                        .name("muds-serve-conn".to_string())
                        .spawn(move || {
                            handle_connection(&state, stream);
                            state.metrics.connections_active.fetch_sub(1, Ordering::AcqRel);
                        });
                    if spawned.is_err() {
                        self.state.metrics.connections_active.fetch_sub(1, Ordering::AcqRel);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Drain: connections first (they may still enqueue responses), then
        // the job queue.
        let drain_deadline = Instant::now() + Duration::from_secs(5);
        while self.state.metrics.connections_active.load(Ordering::Acquire) > 0
            && Instant::now() < drain_deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        self.state.scheduler.shutdown();
        Ok(())
    }
}

/// Routes one parsed request and accounts for it: the shared tail of both
/// front-ends (the epoll reactor's handler pool and the thread-per-
/// connection fallback).
pub(crate) fn respond(state: &ServerState, request: &Request) -> Response {
    state.metrics.requests.inc();
    let trace = state.trace_for(request);
    let response = route(state, request, &trace).with_header("X-Muds-Trace", &trace);
    state.metrics.count_response(response.status);
    response
}

#[cfg(not(target_os = "linux"))]
fn handle_connection(state: &ServerState, mut stream: std::net::TcpStream) {
    use crate::http::HttpError;
    use std::io::Write;
    // lint:allow(swallowed-result): a socket that rejects timeouts still
    // serves; the slowloris sweep is the reactor path's job, not this
    // fallback's.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let request = match crate::http::read_request(&mut stream, state.config.max_body) {
        Ok(request) => request,
        Err(HttpError::Closed) => return,
        Err(e) => {
            let response = Response::error(e.status(), &e.to_string());
            state.metrics.count_response(response.status);
            // lint:allow(swallowed-result): the client that sent a broken
            // request may already be gone; nothing to do about it here.
            let _ = response.write_to(&mut stream);
            return;
        }
    };
    let response = respond(state, &request);
    // lint:allow(swallowed-result): a write/flush failure means the client
    // hung up mid-response — this per-connection thread just ends.
    let _ = response.write_to(&mut stream);
    // lint:allow(swallowed-result): same as the write above.
    let _ = stream.flush();
}

/// Keeps a client-supplied trace id header-safe: visible ASCII from a
/// conservative alphabet, capped at 64 chars. Everything else is dropped
/// (an all-hostile header degenerates to empty → a server-minted id).
fn sanitize_trace_id(raw: &str) -> String {
    raw.chars()
        .filter(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | ':'))
        .take(64)
        .collect()
}

fn route(state: &ServerState, request: &Request, trace: &str) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::json(200, "{\"status\":\"ok\"}".to_string()),
        ("GET", "/metrics") => match request.query_param("format") {
            Some("prom") => Response {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                headers: Vec::new(),
                body: state.metrics.to_prometheus().into_bytes(),
            },
            Some(other) => Response::error(400, &format!("unknown metrics format {other:?}")),
            None => Response::json(200, state.metrics.to_json()),
        },
        ("GET", "/datasets") => list_datasets(state),
        ("POST", "/datasets") => register_dataset(state, request),
        ("POST", path) if path.starts_with("/datasets/") && path.ends_with("/append") => {
            let name = &path["/datasets/".len()..path.len() - "/append".len()];
            append_dataset(state, name, request)
        }
        ("POST", path) if path.starts_with("/datasets/") && path.ends_with("/delete") => {
            let name = &path["/datasets/".len()..path.len() - "/delete".len()];
            delete_rows(state, name, request)
        }
        ("POST", "/profile") => profile_endpoint(state, request, trace),
        ("GET", path) if path.starts_with("/jobs/") => job_status(state, &path["/jobs/".len()..]),
        ("POST", "/shutdown") => {
            state.request_shutdown();
            Response::json(200, "{\"status\":\"shutting down\"}".to_string())
        }
        ("GET" | "POST", _) => Response::error(404, "no such endpoint"),
        _ => Response::error(405, "method not allowed"),
    }
}

fn dataset_info_json(info: &DatasetInfo) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"name\":");
    out.push_str(&json_string(&info.name));
    out.push_str(&format!(",\"fingerprint\":\"{}\"", info.fingerprint));
    out.push_str(",\"columns\":[");
    for (i, c) in info.columns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(c));
    }
    out.push_str(&format!(
        "],\"rows\":{},\"rows_deduplicated\":{},\"already_registered\":{}}}",
        info.rows, info.rows_deduplicated, info.already_registered
    ));
    out
}

fn list_datasets(state: &ServerState) -> Response {
    let mut out = String::from("{\"datasets\":[");
    for (i, (name, fp, rows, columns)) in state.registry.list().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":{},\"fingerprint\":\"{}\",\"rows\":{},\"columns\":{}}}",
            json_string(name),
            fp,
            rows,
            columns
        ));
    }
    out.push_str("]}");
    Response::json(200, out)
}

fn register_dataset(state: &ServerState, request: &Request) -> Response {
    let content_type = request.header("content-type").unwrap_or("");
    let registered = if content_type.starts_with("application/json") {
        // {"name": ..., "path": ...}: load a CSV file server-side.
        let body = match std::str::from_utf8(&request.body) {
            Ok(body) => body,
            Err(_) => return Response::error(400, "request body is not UTF-8"),
        };
        let doc = match parse_json(body) {
            Ok(doc) => doc,
            Err(e) => return Response::error(400, &format!("invalid JSON body: {e}")),
        };
        let Some(path) = doc.get("path").and_then(JsonValue::as_str) else {
            return Response::error(400, "JSON registration requires a \"path\" string");
        };
        let name =
            doc.get("name").and_then(JsonValue::as_str).map(|s| s.to_string()).unwrap_or_else(
                || {
                    std::path::Path::new(path)
                        .file_stem()
                        .and_then(|s| s.to_str())
                        .unwrap_or("dataset")
                        .to_string()
                },
            );
        state.registry.register_csv_path(&name, path, &CsvOptions::default())
    } else {
        // Anything else is an uploaded CSV body; name comes from the query.
        let Some(name) = request.query_param("name").map(|s| s.to_string()) else {
            return Response::error(400, "CSV upload requires ?name=<dataset-name>");
        };
        if name.is_empty() {
            return Response::error(400, "dataset name must not be empty");
        }
        state.registry.register_csv_bytes(&name, &request.body, &CsvOptions::default())
    };
    match registered {
        Ok(info) => {
            state.metrics.datasets.set(state.registry.names_len() as i64);
            Response::json(201, dataset_info_json(&info))
        }
        Err(e) => Response::error(400, &format!("registration failed: {e}")),
    }
}

/// Shared tail of the append/delete endpoints: apply the delta through the
/// registry, then surgically evict exactly the stale cache identity — every
/// `(old fingerprint, algorithm, config)` entry and nothing else. Results
/// for other datasets (and other fingerprints of this one) stay cached.
fn apply_dataset_delta(state: &ServerState, name: &str, delta: &TableDelta) -> Response {
    let applied = match state.registry.apply_delta(name, delta) {
        Ok(Some(applied)) => applied,
        Ok(None) => return Response::error(404, &format!("dataset {name:?} is not registered")),
        Err(e) => return Response::error(400, &format!("delta rejected: {e}")),
    };
    state.metrics.deltas_applied.inc();
    // An identity delta (empty append, every appended row a duplicate)
    // keeps the fingerprint, so nothing in the cache went stale.
    let evicted = if applied.info.fingerprint == applied.old_fingerprint {
        0
    } else {
        state.cache.evict_fingerprint(applied.old_fingerprint)
    };
    let mut out = String::with_capacity(256);
    out.push_str("{\"dataset\":");
    out.push_str(&json_string(&applied.info.name));
    out.push_str(&format!(
        ",\"fingerprint\":\"{}\",\"previous_fingerprint\":\"{}\"",
        applied.info.fingerprint, applied.old_fingerprint
    ));
    out.push_str(&format!(
        ",\"rows\":{},\"appended_rows\":{},\"deleted_rows\":{},\"rows_deduplicated\":{}",
        applied.info.rows, applied.appended_rows, applied.deleted_rows, applied.rows_deduplicated
    ));
    out.push_str(&format!(
        ",\"affected_columns\":[{}],\"cache_entries_evicted\":{}}}",
        applied.affected_columns.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(","),
        evicted
    ));
    Response::json(200, out)
}

/// `POST /datasets/:name/append` — body is a CSV document whose header must
/// match the dataset's columns; its rows are appended as a delta.
fn append_dataset(state: &ServerState, name: &str, request: &Request) -> Response {
    let Some((_, table)) = state.registry.resolve(name) else {
        return Response::error(404, &format!("dataset {name:?} is not registered"));
    };
    let appended =
        match muds_table::table_from_csv_bytes(name, &request.body, &CsvOptions::default()) {
            Ok(t) => t,
            Err(e) => return Response::error(400, &format!("append body is not valid CSV: {e}")),
        };
    if appended.column_names() != table.column_names() {
        return Response::error(
            400,
            &format!(
                "append columns {:?} do not match dataset columns {:?}",
                appended.column_names(),
                table.column_names()
            ),
        );
    }
    let rows: Vec<Vec<String>> = (0..appended.num_rows())
        .map(|r| appended.row(r).into_iter().map(|v| v.unwrap_or("").to_string()).collect())
        .collect();
    apply_dataset_delta(state, name, &TableDelta::Append { rows })
}

/// `POST /datasets/:name/delete` — body is `{"rows":[id,...]}` with
/// pre-delta row ids; duplicates are tolerated, out-of-range ids are a 400.
fn delete_rows(state: &ServerState, name: &str, request: &Request) -> Response {
    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => return Response::error(400, "request body is not UTF-8"),
    };
    let doc = match parse_json(body) {
        Ok(doc) => doc,
        Err(e) => return Response::error(400, &format!("invalid JSON body: {e}")),
    };
    let Some(ids) = doc.get("rows").and_then(JsonValue::as_array) else {
        return Response::error(400, "missing \"rows\" (an array of row ids)");
    };
    let mut rows = Vec::with_capacity(ids.len());
    for id in ids {
        match id.as_usize() {
            Some(row) => rows.push(row),
            None => return Response::error(400, "row ids must be non-negative integers"),
        }
    }
    apply_dataset_delta(state, name, &TableDelta::Delete { rows })
}

fn job_status(state: &ServerState, id: &str) -> Response {
    let Ok(id) = id.parse::<u64>() else {
        return Response::error(400, "job id must be an integer");
    };
    match state.scheduler.status(id) {
        Some(record) => {
            let mut out = format!(
                "{{\"id\":{},\"dataset\":{},\"algorithm\":\"{}\",\"status\":\"{}\",\"trace\":{}",
                record.id,
                json_string(&record.dataset),
                record.algorithm.name(),
                record.status.name(),
                json_string(&record.trace)
            );
            if let JobStatus::Failed(reason) = &record.status {
                out.push_str(&format!(",\"error\":{}", json_string(reason)));
            }
            out.push('}');
            Response::json(200, out)
        }
        None => Response::error(404, "unknown or expired job id"),
    }
}

fn profile_endpoint(state: &ServerState, request: &Request, trace: &str) -> Response {
    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => return Response::error(400, "request body is not UTF-8"),
    };
    let doc = match parse_json(body) {
        Ok(doc) => doc,
        Err(e) => return Response::error(400, &format!("invalid JSON body: {e}")),
    };
    let Some(dataset) = doc.get("dataset").and_then(JsonValue::as_str) else {
        return Response::error(400, "missing \"dataset\" (a registered name or fingerprint)");
    };
    let Some(algorithm_name) = doc.get("algorithm").and_then(JsonValue::as_str) else {
        return Response::error(400, "missing \"algorithm\" (muds|holistic-fun|baseline|tane)");
    };
    let Some(algorithm) = Algorithm::from_name(algorithm_name) else {
        return Response::error(400, &format!("unknown algorithm {algorithm_name:?}"));
    };
    let timeout = doc
        .get("timeout_ms")
        .and_then(JsonValue::as_u64)
        .map(Duration::from_millis)
        .unwrap_or(state.config.default_timeout);
    let Some((fingerprint, table)) = state.registry.resolve(dataset) else {
        return Response::error(404, &format!("dataset {dataset:?} is not registered"));
    };

    let mut config = ProfilerConfig::default();
    if let Some(seed) = doc.get("seed").and_then(JsonValue::as_u64) {
        config.seed = seed;
    }
    // Daemon responses carry the single-scan column profiles by default
    // (`"stats": false` opts out); the library/CLI default stays off. The
    // flag is part of the cache key, so both variants cache independently
    // and replay byte-identically across restarts.
    config.stats = doc.get("stats").and_then(JsonValue::as_bool).unwrap_or(true);
    let key = CacheKey { fingerprint, algorithm, config: config.cache_key() };

    match state.cache.begin(&key) {
        Begin::Hit(json) => Response::json(200, (*json).clone()).with_header("X-Cache", "hit"),
        Begin::Follower(flight) => wait_for_flight(&flight, timeout, "coalesced"),
        Begin::Leader(flight) => {
            let spec = JobSpec {
                dataset: dataset.to_string(),
                table,
                algorithm,
                config,
                key: key.clone(),
                trace: trace.to_string(),
            };
            // Queued jobs expire if nothing could start them within the
            // request timeout — nobody is left waiting by then.
            let deadline = Some(Instant::now() + timeout);
            match state.scheduler.submit(spec, Arc::clone(&flight), deadline) {
                Ok(_id) => wait_for_flight(&flight, timeout, "miss"),
                Err(_full) => {
                    state.cache.abort(&key, &flight, "job queue full");
                    // Retry once the earliest queued deadline passes — that
                    // job has started or expired by then, freeing a slot.
                    // Clamped ≥ 1 s: a sub-second deadline must not render
                    // as `Retry-After: 0` (an immediate-retry busy loop).
                    let retry = retry_after_secs(state.scheduler.earliest_deadline());
                    Response::error(429, "job queue full, retry shortly")
                        .with_header("Retry-After", &retry.to_string())
                }
            }
        }
    }
}

fn wait_for_flight(
    flight: &Arc<crate::cache::Flight>,
    timeout: Duration,
    cache_disposition: &str,
) -> Response {
    // lint:allow(condvar-loop): Flight::wait re-checks the Done predicate
    // in its own loop around the condvar; this caller only interprets the
    // final outcome (resolved / timed out) once.
    match flight.wait(timeout) {
        Some(Ok(json)) => {
            Response::json(200, (*json).clone()).with_header("X-Cache", cache_disposition)
        }
        Some(Err(error)) => Response::error(500, &error),
        None => {
            let job = flight.job_id().map(|id| id.to_string()).unwrap_or_else(|| "null".into());
            Response::json(
                202,
                format!("{{\"status\":\"pending\",\"job\":{job},\"retry_ms\":250}}"),
            )
            .with_header("Retry-After", &retry_after_secs(None).to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    /// Drives one request against a running server over a real socket.
    /// Sends `Connection: close` so `read_to_end` terminates — the server
    /// otherwise keeps the connection open for reuse.
    pub(crate) fn http(
        addr: SocketAddr,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> (u16, Vec<(String, String)>, Vec<u8>) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n");
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        stream.write_all(head.as_bytes()).unwrap();
        stream.write_all(body).unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).expect("read response");
        parse_response(&raw)
    }

    /// Reads exactly one response off a keep-alive connection (head plus
    /// `Content-Length` body bytes), leaving the stream usable. `buf`
    /// carries over-read bytes (a pipelined successor) to the next call.
    pub(crate) fn read_one_response(
        stream: &mut TcpStream,
        buf: &mut Vec<u8>,
    ) -> (u16, Vec<(String, String)>, Vec<u8>) {
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let n = stream.read(&mut chunk).expect("read response head");
            assert!(n > 0, "connection closed before a full response head");
            buf.extend_from_slice(&chunk[..n]);
        };
        let head: Vec<u8> = buf[..head_end + 4].to_vec();
        let (status, headers, _) = parse_response(&head);
        let content_length: usize = header(&headers, "content-length")
            .expect("responses carry Content-Length")
            .parse()
            .expect("numeric Content-Length");
        while buf.len() < head_end + 4 + content_length {
            let n = stream.read(&mut chunk).expect("read response body");
            assert!(n > 0, "connection closed mid response body");
            buf.extend_from_slice(&chunk[..n]);
        }
        let body = buf[head_end + 4..head_end + 4 + content_length].to_vec();
        buf.drain(..head_end + 4 + content_length);
        (status, headers, body)
    }

    fn parse_response(raw: &[u8]) -> (u16, Vec<(String, String)>, Vec<u8>) {
        let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n").expect("response head");
        let head = std::str::from_utf8(&raw[..head_end]).expect("utf-8 head");
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap();
        let status: u16 = status_line.split(' ').nth(1).expect("status code").parse().unwrap();
        let headers = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
            .collect();
        (status, headers, raw[head_end + 4..].to_vec())
    }

    pub(crate) fn start_server(
        config: ServeConfig,
    ) -> (SocketAddr, Arc<ServerState>, std::thread::JoinHandle<()>) {
        let server = Server::bind(config).expect("bind");
        let addr = server.local_addr().unwrap();
        let state = server.state();
        let handle = std::thread::spawn(move || server.run().expect("server run"));
        (addr, state, handle)
    }

    fn test_config() -> ServeConfig {
        ServeConfig { addr: "127.0.0.1:0".to_string(), workers: 2, ..ServeConfig::default() }
    }

    const CSV: &str = "id,grp,val\n1,a,x\n2,a,x\n3,b,y\n4,b,z\n";

    #[test]
    fn end_to_end_register_profile_and_hit() {
        let (addr, state, handle) = start_server(test_config());

        let (status, _, body) =
            http(addr, "POST", "/datasets?name=t", &[("Content-Type", "text/csv")], CSV.as_bytes());
        assert_eq!(status, 201, "{}", String::from_utf8_lossy(&body));
        let info = parse_json(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(info.get("rows").and_then(JsonValue::as_u64), Some(4));

        let req = b"{\"dataset\":\"t\",\"algorithm\":\"muds\"}";
        let (status, headers, body) =
            http(addr, "POST", "/profile", &[("Content-Type", "application/json")], req);
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        assert_eq!(header(&headers, "x-cache"), Some("miss"));
        let payload =
            muds_core::profile_from_json(std::str::from_utf8(&body).unwrap()).expect("wire parses");
        assert_eq!(payload.dataset, "t");
        assert!(!payload.fds.is_empty());

        // Same request again: a hit with a byte-identical payload.
        let (status, headers, body2) =
            http(addr, "POST", "/profile", &[("Content-Type", "application/json")], req);
        assert_eq!(status, 200);
        assert_eq!(header(&headers, "x-cache"), Some("hit"));
        assert_eq!(body, body2, "hits serve the exact cached document");
        assert_eq!(state.metrics.cache_hits.get(), 1);
        assert_eq!(state.metrics.jobs_completed.get(), 1);

        state.request_shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn profile_validates_input_and_unknown_datasets() {
        let (addr, state, handle) = start_server(test_config());
        let post = |body: &str| {
            http(addr, "POST", "/profile", &[("Content-Type", "application/json")], body.as_bytes())
                .0
        };
        assert_eq!(post("not json"), 400);
        assert_eq!(post("{\"algorithm\":\"muds\"}"), 400);
        assert_eq!(post("{\"dataset\":\"x\",\"algorithm\":\"nope\"}"), 400);
        assert_eq!(post("{\"dataset\":\"ghost\",\"algorithm\":\"muds\"}"), 404);
        let (status, _, _) = http(addr, "GET", "/nope", &[], b"");
        assert_eq!(status, 404);
        let (status, _, _) = http(addr, "DELETE", "/datasets", &[], b"");
        assert_eq!(status, 405);
        state.request_shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn register_by_path_and_by_body_share_content() {
        let (addr, state, handle) = start_server(test_config());
        let dir = std::env::temp_dir().join(format!("muds-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("upload.csv");
        std::fs::write(&path, CSV).unwrap();

        let body =
            format!("{{\"name\":\"from-path\",\"path\":{}}}", json_string(path.to_str().unwrap()));
        let (status, _, body) = http(
            addr,
            "POST",
            "/datasets",
            &[("Content-Type", "application/json")],
            body.as_bytes(),
        );
        assert_eq!(status, 201, "{}", String::from_utf8_lossy(&body));
        let first = parse_json(std::str::from_utf8(&body).unwrap()).unwrap();

        let (status, _, body) = http(
            addr,
            "POST",
            "/datasets?name=from-body",
            &[("Content-Type", "text/csv")],
            CSV.as_bytes(),
        );
        assert_eq!(status, 201);
        let second = parse_json(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(
            first.get("fingerprint").and_then(JsonValue::as_str),
            second.get("fingerprint").and_then(JsonValue::as_str),
            "path and body registrations of the same CSV share a fingerprint"
        );
        assert_eq!(second.get("already_registered"), Some(&JsonValue::Bool(true)));

        let (status, _, listing) = http(addr, "GET", "/datasets", &[], b"");
        assert_eq!(status, 200);
        let listing = parse_json(std::str::from_utf8(&listing).unwrap()).unwrap();
        assert_eq!(listing.get("datasets").and_then(|d| d.as_array()).map(|a| a.len()), Some(2));

        std::fs::remove_dir_all(&dir).ok();
        state.request_shutdown();
        handle.join().unwrap();
    }

    /// The delta endpoints end-to-end: append re-fingerprints the dataset
    /// and surgically evicts only the stale cache identity — a different
    /// dataset's cached result must still hit afterwards.
    #[test]
    fn append_invalidates_only_the_affected_cache_entries() {
        let (addr, state, handle) = start_server(test_config());
        let (status, _, _) =
            http(addr, "POST", "/datasets?name=t", &[("Content-Type", "text/csv")], CSV.as_bytes());
        assert_eq!(status, 201);
        let other_csv = "k,v\n1,p\n2,q\n";
        let (status, _, _) = http(
            addr,
            "POST",
            "/datasets?name=other",
            &[("Content-Type", "text/csv")],
            other_csv.as_bytes(),
        );
        assert_eq!(status, 201);

        // Warm the cache: t+muds, t+tane, other+muds.
        for req in [
            &b"{\"dataset\":\"t\",\"algorithm\":\"muds\"}"[..],
            &b"{\"dataset\":\"t\",\"algorithm\":\"tane\"}"[..],
            &b"{\"dataset\":\"other\",\"algorithm\":\"muds\"}"[..],
        ] {
            let (status, _, _) =
                http(addr, "POST", "/profile", &[("Content-Type", "application/json")], req);
            assert_eq!(status, 200);
        }

        // Append one row to t (header must match).
        let (status, _, body) = http(
            addr,
            "POST",
            "/datasets/t/append",
            &[("Content-Type", "text/csv")],
            b"id,grp,val\n5,c,w\n",
        );
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        let doc = parse_json(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(doc.get("appended_rows").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(doc.get("rows").and_then(JsonValue::as_u64), Some(5));
        assert_ne!(
            doc.get("fingerprint").and_then(JsonValue::as_str),
            doc.get("previous_fingerprint").and_then(JsonValue::as_str),
            "content changed, fingerprint changed"
        );
        // Both algorithm variants of t's old content were evicted; other's
        // entry was not.
        assert_eq!(doc.get("cache_entries_evicted").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(state.metrics.cache_invalidated.get(), 2);
        assert_eq!(state.metrics.deltas_applied.get(), 1);

        // Untouched dataset still hits the cache...
        let hits_before = state.metrics.cache_hits.get();
        let (status, headers, _) = http(
            addr,
            "POST",
            "/profile",
            &[("Content-Type", "application/json")],
            b"{\"dataset\":\"other\",\"algorithm\":\"muds\"}",
        );
        assert_eq!(status, 200);
        assert_eq!(header(&headers, "x-cache"), Some("hit"), "untouched dataset survives");
        assert_eq!(state.metrics.cache_hits.get(), hits_before + 1);
        // ...while the appended dataset re-profiles from scratch.
        let (status, headers, body) = http(
            addr,
            "POST",
            "/profile",
            &[("Content-Type", "application/json")],
            b"{\"dataset\":\"t\",\"algorithm\":\"muds\"}",
        );
        assert_eq!(status, 200);
        assert_eq!(header(&headers, "x-cache"), Some("miss"), "stale entry was evicted");
        let payload =
            muds_core::profile_from_json(std::str::from_utf8(&body).unwrap()).expect("wire parses");
        assert_eq!(payload.dataset, "t", "fresh profile of the patched dataset");

        state.request_shutdown();
        handle.join().unwrap();
    }

    /// `POST /datasets/:name/delete` removes rows by pre-delta id and
    /// validates its input; mismatched append headers are rejected.
    #[test]
    fn delete_endpoint_removes_rows_and_validates() {
        let (addr, state, handle) = start_server(test_config());
        let (status, _, _) =
            http(addr, "POST", "/datasets?name=t", &[("Content-Type", "text/csv")], CSV.as_bytes());
        assert_eq!(status, 201);

        let (status, _, body) = http(
            addr,
            "POST",
            "/datasets/t/delete",
            &[("Content-Type", "application/json")],
            b"{\"rows\":[0,2]}",
        );
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        let doc = parse_json(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(doc.get("deleted_rows").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(doc.get("rows").and_then(JsonValue::as_u64), Some(2));

        // Out-of-range ids, bad bodies, unknown datasets, bad headers.
        let post = |path: &str, ct: &str, body: &[u8]| {
            http(addr, "POST", path, &[("Content-Type", ct)], body).0
        };
        assert_eq!(post("/datasets/t/delete", "application/json", b"{\"rows\":[99]}"), 400);
        assert_eq!(post("/datasets/t/delete", "application/json", b"{\"rows\":[-1]}"), 400);
        assert_eq!(post("/datasets/t/delete", "application/json", b"{}"), 400);
        assert_eq!(post("/datasets/ghost/delete", "application/json", b"{\"rows\":[0]}"), 404);
        assert_eq!(post("/datasets/ghost/append", "text/csv", b"id,grp,val\n9,z,z\n"), 404);
        assert_eq!(post("/datasets/t/append", "text/csv", b"wrong,header\n1,2\n"), 400);
        state.request_shutdown();
        handle.join().unwrap();
    }

    /// Socket-level pin of the http.rs framing fixes: duplicate
    /// Content-Length headers answer 400, and a peer that closes mid-body
    /// gets a prompt 400 instead of a blocked connection thread.
    #[test]
    fn framing_violations_answer_400_over_sockets() {
        let (addr, state, handle) = start_server(test_config());

        // Duplicate Content-Length: the smuggling shape.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream
            .write_all(b"POST /profile HTTP/1.1\r\nHost: t\r\nContent-Length: 2\r\nContent-Length: 4\r\n\r\n{}")
            .unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let (status, _, _) = parse_response(&raw);
        assert_eq!(status, 400);

        // Mid-body close: write a short body, shut down the write half.
        let start = Instant::now();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream
            .write_all(b"POST /profile HTTP/1.1\r\nHost: t\r\nContent-Length: 64\r\n\r\nshort")
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let (status, _, _) = parse_response(&raw);
        assert_eq!(status, 400, "mid-body close is a clean 400");
        assert!(start.elapsed() < Duration::from_secs(5), "no blocking retry loop");

        state.request_shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn trace_ids_are_minted_echoed_and_propagated() {
        let (addr, state, handle) = start_server(test_config());

        // No header: the server mints an id and echoes it.
        let (status, headers, _) = http(addr, "GET", "/healthz", &[], b"");
        assert_eq!(status, 200);
        let minted = header(&headers, "x-muds-trace").expect("trace echoed").to_string();
        assert!(minted.starts_with("muds-"), "minted id: {minted}");
        let (_, headers2, _) = http(addr, "GET", "/healthz", &[], b"");
        assert_ne!(minted, header(&headers2, "x-muds-trace").unwrap(), "ids are distinct");
        assert_eq!(state.metrics.trace_ids_generated.get(), 2);

        // Client-supplied header: propagated verbatim (it is header-safe).
        let (status, _, _) =
            http(addr, "POST", "/datasets?name=t", &[("Content-Type", "text/csv")], CSV.as_bytes());
        assert_eq!(status, 201);
        let req = b"{\"dataset\":\"t\",\"algorithm\":\"tane\"}";
        let (status, headers, _) = http(
            addr,
            "POST",
            "/profile",
            &[("Content-Type", "application/json"), ("X-Muds-Trace", "cli-abc.123")],
            req,
        );
        assert_eq!(status, 200);
        assert_eq!(header(&headers, "x-muds-trace"), Some("cli-abc.123"));
        assert_eq!(state.metrics.trace_ids_propagated.get(), 1);

        // The job record carries the trace id into /jobs/:id.
        let (status, _, body) = http(addr, "GET", "/jobs/1", &[], b"");
        assert_eq!(status, 200);
        let doc = parse_json(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(doc.get("trace").and_then(JsonValue::as_str), Some("cli-abc.123"));

        // A hostile header sanitizes down; an all-hostile one is replaced.
        let (_, headers, _) =
            http(addr, "GET", "/healthz", &[("X-Muds-Trace", "a\tb<script>%0d%0a")], b"");
        let echoed = header(&headers, "x-muds-trace").unwrap();
        assert_eq!(echoed, "abscript0d0a");

        // /metrics (JSON flavor) reports both counters.
        let (_, _, body) = http(addr, "GET", "/metrics", &[], b"");
        let doc = parse_json(std::str::from_utf8(&body).unwrap()).unwrap();
        assert!(doc.get("trace_ids_generated").and_then(JsonValue::as_u64).unwrap() >= 3);
        // 2: the real propagated id plus the sanitized hostile one.
        assert_eq!(doc.get("trace_ids_propagated").and_then(JsonValue::as_u64), Some(2));

        state.request_shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn metrics_prom_format_is_scrapeable_over_http() {
        let (addr, state, handle) = start_server(test_config());
        let (status, headers, body) = http(addr, "GET", "/metrics?format=prom", &[], b"");
        assert_eq!(status, 200);
        assert_eq!(header(&headers, "content-type"), Some("text/plain; version=0.0.4"));
        let text = std::str::from_utf8(&body).expect("utf-8 exposition");
        assert!(text.contains("# TYPE muds_requests_total counter"));
        assert!(text.contains("muds_requests_total 1"));
        // Unknown formats are a client error, not silent JSON.
        let (status, _, _) = http(addr, "GET", "/metrics?format=xml", &[], b"");
        assert_eq!(status, 400);
        state.request_shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn shutdown_endpoint_stops_the_server() {
        let (addr, _state, handle) = start_server(test_config());
        let (status, _, _) = http(addr, "POST", "/shutdown", &[], b"");
        assert_eq!(status, 200);
        handle.join().unwrap();
        // The listener is gone; connecting now fails (possibly after the
        // OS drains the backlog, so allow a few attempts).
        let mut attempts = 0;
        loop {
            match TcpStream::connect(addr) {
                Err(_) => break,
                Ok(_) if attempts > 50 => panic!("server still accepting after shutdown"),
                Ok(_) => {
                    attempts += 1;
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    /// Keep-alive reuse after routed errors: a fully framed request has
    /// its body consumed even when the answer is a 4xx, so a pipelined
    /// successor on the same socket must be served — no desync, no close.
    #[cfg(target_os = "linux")]
    #[test]
    fn keep_alive_survives_routed_errors_and_serves_pipelined_requests() {
        let (addr, state, handle) = start_server(test_config());
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        // Three pipelined requests in one write: a rejected POST (404,
        // with a body that must be drained), a plain GET, and a closing GET.
        stream
            .write_all(
                b"POST /nope HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\n\r\nhello\
                  GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n\
                  GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
            )
            .unwrap();
        let mut buf = Vec::new();
        let (status, headers, _) = read_one_response(&mut stream, &mut buf);
        assert_eq!(status, 404, "routed error for the bad endpoint");
        assert_eq!(header(&headers, "connection"), Some("keep-alive"));
        let (status, _, _) = read_one_response(&mut stream, &mut buf);
        assert_eq!(status, 200, "pipelined request after a 404 is served");
        let (status, headers, _) = read_one_response(&mut stream, &mut buf);
        assert_eq!(status, 200);
        assert_eq!(header(&headers, "connection"), Some("close"));
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "Connection: close honored");
        state.request_shutdown();
        handle.join().unwrap();
    }

    /// Framing-level rejections (oversized or unparseable Content-Length)
    /// answer and then close: the request's unread body bytes are still in
    /// flight, so reusing the stream would desync it. A pipelined
    /// follow-up must get EOF, never an answer.
    #[cfg(target_os = "linux")]
    #[test]
    fn oversized_and_hostile_content_lengths_answer_and_close() {
        let (addr, state, handle) = start_server(test_config());
        let attempt = |content_length: &str| {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            stream
                .write_all(
                    format!(
                        "POST /profile HTTP/1.1\r\nHost: t\r\nContent-Length: {content_length}\r\n\r\n\
                         GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
                    )
                    .as_bytes(),
                )
                .unwrap();
            let mut buf = Vec::new();
            let (status, headers, _) = read_one_response(&mut stream, &mut buf);
            assert_eq!(header(&headers, "connection"), Some("close"));
            let mut rest = buf;
            stream.read_to_end(&mut rest).unwrap();
            assert!(
                rest.is_empty(),
                "pipelined request after a framing rejection must get EOF, got {:?}",
                String::from_utf8_lossy(&rest)
            );
            status
        };
        // 64 GiB and u64::MAX: parse fine, exceed the cap → 413.
        assert_eq!(attempt("68719476736"), 413);
        assert_eq!(attempt("18446744073709551615"), 413);
        // u64::MAX + 1 and negative: not a length at all → 400.
        assert_eq!(attempt("18446744073709551616"), 400);
        assert_eq!(attempt("-1"), 400);
        state.request_shutdown();
        handle.join().unwrap();
    }

    pub(crate) fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
        headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}
