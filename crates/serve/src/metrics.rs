//! Server-level counters for `GET /metrics`.
//!
//! These are `muds-obs` instruments held as *detached* handles: the server
//! reads them cumulatively with `get()`/`snapshot()`, so scraping never
//! resets anything — unlike the per-job registries, which drain into each
//! `ProfileResult`'s metrics snapshot. Per-job profiling counters never mix
//! into these: scheduler workers carry no ambient registry, so every
//! `profile()` call installs its own.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use muds_obs::{Counter, Gauge, Histogram};

/// All instruments the daemon exposes. One instance per server, shared by
/// the connection handlers, the cache, and the scheduler.
pub struct ServeMetrics {
    start: Instant,
    /// Requests accepted (connections that produced a parseable request).
    pub requests: Counter,
    /// Responses by status class.
    pub responses_2xx: Counter,
    pub responses_4xx: Counter,
    pub responses_5xx: Counter,
    /// Result-cache traffic.
    pub cache_hits: Counter,
    pub cache_misses: Counter,
    /// Requests that joined an in-flight computation instead of starting
    /// their own (the single-flight dedup at work).
    pub cache_coalesced: Counter,
    pub cache_evictions: Counter,
    /// Entries surgically removed because their dataset content changed
    /// (`POST /datasets/:name/append|delete`), as opposed to LRU pressure.
    pub cache_invalidated: Counter,
    /// Append/delete deltas applied to registered datasets.
    pub deltas_applied: Counter,
    pub cache_bytes: Gauge,
    pub cache_entries: Gauge,
    /// Scheduler traffic.
    pub jobs_submitted: Counter,
    pub jobs_completed: Counter,
    pub jobs_failed: Counter,
    pub jobs_expired: Counter,
    /// Jobs refused with 429 because the queue was full.
    pub jobs_rejected: Counter,
    pub queue_depth: Gauge,
    pub jobs_running: Gauge,
    pub datasets: Gauge,
    /// Per-request trace ids: minted fresh by this server vs accepted from
    /// an `X-Muds-Trace` request header.
    pub trace_ids_generated: Counter,
    pub trace_ids_propagated: Counter,
    /// End-to-end job execution latency in microseconds (run only, not
    /// queue wait).
    pub job_latency_us: Histogram,
    /// In-flight HTTP connections (for drain on shutdown).
    pub connections_active: AtomicU64,
    /// Disk persistence (`--data-dir`): successful atomic writes (table
    /// blobs, result documents, manifests).
    pub persist_writes: Counter,
    /// Entries restored intact from disk at startup (tables + results).
    pub persist_recovered: Counter,
    /// Files skipped at startup as torn/orphaned (and deleted).
    pub persist_torn_skipped: Counter,
    /// Connections currently owned by the epoll reactor.
    pub reactor_connections: Gauge,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics {
            start: Instant::now(),
            requests: Counter::detached(),
            responses_2xx: Counter::detached(),
            responses_4xx: Counter::detached(),
            responses_5xx: Counter::detached(),
            cache_hits: Counter::detached(),
            cache_misses: Counter::detached(),
            cache_coalesced: Counter::detached(),
            cache_evictions: Counter::detached(),
            cache_invalidated: Counter::detached(),
            deltas_applied: Counter::detached(),
            cache_bytes: Gauge::detached(),
            cache_entries: Gauge::detached(),
            jobs_submitted: Counter::detached(),
            jobs_completed: Counter::detached(),
            jobs_failed: Counter::detached(),
            jobs_expired: Counter::detached(),
            jobs_rejected: Counter::detached(),
            queue_depth: Gauge::detached(),
            jobs_running: Gauge::detached(),
            datasets: Gauge::detached(),
            trace_ids_generated: Counter::detached(),
            trace_ids_propagated: Counter::detached(),
            job_latency_us: Histogram::detached(),
            connections_active: AtomicU64::new(0),
            persist_writes: Counter::detached(),
            persist_recovered: Counter::detached(),
            persist_torn_skipped: Counter::detached(),
            reactor_connections: Gauge::detached(),
        }
    }
}

impl ServeMetrics {
    pub fn new() -> Self {
        ServeMetrics::default()
    }

    /// Records a response's status class.
    pub fn count_response(&self, status: u16) {
        match status {
            200..=299 => self.responses_2xx.inc(),
            400..=499 => self.responses_4xx.inc(),
            500..=599 => self.responses_5xx.inc(),
            _ => {}
        }
    }

    /// The `GET /metrics` document. Flat keys, deterministic order.
    pub fn to_json(&self) -> String {
        let lat = self.job_latency_us.snapshot();
        let mut out = String::with_capacity(512);
        out.push('{');
        let mut field = |name: &str, value: String| {
            if !out.ends_with('{') {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{value}"));
        };
        field("uptime_ms", self.start.elapsed().as_millis().to_string());
        field("requests", self.requests.get().to_string());
        field("responses_2xx", self.responses_2xx.get().to_string());
        field("responses_4xx", self.responses_4xx.get().to_string());
        field("responses_5xx", self.responses_5xx.get().to_string());
        field("cache_hits", self.cache_hits.get().to_string());
        field("cache_misses", self.cache_misses.get().to_string());
        field("cache_coalesced", self.cache_coalesced.get().to_string());
        field("cache_evictions", self.cache_evictions.get().to_string());
        field("cache_invalidated", self.cache_invalidated.get().to_string());
        field("deltas_applied", self.deltas_applied.get().to_string());
        field("cache_bytes", self.cache_bytes.get().to_string());
        field("cache_entries", self.cache_entries.get().to_string());
        field("jobs_submitted", self.jobs_submitted.get().to_string());
        field("jobs_completed", self.jobs_completed.get().to_string());
        field("jobs_failed", self.jobs_failed.get().to_string());
        field("jobs_expired", self.jobs_expired.get().to_string());
        field("jobs_rejected", self.jobs_rejected.get().to_string());
        field("queue_depth", self.queue_depth.get().to_string());
        field("jobs_running", self.jobs_running.get().to_string());
        field("datasets", self.datasets.get().to_string());
        field("trace_ids_generated", self.trace_ids_generated.get().to_string());
        field("trace_ids_propagated", self.trace_ids_propagated.get().to_string());
        field("connections_active", self.connections_active.load(Ordering::Relaxed).to_string());
        field("persist_writes", self.persist_writes.get().to_string());
        field("persist_recovered", self.persist_recovered.get().to_string());
        field("persist_torn_skipped", self.persist_torn_skipped.get().to_string());
        field("reactor_connections", self.reactor_connections.get().to_string());
        field(
            "job_latency_us",
            format!(
                "{{\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{}}}",
                lat.count,
                lat.sum,
                lat.p50(),
                lat.p99()
            ),
        );
        out.push('}');
        out
    }

    /// Prometheus text exposition (`GET /metrics?format=prom`): version
    /// 0.0.4 format, one `# TYPE` line per family, `muds_`-prefixed names.
    /// The latency histogram is exported as a summary (bucket-resolved
    /// quantiles) because the underlying buckets are log2, not cumulative
    /// `le` buckets.
    pub fn to_prometheus(&self) -> String {
        let lat = self.job_latency_us.snapshot();
        let mut out = String::with_capacity(2048);
        let mut family = |name: &str, kind: &str, value: String| {
            out.push_str(&format!("# TYPE muds_{name} {kind}\nmuds_{name} {value}\n"));
        };
        family("uptime_ms", "gauge", self.start.elapsed().as_millis().to_string());
        family("requests_total", "counter", self.requests.get().to_string());
        family("responses_2xx_total", "counter", self.responses_2xx.get().to_string());
        family("responses_4xx_total", "counter", self.responses_4xx.get().to_string());
        family("responses_5xx_total", "counter", self.responses_5xx.get().to_string());
        family("cache_hits_total", "counter", self.cache_hits.get().to_string());
        family("cache_misses_total", "counter", self.cache_misses.get().to_string());
        family("cache_coalesced_total", "counter", self.cache_coalesced.get().to_string());
        family("cache_evictions_total", "counter", self.cache_evictions.get().to_string());
        family("cache_invalidated_total", "counter", self.cache_invalidated.get().to_string());
        family("deltas_applied_total", "counter", self.deltas_applied.get().to_string());
        family("cache_bytes", "gauge", self.cache_bytes.get().to_string());
        family("cache_entries", "gauge", self.cache_entries.get().to_string());
        family("jobs_submitted_total", "counter", self.jobs_submitted.get().to_string());
        family("jobs_completed_total", "counter", self.jobs_completed.get().to_string());
        family("jobs_failed_total", "counter", self.jobs_failed.get().to_string());
        family("jobs_expired_total", "counter", self.jobs_expired.get().to_string());
        family("jobs_rejected_total", "counter", self.jobs_rejected.get().to_string());
        family("queue_depth", "gauge", self.queue_depth.get().to_string());
        family("jobs_running", "gauge", self.jobs_running.get().to_string());
        family("datasets", "gauge", self.datasets.get().to_string());
        family("trace_ids_generated_total", "counter", self.trace_ids_generated.get().to_string());
        family(
            "trace_ids_propagated_total",
            "counter",
            self.trace_ids_propagated.get().to_string(),
        );
        family(
            "connections_active",
            "gauge",
            self.connections_active.load(Ordering::Relaxed).to_string(),
        );
        family("persist_writes_total", "counter", self.persist_writes.get().to_string());
        family("persist_recovered_total", "counter", self.persist_recovered.get().to_string());
        family(
            "persist_torn_skipped_total",
            "counter",
            self.persist_torn_skipped.get().to_string(),
        );
        family("reactor_connections", "gauge", self.reactor_connections.get().to_string());
        out.push_str("# TYPE muds_job_latency_us summary\n");
        out.push_str(&format!("muds_job_latency_us{{quantile=\"0.5\"}} {}\n", lat.p50()));
        out.push_str(&format!("muds_job_latency_us{{quantile=\"0.99\"}} {}\n", lat.p99()));
        out.push_str(&format!("muds_job_latency_us_sum {}\n", lat.sum));
        out.push_str(&format!("muds_job_latency_us_count {}\n", lat.count));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muds_core::json::parse_json;

    #[test]
    fn metrics_json_is_parseable_and_cumulative() {
        let m = ServeMetrics::new();
        m.requests.inc();
        m.count_response(200);
        m.count_response(404);
        m.count_response(500);
        m.job_latency_us.record(1000);
        let doc = parse_json(&m.to_json()).expect("metrics document parses");
        assert_eq!(doc.get("requests").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(doc.get("responses_2xx").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(doc.get("responses_4xx").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(doc.get("responses_5xx").and_then(|v| v.as_u64()), Some(1));
        let lat = doc.get("job_latency_us").expect("latency object");
        assert_eq!(lat.get("count").and_then(|v| v.as_u64()), Some(1));
        // Reading twice does not reset (cumulative, unlike drain_snapshot).
        let doc2 = parse_json(&m.to_json()).unwrap();
        assert_eq!(doc2.get("requests").and_then(|v| v.as_u64()), Some(1));
    }

    /// Validates one line of Prometheus text exposition: either a comment
    /// or `name[{labels}] value` with a legal metric name and float value.
    fn scrape_line_ok(line: &str) -> bool {
        if line.starts_with('#') {
            let mut words = line.split_whitespace();
            return words.next() == Some("#")
                && words.next() == Some("TYPE")
                && words.next().is_some_and(|n| n.starts_with("muds_"))
                && matches!(words.next(), Some("counter" | "gauge" | "summary"))
                && words.next().is_none();
        }
        let (series, value) = match line.rsplit_once(' ') {
            Some(parts) => parts,
            None => return false,
        };
        if value.parse::<f64>().is_err() {
            return false;
        }
        let name = series.split('{').next().unwrap_or("");
        if !name.starts_with("muds_")
            || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return false;
        }
        match series.split_once('{') {
            None => true,
            Some((_, labels)) => {
                let Some(labels) = labels.strip_suffix('}') else { return false };
                labels.split(',').all(|kv| {
                    kv.split_once('=').is_some_and(|(k, v)| {
                        !k.is_empty() && v.starts_with('"') && v.ends_with('"') && v.len() >= 2
                    })
                })
            }
        }
    }

    #[test]
    fn prometheus_exposition_parses_under_scrape_rules() {
        let m = ServeMetrics::new();
        m.requests.inc();
        m.count_response(200);
        m.trace_ids_generated.inc();
        m.trace_ids_propagated.inc();
        m.job_latency_us.record(1000);
        let text = m.to_prometheus();
        assert!(text.ends_with('\n'), "exposition ends with a newline");
        for line in text.lines() {
            assert!(scrape_line_ok(line), "unparseable scrape line: {line:?}");
        }
        assert!(text.contains("# TYPE muds_requests_total counter\nmuds_requests_total 1\n"));
        assert!(text.contains("# TYPE muds_job_latency_us summary\n"));
        assert!(text.contains("muds_job_latency_us{quantile=\"0.5\"} 1023\n"));
        assert!(text.contains("muds_job_latency_us_sum 1000\n"));
        assert!(text.contains("muds_job_latency_us_count 1\n"));
        assert!(text.contains("muds_trace_ids_generated_total 1\n"));
        // The two exporters must expose the same instrument set: every
        // JSON key maps to exactly one Prometheus family (counters gain a
        // `_total` suffix). Deriving the expected set from `to_json()`
        // instead of hardcoding a count means adding an instrument to only
        // one exporter fails here, while adding it to both passes without
        // touching this test.
        let doc = parse_json(&m.to_json()).expect("metrics document parses");
        let json_keys = doc.as_object().expect("metrics document is an object");
        let families: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("# TYPE"))
            .map(|l| l.split_whitespace().nth(2).unwrap())
            .collect();
        assert_eq!(families.len(), json_keys.len(), "exporters expose different instrument sets");
        let mut seen = std::collections::BTreeSet::new();
        for family in &families {
            assert!(seen.insert(*family), "family {family:?} appears more than once");
            let base = family.strip_prefix("muds_").expect("families are muds_-prefixed");
            let key = base.strip_suffix("_total").unwrap_or(base);
            assert!(
                json_keys.contains_key(key),
                "Prometheus family {family:?} has no JSON counterpart {key:?}"
            );
        }
    }
}
