//! Poison-tolerant locking helpers.
//!
//! A worker that panics mid-run is already contained by the scheduler's
//! `catch_unwind`; the only way a serve mutex gets poisoned is a panic in
//! a *test* or a bug elsewhere. Every critical section in this crate
//! leaves its structures consistent before calling anything that can
//! panic, so recovering the guard is sound — and it keeps one wedged
//! request from turning the whole daemon into a cascade of lock panics.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Locks `mutex`, recovering the guard from a poisoned lock.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] with the same poison recovery as [`lock`].
pub(crate) fn cond_wait<'a, T>(cond: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    // lint:allow(condvar-loop): this helper is the wait primitive itself;
    // every caller re-checks its predicate in a loop (which this same
    // lint enforces at those call sites).
    cond.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`] with the same poison recovery as [`lock`].
pub(crate) fn cond_wait_timeout<'a, T>(
    cond: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    // lint:allow(condvar-loop): wait primitive; predicate loops live at
    // the call sites, where this lint checks them.
    cond.wait_timeout(guard, timeout).unwrap_or_else(PoisonError::into_inner)
}
