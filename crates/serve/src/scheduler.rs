//! Concurrent job scheduler: a bounded queue in front of a fixed pool of
//! worker threads that execute profiling runs.
//!
//! Backpressure is explicit: [`Scheduler::submit`] fails immediately when
//! the queue is full, which the HTTP layer turns into `429 Too Many
//! Requests` + `Retry-After`. Each job carries a deadline; a job whose
//! deadline passes *while still queued* is cancelled without running
//! (its flight resolves with an error, so waiters fail fast instead of
//! paying for a computation nobody is waiting on). Jobs already running are
//! never killed — a client that stops waiting gets `202 Accepted`, the run
//! completes detached, and the result lands in the cache for the retry.
//!
//! Workers are plain `std::thread`s, deliberately *outside* the vendored
//! rayon pool: each profiling run keeps its full intra-run parallelism, and
//! because the ambient `muds-obs` registry is thread-local and workers
//! install none, every `profile()` call gets a private registry — job
//! metrics never bleed into each other or into the server counters.

use std::collections::{HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use muds_core::{profile, profile_to_json, Algorithm, ProfilerConfig};
use muds_table::Table;

use crate::cache::{CacheKey, Flight, ResultCache};
use crate::metrics::ServeMetrics;
use crate::sync::{cond_wait, lock};

/// Everything a worker needs to run one profiling job.
pub struct JobSpec {
    /// Dataset name for the response document.
    pub dataset: String,
    pub table: Arc<Table>,
    pub algorithm: Algorithm,
    pub config: ProfilerConfig,
    pub key: CacheKey,
    /// Trace id of the request that submitted this job (propagated
    /// `X-Muds-Trace` or server-minted), surfaced by `GET /jobs/:id`.
    pub trace: String,
}

/// Lifecycle of a job, as reported by `GET /jobs/:id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    Queued,
    Running,
    Done,
    /// Deadline passed while the job was still queued; it never ran.
    Expired,
    Failed(String),
}

impl JobStatus {
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Expired => "expired",
            JobStatus::Failed(_) => "failed",
        }
    }
}

/// Public view of a job's bookkeeping.
#[derive(Debug, Clone)]
pub struct JobRecord {
    pub id: u64,
    pub dataset: String,
    pub algorithm: Algorithm,
    pub status: JobStatus,
    /// Trace id of the submitting request.
    pub trace: String,
}

struct Job {
    id: u64,
    spec: JobSpec,
    flight: Arc<Flight>,
    deadline: Option<Instant>,
}

struct Inner {
    queue: VecDeque<Job>,
    jobs: HashMap<u64, JobRecord>,
    /// Finished job ids, oldest first, for bounded record retention.
    finished: VecDeque<u64>,
    next_id: u64,
}

struct Shared {
    inner: Mutex<Inner>,
    wake: Condvar,
    queue_capacity: usize,
    shutdown: AtomicBool,
    cache: Arc<ResultCache>,
    metrics: Arc<ServeMetrics>,
}

/// How many finished job records `GET /jobs/:id` can still see.
const FINISHED_RETENTION: usize = 1024;

/// Returned by [`Scheduler::submit`] when the queue is at capacity.
#[derive(Debug)]
pub struct QueueFull;

/// The scheduler. Dropping it does *not* stop workers; call
/// [`Scheduler::shutdown`] to drain and join.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    /// Spawns `workers` worker threads over a queue of `queue_capacity`.
    /// Fails with the OS error if a worker thread cannot be spawned;
    /// already-spawned workers are shut down before returning.
    pub fn new(
        workers: usize,
        queue_capacity: usize,
        cache: Arc<ResultCache>,
        metrics: Arc<ServeMetrics>,
    ) -> std::io::Result<Scheduler> {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                finished: VecDeque::new(),
                next_id: 0,
            }),
            wake: Condvar::new(),
            queue_capacity: queue_capacity.max(1),
            shutdown: AtomicBool::new(false),
            cache,
            metrics,
        });
        let mut handles = Vec::with_capacity(workers.max(1));
        for i in 0..workers.max(1) {
            let worker_shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("muds-serve-worker-{i}"))
                .spawn(move || worker_loop(worker_shared));
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    shared.shutdown.store(true, Ordering::Release);
                    shared.wake.notify_all();
                    for handle in handles {
                        // lint:allow(swallowed-result): already unwinding
                        // from the spawn error; a worker panic here must
                        // not mask it.
                        let _ = handle.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(Scheduler { shared, workers: Mutex::new(handles) })
    }

    /// Enqueues a job. Fails with [`QueueFull`] (→ 429) when the queue is
    /// at capacity or the scheduler is shutting down.
    pub fn submit(
        &self,
        spec: JobSpec,
        flight: Arc<Flight>,
        deadline: Option<Instant>,
    ) -> Result<u64, QueueFull> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            self.shared.metrics.jobs_rejected.inc();
            return Err(QueueFull);
        }
        let mut inner = lock(&self.shared.inner);
        if inner.queue.len() >= self.shared.queue_capacity {
            self.shared.metrics.jobs_rejected.inc();
            return Err(QueueFull);
        }
        inner.next_id += 1;
        let id = inner.next_id;
        flight.set_job_id(id);
        inner.jobs.insert(
            id,
            JobRecord {
                id,
                dataset: spec.dataset.clone(),
                algorithm: spec.algorithm,
                status: JobStatus::Queued,
                trace: spec.trace.clone(),
            },
        );
        inner.queue.push_back(Job { id, spec, flight, deadline });
        self.shared.metrics.jobs_submitted.inc();
        self.shared.metrics.queue_depth.set(inner.queue.len() as i64);
        drop(inner);
        self.shared.wake.notify_one();
        Ok(id)
    }

    /// Bookkeeping for a job id, if still retained.
    pub fn status(&self, id: u64) -> Option<JobRecord> {
        lock(&self.shared.inner).jobs.get(&id).cloned()
    }

    /// Jobs currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        lock(&self.shared.inner).queue.len()
    }

    /// Earliest deadline among queued jobs — the moment the queue is next
    /// guaranteed to free a slot (that job either starts or expires).
    /// `None` when the queue is empty or holds only deadline-less jobs.
    pub fn earliest_deadline(&self) -> Option<Instant> {
        lock(&self.shared.inner).queue.iter().filter_map(|j| j.deadline).min()
    }

    /// Stops accepting new jobs, drains everything already queued, and
    /// joins the workers. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake.notify_all();
        let handles: Vec<_> = lock(&self.workers).drain(..).collect();
        for handle in handles {
            // lint:allow(swallowed-result): a worker that panicked already
            // printed its panic; shutdown must still join the rest.
            let _ = handle.join();
        }
    }
}

/// `Retry-After` seconds until `deadline`, clamped to at least 1.
///
/// Whole-second truncation means a deadline under a second away (or
/// already past) would otherwise render as `Retry-After: 0`, which many
/// clients treat as "retry immediately" — turning backpressure into a
/// busy-loop against a full queue. The clamp keeps the header honest.
pub fn retry_after_secs(deadline: Option<Instant>) -> u64 {
    match deadline {
        Some(deadline) => deadline.saturating_duration_since(Instant::now()).as_secs().max(1),
        None => 1,
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut inner = lock(&shared.inner);
            loop {
                if let Some(job) = inner.queue.pop_front() {
                    shared.metrics.queue_depth.set(inner.queue.len() as i64);
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                inner = cond_wait(&shared.wake, inner);
            }
        };
        run_job(&shared, job);
    }
}

fn finish(shared: &Shared, id: u64, status: JobStatus) {
    let mut inner = lock(&shared.inner);
    if let Some(record) = inner.jobs.get_mut(&id) {
        record.status = status;
    }
    inner.finished.push_back(id);
    while inner.finished.len() > FINISHED_RETENTION {
        if let Some(old) = inner.finished.pop_front() {
            inner.jobs.remove(&old);
        }
    }
}

fn run_job(shared: &Shared, job: Job) {
    let Job { id, spec, flight, deadline } = job;
    if let Some(deadline) = deadline {
        if Instant::now() >= deadline {
            shared.metrics.jobs_expired.inc();
            // Bookkeeping first: anyone woken by the flight must already
            // see the final job status.
            finish(shared, id, JobStatus::Expired);
            shared.cache.abort(&spec.key, &flight, "job expired before it could run");
            return;
        }
    }
    {
        let mut inner = lock(&shared.inner);
        if let Some(record) = inner.jobs.get_mut(&id) {
            record.status = JobStatus::Running;
        }
    }
    shared.metrics.jobs_running.add(1);
    let started = Instant::now();
    // No ambient registry on this thread: profile() installs a fresh one,
    // so the result's metrics snapshot covers exactly this run.
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let result = profile(&spec.table, spec.algorithm, &spec.config);
        let columns = spec.table.column_names();
        profile_to_json(&result, &spec.dataset, &columns)
    }));
    shared.metrics.jobs_running.add(-1);
    match outcome {
        Ok(json) => {
            shared.metrics.job_latency_us.record_duration(started.elapsed());
            shared.metrics.jobs_completed.inc();
            finish(shared, id, JobStatus::Done);
            shared.cache.complete(&spec.key, &flight, Arc::new(json));
        }
        Err(panic) => {
            let message = panic_message(panic);
            shared.metrics.jobs_failed.inc();
            finish(shared, id, JobStatus::Failed(message.clone()));
            shared.cache.abort(&spec.key, &flight, &format!("profiling panicked: {message}"));
        }
    }
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Begin;
    use muds_table::fingerprint;
    use std::time::Duration;

    fn sample_table() -> Arc<Table> {
        Arc::new(
            Table::from_rows(
                "jobs",
                &["id", "grp", "val"],
                &[
                    vec!["1", "a", "x"],
                    vec!["2", "a", "x"],
                    vec!["3", "b", "y"],
                    vec!["4", "b", "z"],
                ],
            )
            .unwrap(),
        )
    }

    fn spec_for(table: &Arc<Table>, algorithm: Algorithm) -> JobSpec {
        let config = ProfilerConfig::default();
        JobSpec {
            dataset: "jobs".into(),
            table: Arc::clone(table),
            algorithm,
            config: config.clone(),
            key: CacheKey {
                fingerprint: fingerprint(table),
                algorithm,
                config: config.cache_key(),
            },
            trace: "t-test".into(),
        }
    }

    fn harness(workers: usize, queue: usize) -> (Scheduler, Arc<ResultCache>, Arc<ServeMetrics>) {
        let metrics = Arc::new(ServeMetrics::new());
        let cache = Arc::new(ResultCache::new(1 << 20, Arc::clone(&metrics)));
        let scheduler = Scheduler::new(workers, queue, Arc::clone(&cache), Arc::clone(&metrics))
            .expect("spawn workers");
        (scheduler, cache, metrics)
    }

    #[test]
    fn jobs_execute_and_results_land_in_the_cache() {
        let (scheduler, cache, metrics) = harness(2, 8);
        let table = sample_table();
        let spec = spec_for(&table, Algorithm::Muds);
        let key = spec.key.clone();
        let flight = match cache.begin(&key) {
            Begin::Leader(f) => f,
            _ => panic!("fresh key leads"),
        };
        let id = scheduler.submit(spec, Arc::clone(&flight), None).unwrap();
        let json = flight.wait(Duration::from_secs(30)).expect("completes").expect("succeeds");
        assert!(json.contains("\"algorithm\":\"MUDS\""));
        assert!(matches!(cache.begin(&key), Begin::Hit(_)));
        let record = scheduler.status(id).unwrap();
        assert_eq!(record.status, JobStatus::Done);
        assert_eq!(record.trace, "t-test", "job record keeps the submitting trace id");
        assert_eq!(metrics.jobs_completed.get(), 1);
        assert_eq!(metrics.job_latency_us.snapshot().count, 1);
        scheduler.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_backpressure() {
        // Zero... capacity 1 with no workers started yet is racy; instead
        // saturate a capacity-1 queue behind a single worker stuck on a
        // long-deadline job by submitting before workers can drain: use a
        // scheduler with 1 worker and fill the queue synchronously.
        let (scheduler, cache, metrics) = harness(1, 1);
        let table = sample_table();
        let mut accepted = 0;
        let mut rejected = 0;
        // Submit many jobs back-to-back; with one worker and a queue of
        // one, at least one must bounce (the worker cannot drain a queue
        // faster than the submit loop fills it for every submission).
        for i in 0..32 {
            let mut spec = spec_for(&table, Algorithm::Baseline);
            spec.key.config = format!("variant-{i}");
            let flight = match cache.begin(&spec.key) {
                Begin::Leader(f) => f,
                _ => panic!("distinct keys lead"),
            };
            match scheduler.submit(spec, Arc::clone(&flight), None) {
                Ok(_) => accepted += 1,
                Err(QueueFull) => {
                    cache.abort(
                        &CacheKey {
                            fingerprint: fingerprint(&table),
                            algorithm: Algorithm::Baseline,
                            config: format!("variant-{i}"),
                        },
                        &flight,
                        "rejected",
                    );
                    rejected += 1;
                }
            }
        }
        assert!(accepted >= 1);
        assert!(rejected >= 1, "a capacity-1 queue must reject under a burst");
        assert_eq!(metrics.jobs_rejected.get(), rejected);
        scheduler.shutdown();
    }

    #[test]
    fn queued_jobs_past_their_deadline_expire_without_running() {
        let (scheduler, cache, metrics) = harness(1, 8);
        let table = sample_table();
        let spec = spec_for(&table, Algorithm::Tane);
        let key = spec.key.clone();
        let flight = match cache.begin(&key) {
            Begin::Leader(f) => f,
            _ => panic!("fresh key leads"),
        };
        // Deadline already in the past: the worker must expire it.
        let id = scheduler
            .submit(spec, Arc::clone(&flight), Some(Instant::now() - Duration::from_millis(1)))
            .unwrap();
        let outcome = flight.wait(Duration::from_secs(10)).expect("resolves");
        assert!(outcome.is_err(), "expired jobs resolve their flight with an error");
        assert_eq!(scheduler.status(id).unwrap().status, JobStatus::Expired);
        assert_eq!(metrics.jobs_expired.get(), 1);
        assert_eq!(metrics.jobs_completed.get(), 0);
        // Nothing cached: the key leads again.
        assert!(matches!(cache.begin(&key), Begin::Leader(_)));
        scheduler.shutdown();
    }

    /// The 0-second boundary: deadlines under a second away (including
    /// ones already in the past) must clamp up to 1, never truncate to 0.
    #[test]
    fn retry_after_never_rounds_down_to_zero() {
        let now = Instant::now();
        assert_eq!(retry_after_secs(None), 1);
        assert_eq!(retry_after_secs(Some(now - Duration::from_secs(5))), 1, "past deadline");
        assert_eq!(retry_after_secs(Some(now)), 1, "deadline right now");
        assert_eq!(retry_after_secs(Some(now + Duration::from_millis(300))), 1, "sub-second");
        assert_eq!(retry_after_secs(Some(now + Duration::from_millis(999))), 1, "just under 1s");
        let far = retry_after_secs(Some(now + Duration::from_secs(30)));
        assert!((29..=30).contains(&far), "whole seconds for far deadlines, got {far}");
    }

    #[test]
    fn earliest_deadline_tracks_the_queue_front() {
        // One worker pinned on a running job, two queued behind it with
        // staggered deadlines: the earlier one is reported.
        let (scheduler, cache, _metrics) = harness(1, 8);
        let table = sample_table();
        let submit = |alg: Algorithm, tag: &str, deadline: Option<Instant>| {
            let mut spec = spec_for(&table, alg);
            spec.key.config = tag.to_string();
            let flight = match cache.begin(&spec.key) {
                Begin::Leader(f) => f,
                _ => panic!("distinct keys lead"),
            };
            scheduler.submit(spec, flight, deadline).unwrap();
        };
        let near = Instant::now() + Duration::from_secs(60);
        let far = Instant::now() + Duration::from_secs(120);
        submit(Algorithm::Muds, "running", None);
        submit(Algorithm::Baseline, "q-far", Some(far));
        submit(Algorithm::Tane, "q-near", Some(near));
        // Both deadline jobs may still be queued, or the worker may have
        // drained some; the reported deadline is never later than `far`.
        if let Some(d) = scheduler.earliest_deadline() {
            assert!(d <= far);
        }
        scheduler.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let (scheduler, cache, metrics) = harness(2, 16);
        let table = sample_table();
        let mut flights = Vec::new();
        for alg in Algorithm::ALL {
            let spec = spec_for(&table, alg);
            let flight = match cache.begin(&spec.key) {
                Begin::Leader(f) => f,
                _ => panic!("distinct keys lead"),
            };
            scheduler.submit(spec, Arc::clone(&flight), None).unwrap();
            flights.push(flight);
        }
        scheduler.shutdown();
        for flight in &flights {
            let outcome = flight.wait(Duration::from_millis(1)).expect("drained before join");
            assert!(outcome.is_ok());
        }
        assert_eq!(metrics.jobs_completed.get(), 4);
        assert_eq!(scheduler.queue_depth(), 0);
    }
}
