//! `muds-serve`: a long-running profiling daemon.
//!
//! The batch pipeline (`mudsprof profile`) pays the full cost of reading,
//! encoding, and profiling a dataset on every invocation. This crate turns
//! the profiler into a *service* with three ideas layered on top of the
//! existing algorithms:
//!
//! 1. **Dataset registry** ([`Registry`]) — datasets register once (from a
//!    server-side path or an uploaded CSV body) and are stored
//!    content-addressed by [`muds_table::Fingerprint`]: identical data is
//!    stored once, whatever it is named.
//! 2. **Result cache** ([`ResultCache`]) — profiling results are cached
//!    under `(fingerprint, algorithm, config)` with an LRU byte budget and
//!    single-flight dedup: N concurrent identical requests cost exactly one
//!    profiling run.
//! 3. **Job scheduler** ([`Scheduler`]) — a bounded queue in front of a
//!    fixed worker pool, with explicit backpressure (429), queued-job
//!    expiry, and graceful shutdown that drains in-flight work.
//!
//! The HTTP surface (std-only HTTP/1.1, [`http`]) is documented on
//! [`server`]. Start one with:
//!
//! ```no_run
//! use muds_serve::{ServeConfig, Server};
//! let server = Server::bind(ServeConfig::default()).unwrap();
//! println!("listening on {}", server.local_addr().unwrap());
//! server.run().unwrap();
//! ```

pub mod cache;
pub mod http;
pub mod metrics;
pub mod persist;
#[cfg(target_os = "linux")]
mod reactor;
pub mod registry;
pub mod scheduler;
pub mod server;
mod sync;

pub use cache::{Begin, CacheKey, Flight, ResultCache};
pub use metrics::ServeMetrics;
pub use persist::{Persist, Recovered};
pub use registry::{DatasetInfo, Registry};
pub use scheduler::{JobRecord, JobSpec, JobStatus, QueueFull, Scheduler};
pub use server::{ServeConfig, Server, ServerState};
