//! Load smoke test for the profiling daemon — the serving layer's
//! acceptance gate:
//!
//! * 64 concurrent `POST /profile` across 3 datasets × 4 algorithms with
//!   zero 5xx responses,
//! * a cache hit-rate above zero and a positive single-flight coalesce
//!   count,
//! * exactly one profiling run per distinct `(dataset, algorithm)` key,
//! * identical dependency payloads for identical keys regardless of how
//!   requests interleave or how many scheduler workers serve them.
//!
//! Everything runs in-process over real sockets; no external client.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use muds_core::json::parse_json;
use muds_core::{profile_from_json, Algorithm, ProfilePayload};
use muds_serve::{ServeConfig, Server, ServerState};

fn start_server(
    config: ServeConfig,
) -> (SocketAddr, Arc<ServerState>, std::thread::JoinHandle<()>) {
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    let state = server.state();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, state, handle)
}

fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    content_type: &str,
    body: &[u8],
) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    // `Connection: close` so `read_to_end` terminates — the server
    // otherwise keeps the connection open for reuse.
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n").expect("response head");
    let head = std::str::from_utf8(&raw[..head_end]).expect("utf-8 head");
    let mut lines = head.split("\r\n");
    let status: u16 = lines.next().unwrap().split(' ').nth(1).unwrap().parse().unwrap();
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, raw[head_end + 4..].to_vec())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
}

/// Generates a CSV big enough that one profiling run takes real wall time
/// (so concurrent requests overlap) with a mix of keys, FDs, and repeats.
/// `salt` varies the content per dataset.
fn dataset_csv(salt: u64, rows: usize) -> String {
    let mut out = String::from("id,grp,bucket,mod7,noise,tag,pair,wide\n");
    let mut state = salt.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    for i in 0..rows {
        let noise = next() % 97;
        out.push_str(&format!(
            "{i},g{},b{},m{},n{noise},t{},p{}-{},w{}\n",
            i % 11,
            i / 50,
            i % 7,
            (i as u64 + salt) % 5,
            i % 11,
            i % 7,
            noise % 13,
        ));
    }
    out
}

const DATASETS: [&str; 3] = ["alpha", "beta", "gamma"];

fn register_datasets(addr: SocketAddr) {
    for (i, name) in DATASETS.iter().enumerate() {
        let csv = dataset_csv(i as u64 + 1, 400 + 100 * i);
        let (status, _, body) =
            http(addr, "POST", &format!("/datasets?name={name}"), "text/csv", csv.as_bytes());
        assert_eq!(status, 201, "registration failed: {}", String::from_utf8_lossy(&body));
    }
}

fn profile_request(dataset: &str, algorithm: Algorithm) -> String {
    format!(
        "{{\"dataset\":\"{dataset}\",\"algorithm\":\"{}\",\"timeout_ms\":120000}}",
        algorithm.name()
    )
}

#[test]
fn sixty_four_concurrent_profiles_over_three_datasets() {
    let (addr, state, handle) = start_server(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        queue_capacity: 64,
        ..ServeConfig::default()
    });
    register_datasets(addr);

    const CLIENTS: usize = 64;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let results: Vec<(String, Algorithm, u16, String, Vec<u8>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    let dataset = DATASETS[i % DATASETS.len()];
                    let algorithm = Algorithm::ALL[i % Algorithm::ALL.len()];
                    let body = profile_request(dataset, algorithm);
                    barrier.wait();
                    let (status, headers, body) =
                        http(addr, "POST", "/profile", "application/json", body.as_bytes());
                    let disposition = header(&headers, "x-cache").unwrap_or("none").to_string();
                    (dataset.to_string(), algorithm, status, disposition, body)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    // Zero 5xx — and with a generous timeout and a queue sized for the
    // wave, every request resolves to a full 200.
    for (dataset, algorithm, status, _, body) in &results {
        assert!(
            *status < 500,
            "5xx for {dataset}/{algorithm:?}: {}",
            String::from_utf8_lossy(body)
        );
        assert_eq!(
            *status,
            200,
            "expected 200 for {dataset}/{algorithm:?}, got {status}: {}",
            String::from_utf8_lossy(body)
        );
    }

    // Identical keys yield identical dependency payloads, however the 64
    // requests interleaved across hit/miss/coalesced paths.
    let mut by_key: BTreeMap<(String, String), Vec<ProfilePayload>> = BTreeMap::new();
    for (dataset, algorithm, _, _, body) in &results {
        let payload = profile_from_json(std::str::from_utf8(body).expect("utf-8 response"))
            .expect("response parses as the wire format");
        assert_eq!(&payload.dataset, dataset);
        assert_eq!(payload.algorithm, *algorithm);
        by_key.entry((dataset.clone(), algorithm.name().to_string())).or_default().push(payload);
    }
    assert_eq!(by_key.len(), DATASETS.len() * Algorithm::ALL.len());
    for ((dataset, algorithm), payloads) in &by_key {
        for p in &payloads[1..] {
            assert_eq!(
                p, &payloads[0],
                "divergent payloads for {dataset}/{algorithm} under concurrency"
            );
        }
    }

    // A follow-up sweep is all cache hits.
    for dataset in DATASETS {
        for algorithm in Algorithm::ALL {
            let (status, headers, _) = http(
                addr,
                "POST",
                "/profile",
                "application/json",
                profile_request(dataset, algorithm).as_bytes(),
            );
            assert_eq!(status, 200);
            assert_eq!(header(&headers, "x-cache"), Some("hit"));
        }
    }

    // Server counters: exactly one profiling run per distinct key (the
    // single-flight guarantee at load), hits and coalesces both observed.
    let (status, _, metrics_body) = http(addr, "GET", "/metrics", "application/json", b"");
    assert_eq!(status, 200);
    let metrics = parse_json(std::str::from_utf8(&metrics_body).unwrap()).expect("metrics parse");
    let get = |k: &str| metrics.get(k).and_then(|v| v.as_u64()).unwrap_or_else(|| panic!("{k}"));
    assert_eq!(get("responses_5xx"), 0);
    assert_eq!(get("cache_misses"), 12, "one leader per (dataset, algorithm) key");
    assert_eq!(get("jobs_completed"), 12, "exactly one profiling run per key");
    assert_eq!(get("jobs_failed"), 0);
    assert_eq!(get("jobs_expired"), 0);
    assert!(get("cache_hits") >= 12, "follow-up sweep must hit");
    assert!(
        get("cache_coalesced") > 0,
        "64 simultaneous clients over 12 keys must coalesce (got metrics {})",
        String::from_utf8_lossy(&metrics_body)
    );
    assert_eq!(get("cache_hits") + get("cache_coalesced") + get("cache_misses"), 64 + 12);

    // Worker-count independence: a single-worker server produces the same
    // dependency payloads for the same content.
    let (addr1, state1, handle1) = start_server(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        ..ServeConfig::default()
    });
    register_datasets(addr1);
    for dataset in DATASETS {
        for algorithm in Algorithm::ALL {
            let (status, _, body) = http(
                addr1,
                "POST",
                "/profile",
                "application/json",
                profile_request(dataset, algorithm).as_bytes(),
            );
            assert_eq!(status, 200);
            let payload = profile_from_json(std::str::from_utf8(&body).unwrap()).unwrap();
            let group = &by_key[&(dataset.to_string(), algorithm.name().to_string())];
            assert_eq!(&payload, &group[0], "payloads differ across worker counts");
        }
    }
    state1.request_shutdown();
    handle1.join().unwrap();

    state.request_shutdown();
    handle.join().unwrap();
}

/// Counts this process's OS threads via /proc — the ground truth for
/// "connections cost file descriptors, not threads".
#[cfg(target_os = "linux")]
fn os_thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").expect("/proc/self/task").count()
}

/// The reactor's scalability gate: ≥ 1k concurrent idle keep-alive
/// connections are held with zero 5xx responses and an OS thread count
/// that does not grow with the connection count.
#[cfg(target_os = "linux")]
#[test]
fn a_thousand_idle_keep_alive_connections_cost_no_threads() {
    const CONNS: usize = 1000;
    let (addr, state, handle) = start_server(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        max_connections: CONNS + 64,
        ..ServeConfig::default()
    });

    // One request first so the reactor, handler pool, and scheduler
    // workers are all running before the baseline thread count is taken.
    let (status, _, _) = http(addr, "GET", "/healthz", "text/plain", b"");
    assert_eq!(status, 200);
    let threads_before = os_thread_count();
    let mut sockets = Vec::with_capacity(CONNS);
    for _ in 0..CONNS {
        let stream = TcpStream::connect(addr).expect("connect idle keep-alive socket");
        stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
        sockets.push(stream);
    }
    // Wait until the reactor has admitted every socket (accept happens on
    // its own readiness ticks).
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while (state.metrics.reactor_connections.get() as usize) < CONNS {
        assert!(std::time::Instant::now() < deadline, "reactor never admitted all sockets");
        std::thread::sleep(Duration::from_millis(20));
    }
    let threads_with_conns = os_thread_count();
    assert!(
        threads_with_conns <= threads_before + 2,
        "thread count must not scale with connections: {threads_before} before, \
         {threads_with_conns} with {CONNS} held open"
    );

    // Every sampled socket is alive and reusable: two requests per socket
    // over the same stream proves keep-alive reuse, not just acceptance.
    let read_response = |stream: &mut TcpStream| {
        let mut raw = Vec::new();
        let mut chunk = [0u8; 4096];
        let (head_end, content_length) = loop {
            if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = std::str::from_utf8(&raw[..pos]).expect("utf-8 head");
                let cl = head
                    .split("\r\n")
                    .find_map(|l| {
                        l.split_once(':').filter(|(n, _)| n.eq_ignore_ascii_case("content-length"))
                    })
                    .and_then(|(_, v)| v.trim().parse::<usize>().ok())
                    .expect("Content-Length header");
                break (pos, cl);
            }
            let n = stream.read(&mut chunk).expect("read head");
            assert!(n > 0, "connection closed mid head");
            raw.extend_from_slice(&chunk[..n]);
        };
        while raw.len() < head_end + 4 + content_length {
            let n = stream.read(&mut chunk).expect("read body");
            assert!(n > 0, "connection closed mid body");
            raw.extend_from_slice(&chunk[..n]);
        }
        let status: u16 = std::str::from_utf8(&raw[..head_end])
            .unwrap()
            .split(' ')
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        status
    };
    for i in (0..CONNS).step_by(97) {
        let stream = &mut sockets[i];
        for _ in 0..2 {
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n")
                .unwrap();
            assert_eq!(read_response(stream), 200, "socket {i} must stay usable");
        }
    }
    assert_eq!(state.metrics.responses_5xx.get(), 0, "zero 5xx under 1k idle connections");

    drop(sockets);
    state.request_shutdown();
    handle.join().unwrap();
}

#[test]
fn k_concurrent_identical_requests_run_one_profile() {
    let (addr, state, handle) = start_server(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServeConfig::default()
    });
    let csv = dataset_csv(42, 500);
    let (status, _, _) = http(addr, "POST", "/datasets?name=solo", "text/csv", csv.as_bytes());
    assert_eq!(status, 201);

    const K: usize = 8;
    let barrier = Arc::new(Barrier::new(K));
    std::thread::scope(|s| {
        for _ in 0..K {
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                barrier.wait();
                let (status, _, body) = http(
                    addr,
                    "POST",
                    "/profile",
                    "application/json",
                    profile_request("solo", Algorithm::Muds).as_bytes(),
                );
                assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
            });
        }
    });

    // The muds-obs counters on the server state are the ground truth:
    // one miss → one submitted job → one completed profiling run; the
    // other K-1 requests were hits or coalesced onto the flight.
    assert_eq!(state.metrics.cache_misses.get(), 1);
    assert_eq!(state.metrics.jobs_submitted.get(), 1);
    assert_eq!(state.metrics.jobs_completed.get(), 1, "exactly one profile ran for {K} clients");
    assert_eq!(
        state.metrics.cache_hits.get() + state.metrics.cache_coalesced.get(),
        (K - 1) as u64
    );

    state.request_shutdown();
    handle.join().unwrap();
}
