//! Restart-durability integration tests for `--data-dir` (DESIGN.md §14):
//!
//! * a clean restart replays the dataset registry and the Ready result
//!   cache — `/profile` after reboot is a cache hit with zero new runs,
//! * torn-write injection (truncated result, garbaged table blob,
//!   corrupted manifest) is recovered *surgically*: only the damaged
//!   entry is skipped (and counted in `persist.torn_skipped`), intact
//!   neighbours still hit,
//! * delta appends rebind names on disk with last-writer-wins, so a
//!   restart serves the post-delta content and never a stale cached
//!   result for the old fingerprint.
//!
//! Everything runs in-process over real sockets, with a fresh
//! `Server::bind` per "boot" so each boot's metrics start at zero.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use muds_core::json::{parse_json, JsonValue};
use muds_serve::{ServeConfig, Server, ServerState};

fn boot(data_dir: &Path) -> (SocketAddr, Arc<ServerState>, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        data_dir: Some(data_dir.to_path_buf()),
        ..ServeConfig::default()
    })
    .expect("bind with data dir");
    let addr = server.local_addr().unwrap();
    let state = server.state();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, state, handle)
}

fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    content_type: &str,
    body: &[u8],
) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n").expect("response head");
    let head = std::str::from_utf8(&raw[..head_end]).expect("utf-8 head");
    let mut lines = head.split("\r\n");
    let status: u16 = lines.next().unwrap().split(' ').nth(1).unwrap().parse().unwrap();
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, raw[head_end + 4..].to_vec())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("muds-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn profile(addr: SocketAddr, dataset: &str) -> (u16, Option<String>, Vec<u8>) {
    let body = format!("{{\"dataset\":\"{dataset}\",\"algorithm\":\"muds\"}}");
    let (status, headers, body) =
        http(addr, "POST", "/profile", "application/json", body.as_bytes());
    (status, header(&headers, "x-cache").map(str::to_string), body)
}

const CSV_A: &str = "id,grp,val\n1,a,x\n2,a,x\n3,b,y\n4,b,z\n";
const CSV_B: &str = "k,v\n1,p\n2,q\n3,p\n";

#[test]
fn restart_replays_registry_and_serves_cache_hits_without_rerunning() {
    let dir = fresh_dir("clean-restart");

    // Boot 1: register two datasets, profile both, shut down.
    let (addr, state, handle) = boot(&dir);
    let (status, _, _) = http(addr, "POST", "/datasets?name=a", "text/csv", CSV_A.as_bytes());
    assert_eq!(status, 201);
    let (status, _, _) = http(addr, "POST", "/datasets?name=b", "text/csv", CSV_B.as_bytes());
    assert_eq!(status, 201);
    let (status, disposition, first_payload) = profile(addr, "a");
    assert_eq!(status, 200);
    assert_eq!(disposition.as_deref(), Some("miss"));
    let (status, _, _) = profile(addr, "b");
    assert_eq!(status, 200);
    assert!(state.metrics.persist_writes.get() >= 4, "tables, manifest, and results hit disk");
    state.request_shutdown();
    handle.join().unwrap();

    // Boot 2 on the same dir: everything is back, nothing re-runs.
    let (addr, state, handle) = boot(&dir);
    assert!(state.metrics.persist_recovered.get() >= 4, "2 tables + 2 results recovered");
    assert_eq!(state.metrics.persist_torn_skipped.get(), 0);
    let (status, _, listing) = http(addr, "GET", "/datasets", "text/plain", b"");
    assert_eq!(status, 200);
    let listing = parse_json(std::str::from_utf8(&listing).unwrap()).unwrap();
    assert_eq!(
        listing.get("datasets").and_then(JsonValue::as_array).map(|a| a.len()),
        Some(2),
        "both name bindings replayed from the manifest"
    );
    for dataset in ["a", "b"] {
        let (status, disposition, payload) = profile(addr, dataset);
        assert_eq!(status, 200);
        assert_eq!(
            disposition.as_deref(),
            Some("hit"),
            "dataset {dataset:?} must hit the recovered cache"
        );
        if dataset == "a" {
            assert_eq!(payload, first_payload, "recovered document is byte-identical");
        }
    }
    assert_eq!(state.metrics.jobs_completed.get(), 0, "zero profiling runs after restart");
    assert_eq!(state.metrics.cache_misses.get(), 0);
    state.request_shutdown();
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_files_are_skipped_surgically_and_intact_entries_still_hit() {
    let dir = fresh_dir("torn-write");

    let (addr, state, handle) = boot(&dir);
    let (status, _, _) = http(addr, "POST", "/datasets?name=good", "text/csv", CSV_A.as_bytes());
    assert_eq!(status, 201);
    let (status, _, body) =
        http(addr, "POST", "/datasets?name=victim", "text/csv", CSV_B.as_bytes());
    assert_eq!(status, 201);
    let victim_fp = parse_json(std::str::from_utf8(&body).unwrap())
        .unwrap()
        .get("fingerprint")
        .and_then(JsonValue::as_str)
        .unwrap()
        .to_string();
    assert_eq!(profile(addr, "good").0, 200);
    assert_eq!(profile(addr, "victim").0, 200);
    state.request_shutdown();
    handle.join().unwrap();

    // Torn-write injection, one file per failure mode:
    // 1. victim's table blob: garbage bytes (fingerprint mismatch).
    let table_path = dir.join("tables").join(format!("{victim_fp}.csv"));
    assert!(table_path.exists(), "table blob was persisted");
    std::fs::write(&table_path, b"k,v\ntampered,rows\n").unwrap();
    // 2. victim's result document: truncated mid-payload (torn write).
    let victim_result = std::fs::read_dir(dir.join("results"))
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .find(|p| p.file_name().unwrap().to_str().unwrap().starts_with(&victim_fp))
        .expect("victim result file");
    let full = std::fs::read(&victim_result).unwrap();
    std::fs::write(&victim_result, &full[..full.len() / 2]).unwrap();
    // 3. a stale tmp file (crash between stage and rename).
    std::fs::write(dir.join("tmp").join("999.tmp"), b"half a write").unwrap();

    let (addr, state, handle) = boot(&dir);
    // The damaged table, its now-orphaned name binding, and the truncated
    // result are each skipped; good's table and result survive.
    assert!(
        state.metrics.persist_torn_skipped.get() >= 3,
        "torn table + orphaned binding + torn result, got {}",
        state.metrics.persist_torn_skipped.get()
    );
    assert!(state.metrics.persist_recovered.get() >= 2, "good's table and result recovered");
    let (status, disposition, _) = profile(addr, "good");
    assert_eq!(status, 200);
    assert_eq!(disposition.as_deref(), Some("hit"), "intact dataset hits after recovery");
    assert_eq!(state.metrics.jobs_completed.get(), 0);
    // The victim is gone (its blob was damaged beyond trust)...
    let (status, _, _) = profile(addr, "victim");
    assert_eq!(status, 404, "datasets with torn blobs are dropped, not served corrupt");
    // ...and both damaged files were deleted so the next boot is clean.
    assert!(!table_path.exists(), "torn table blob deleted");
    assert!(!victim_result.exists(), "torn result document deleted");
    // Re-registering the same content heals the dataset (content-addressed:
    // same bytes, same fingerprint).
    let (status, _, body) =
        http(addr, "POST", "/datasets?name=victim", "text/csv", CSV_B.as_bytes());
    assert_eq!(status, 201, "{}", String::from_utf8_lossy(&body));
    assert_eq!(profile(addr, "victim").0, 200);
    state.request_shutdown();
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_manifest_loses_bindings_but_not_blobs() {
    let dir = fresh_dir("torn-manifest");

    let (addr, state, handle) = boot(&dir);
    let (status, _, body) = http(addr, "POST", "/datasets?name=t", "text/csv", CSV_A.as_bytes());
    assert_eq!(status, 201);
    let fp = parse_json(std::str::from_utf8(&body).unwrap())
        .unwrap()
        .get("fingerprint")
        .and_then(JsonValue::as_str)
        .unwrap()
        .to_string();
    assert_eq!(profile(addr, "t").0, 200);
    state.request_shutdown();
    handle.join().unwrap();

    std::fs::write(dir.join("manifest.json"), b"{\"version\":1,\"names\":{tor").unwrap();

    let (addr, state, handle) = boot(&dir);
    assert!(state.metrics.persist_torn_skipped.get() >= 1, "manifest counted as torn");
    // The name is gone, but the blob and its cached result are content-
    // addressed: profiling by fingerprint still hits with zero runs.
    let (status, _, _) = profile(addr, "t");
    assert_eq!(status, 404, "binding lost with the manifest");
    let (status, disposition, _) = profile(addr, &fp);
    assert_eq!(status, 200);
    assert_eq!(disposition.as_deref(), Some("hit"), "fingerprint lookup survives");
    assert_eq!(state.metrics.jobs_completed.get(), 0);
    state.request_shutdown();
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn delta_appends_rebind_names_on_disk_with_last_writer_wins() {
    let dir = fresh_dir("delta-rebind");

    let (addr, state, handle) = boot(&dir);
    let (status, _, _) = http(addr, "POST", "/datasets?name=t", "text/csv", CSV_A.as_bytes());
    assert_eq!(status, 201);
    assert_eq!(profile(addr, "t").0, 200);
    // Append one row: the name rebinds to the new fingerprint and the old
    // fingerprint's cached result is surgically evicted — in memory and on
    // disk.
    let (status, _, body) =
        http(addr, "POST", "/datasets/t/append", "text/csv", b"id,grp,val\n5,c,w\n");
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let doc = parse_json(std::str::from_utf8(&body).unwrap()).unwrap();
    let new_fp = doc.get("fingerprint").and_then(JsonValue::as_str).unwrap().to_string();
    let old_fp = doc.get("previous_fingerprint").and_then(JsonValue::as_str).unwrap().to_string();
    assert_ne!(new_fp, old_fp);
    state.request_shutdown();
    handle.join().unwrap();

    // The old fingerprint's result is gone from disk (surgical eviction
    // wrote through); the new table blob exists.
    let stale_results = std::fs::read_dir(dir.join("results"))
        .unwrap()
        .flatten()
        .filter(|e| e.file_name().to_str().unwrap().starts_with(&old_fp))
        .count();
    assert_eq!(stale_results, 0, "evicted results are deleted on disk too");
    assert!(dir.join("tables").join(format!("{new_fp}.csv")).exists());

    let (addr, state, handle) = boot(&dir);
    let (status, _, listing) = http(addr, "GET", "/datasets", "text/plain", b"");
    assert_eq!(status, 200);
    let listing = std::str::from_utf8(&listing).unwrap().to_string();
    assert!(listing.contains(&new_fp), "manifest rebound to the post-delta fingerprint");
    assert!(listing.contains("\"rows\":5"), "restart serves the appended table: {listing}");
    // Profiling after restart must re-run (the old result was evicted, the
    // new fingerprint was never profiled) — never serve the stale payload.
    let (status, disposition, _) = profile(addr, "t");
    assert_eq!(status, 200);
    assert_eq!(disposition.as_deref(), Some("miss"), "no stale hit for pre-delta content");
    assert_eq!(state.metrics.jobs_completed.get(), 1);
    state.request_shutdown();
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
