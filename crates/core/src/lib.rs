//! Holistic data profiling: the MUDS algorithm and its competitors.
//!
//! This crate is the reproduction of the core contribution of *"Holistic
//! Data Profiling: Simultaneous Discovery of Various Metadata"* (Ehrlich et
//! al., EDBT 2016): algorithms that discover unary inclusion dependencies,
//! minimal unique column combinations, and minimal functional dependencies
//! **in one execution**, sharing I/O, data structures, and pruning
//! information across the three tasks.
//!
//! # Quick start
//!
//! ```
//! use muds_core::{profile, Algorithm, ProfilerConfig};
//! use muds_table::Table;
//!
//! let table = Table::from_rows(
//!     "people",
//!     &["id", "dept", "dept_head"],
//!     &[
//!         vec!["1", "cs", "dijkstra"],
//!         vec!["2", "cs", "dijkstra"],
//!         vec!["3", "ee", "shannon"],
//!     ],
//! ).unwrap();
//! let result = profile(&table, Algorithm::Muds, &ProfilerConfig::default());
//! // dept → dept_head is a minimal FD; id is the key.
//! assert!(result.fds.len() >= 2);
//! assert_eq!(result.minimal_uccs.len(), 1);
//! ```
//!
//! # Entry points
//!
//! * [`profile`] / [`profile_csv`] — Metanome-style uniform runner over any
//!   [`Algorithm`].
//! * [`muds`] — the full MUDS report with Figure-8-granularity phase
//!   timings and per-phase work counters.
//! * [`holistic_fun`] — the §3.2 holistic baseline.
//! * [`baseline`] / [`baseline_csv`] — the sequential SPIDER → DUCC → FUN
//!   execution.

mod baseline;
mod holistic_fun;
mod incremental;
pub mod json;
pub mod muds;
mod profiler;
mod serialize;

pub use baseline::{baseline, baseline_csv, BaselineReport, BaselineTimings};
pub use holistic_fun::{holistic_fun, HolisticFunReport, HolisticFunTimings};
pub use incremental::{apply_incremental, IncrementalOutcome};
pub use muds::{muds, MudsConfig, MudsPhaseTimings, MudsReport, MudsStats, ShadowLookup};
pub use profiler::{profile, profile_csv, Algorithm, Phase, ProfileResult, ProfilerConfig};
pub use serialize::{profile_from_json, profile_to_json, ProfilePayload};
// Re-exported so downstream layers (CLI, serve, check) consume the stats
// types without a direct muds-stats dependency.
pub use muds_stats::{
    detect_format, ColumnStats, FkCandidate, IdentifierCandidate, NumericStats, QuantileSketch,
    SemanticType, StatsProfile, ValueFormat, STATS_SCHEMA_VERSION,
};
