//! The sequential baseline (§6): SPIDER, then DUCC, then FUN, each run in
//! isolation.
//!
//! This reproduces how profiling is done without a holistic algorithm: three
//! independent executions that share nothing. Each task pays for its own
//! input scan (re-parsing the CSV text when available, otherwise re-encoding
//! the table) and builds its own PLIs — exactly the duplicated cost the
//! holistic algorithms eliminate (§1: shared I/O, shared data structures).

use std::time::Duration;

use muds_fd::{fun, FdSet};
use muds_ind::{spider, Ind};
use muds_lattice::{ColumnSet, WalkConfig};
use muds_pli::PliCache;
use muds_table::{table_from_csv, CsvOptions, Table};
use muds_ucc::{ducc, DuccConfig};

/// Per-task timings of the sequential baseline.
#[derive(Debug, Clone, Default)]
pub struct BaselineTimings {
    /// SPIDER including its own input scan.
    pub spider: Duration,
    /// DUCC including its own input scan and PLI build.
    pub ducc: Duration,
    /// FUN including its own input scan and PLI build.
    pub fun: Duration,
}

impl BaselineTimings {
    pub fn total(&self) -> Duration {
        self.spider + self.ducc + self.fun
    }
}

/// Result of the sequential baseline.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    pub inds: Vec<Ind>,
    pub minimal_uccs: Vec<ColumnSet>,
    pub fds: FdSet,
    pub timings: BaselineTimings,
}

/// Runs the sequential baseline on already-parsed `table`, simulating the
/// per-task input scan by re-encoding the table for each algorithm.
pub fn baseline(table: &Table, seed: u64) -> BaselineReport {
    let names = table.column_names();
    let rows: Vec<Vec<String>> = (0..table.num_rows())
        .map(|r| table.row(r).iter().map(|v| v.unwrap_or("").to_string()).collect())
        .collect();
    // lint:allow(panic): the rows were just read out of an
    // already-validated Table, so re-encoding them cannot produce a shape
    // error; a failure is an internal bug worth a loud abort.
    let rescan = || Table::from_rows(table.name(), &names, &rows).expect("re-encoding valid table");
    run_baseline(rescan, seed)
}

/// Runs the sequential baseline on CSV text, re-parsing it for every task —
/// the honest analogue of the paper's three independent file reads.
pub fn baseline_csv(name: &str, csv: &str, options: &CsvOptions, seed: u64) -> BaselineReport {
    // lint:allow(panic): profile_csv parses this exact CSV before
    // dispatching here, so the re-parse per task cannot fail differently.
    let rescan = || table_from_csv(name, csv, options).expect("valid csv");
    run_baseline(rescan, seed)
}

fn run_baseline<F: Fn() -> Table>(rescan: F, seed: u64) -> BaselineReport {
    let mut timings = BaselineTimings::default();

    // Task 1: SPIDER, with its own scan.
    let span = muds_obs::span("SPIDER");
    let t = rescan();
    let inds = spider(&t);
    timings.spider = span.stop();

    // Task 2: DUCC, with its own scan and PLIs.
    let span = muds_obs::span("DUCC");
    let t = rescan();
    let mut cache = PliCache::new(&t);
    let ducc_result = ducc(&mut cache, &DuccConfig { walk: WalkConfig { seed } });
    timings.ducc = span.stop();
    let minimal_uccs = ducc_result.minimal_uccs;

    // Task 3: FUN, with its own scan and PLIs (UCC byproduct discarded —
    // the sequential baseline does not use it).
    let span = muds_obs::span("FUN");
    let t = rescan();
    let mut cache = PliCache::new(&t);
    let fds = fun(&mut cache).fds;
    timings.fun = span.stop();

    BaselineReport { inds, minimal_uccs, fds, timings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muds_fd::naive_minimal_fds;
    use muds_ind::naive_inds;
    use muds_ucc::naive_minimal_uccs;

    #[test]
    fn baseline_matches_ground_truth() {
        let t = Table::from_rows(
            "t",
            &["id", "grp", "val"],
            &[vec!["1", "a", "x"], vec!["2", "a", "x"], vec!["3", "b", "y"]],
        )
        .unwrap();
        let r = baseline(&t, 1);
        assert_eq!(r.inds, naive_inds(&t));
        assert_eq!(r.minimal_uccs, naive_minimal_uccs(&t));
        assert_eq!(r.fds.to_sorted_vec(), naive_minimal_fds(&t).to_sorted_vec());
    }

    #[test]
    fn csv_baseline_matches_table_baseline() {
        let csv = "a,b,c\n1,x,p\n2,x,q\n3,y,p\n";
        let t = table_from_csv("t", csv, &CsvOptions::default()).unwrap();
        let r1 = baseline_csv("t", csv, &CsvOptions::default(), 7);
        let r2 = baseline(&t, 7);
        assert_eq!(r1.inds, r2.inds);
        assert_eq!(r1.minimal_uccs, r2.minimal_uccs);
        assert_eq!(r1.fds, r2.fds);
    }

    #[test]
    fn all_three_timings_are_populated() {
        let t = Table::from_rows("t", &["a", "b"], &[vec!["1", "2"], vec!["2", "3"]]).unwrap();
        let r = baseline(&t, 1);
        // All tasks ran; totals are the sum.
        assert_eq!(r.timings.total(), r.timings.spider + r.timings.ducc + r.timings.fun);
    }
}
