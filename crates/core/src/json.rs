//! Minimal recursive-descent JSON parser (std-only, like the emitter in
//! `muds-obs`).
//!
//! The serving layer and the `--format json` CLI path need to *read* JSON
//! — request bodies, and parse-back verification of the `ProfileResult`
//! wire format — not just write it. This is a small, strict RFC 8259
//! subset: no comments, no trailing commas, `\uXXXX` escapes (including
//! surrogate pairs), numbers parsed as `f64`.

use std::collections::BTreeMap;
use std::fmt;

/// Appends `s` to `out` as a JSON string literal (quoted, escaped). The
/// escaping inverse of what [`parse_json`] accepts; shared by the
/// `ProfileResult` wire format and the serving layer's response bodies.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// [`write_json_string`] returning a fresh `String`.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_json_string(&mut out, s);
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    /// Object keys are kept sorted (last duplicate wins), making
    /// re-serialization canonical.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member of an object, if this is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Number as a non-negative integer (floors; `None` for negatives,
    /// non-numbers, and non-finite values).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if n.is_finite() && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// Parse error with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses `input` as one JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse_json(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {text:?}")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .ok()
            .and_then(|s| u16::from_str_radix(s, 16).ok())
            .ok_or_else(|| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(hex)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000
                                        + (((hi as u32) - 0xD800) << 10)
                                        + ((lo as u32) - 0xDC00);
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("unpaired surrogate"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar (input is &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError { offset: start, message: "invalid number".to_string() })?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| JsonError { offset: start, message: format!("invalid number {text:?}") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse_json("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse_json("-1.5e2").unwrap().as_f64(), Some(-150.0));
        assert_eq!(parse_json("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse_json(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(|c| c.as_str()), Some("x"));
        let a = v.get("a").and_then(|a| a.as_array()).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[2].get("b"), Some(&JsonValue::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse_json(r#""a\"b\\c\ndA😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA😀"));
        assert!(parse_json(r#""\uD800""#).is_err(), "unpaired surrogate rejected");
        assert!(parse_json(r#""\q""#).is_err(), "unknown escape rejected");
    }

    /// Surrogate-escape edge cases: a high surrogate at end-of-string,
    /// followed by a non-`\u` escape, or standing alone must all produce a
    /// typed [`JsonError`] carrying the failure offset — never a panic,
    /// never a silent U+FFFD. A well-formed split pair round-trips to the
    /// astral scalar it encodes.
    #[test]
    fn surrogate_escapes_fail_typed_or_round_trip() {
        // Lone high surrogate, string ends right after it.
        let err = parse_json(r#""\uD800""#).unwrap_err();
        assert!(err.message.contains("unpaired high surrogate"), "{err}");
        assert!(err.offset > 0, "error carries a position: {err}");
        // High surrogate at hard EOF (unterminated string).
        let err = parse_json(r#""\uD800"#).unwrap_err();
        assert!(err.message.contains("surrogate") || err.message.contains("unterminated"), "{err}");
        // High surrogate followed by a non-\u escape.
        let err = parse_json(r#""\uD800\n""#).unwrap_err();
        assert!(err.message.contains("unpaired high surrogate"), "{err}");
        // High surrogate followed by a \u escape that is not a low half.
        let err = parse_json("\"\\uD800\\u0041\"").unwrap_err();
        assert!(err.message.contains("invalid low surrogate"), "{err}");
        // High surrogate followed by a plain character.
        let err = parse_json("\"\\uD800A\"").unwrap_err();
        assert!(err.message.contains("unpaired high surrogate"), "{err}");
        // Lone low surrogate.
        let err = parse_json(r#""\uDC00""#).unwrap_err();
        assert!(err.message.contains("unpaired surrogate"), "{err}");
        // A proper split pair decodes to the astral scalar and survives a
        // serialize → parse round trip.
        let v = parse_json(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        let reserialized = json_string(v.as_str().unwrap());
        assert_eq!(parse_json(&reserialized).unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\"}", "{\"a\":1,}", "[1 2]", "tru", "1 2", "{1:2}"] {
            assert!(parse_json(bad).is_err(), "{bad:?} should fail");
        }
        let err = parse_json("[1, @]").unwrap_err();
        assert!(err.to_string().contains("byte 4"), "{err}");
    }

    #[test]
    fn accessors_are_type_strict() {
        let v = parse_json(r#"{"n":-3,"s":"x"}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), None, "negative is not a u64");
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-3.0));
        assert_eq!(v.get("s").unwrap().as_u64(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.as_array(), None);
        assert!(v.as_object().is_some());
    }

    #[test]
    fn round_trips_obs_snapshot_json() {
        let mut snap = muds_obs::MetricsSnapshot::default();
        snap.counters.insert("a.b".into(), 3);
        snap.gauges.insert("g".into(), -1);
        let v = parse_json(&snap.to_json()).unwrap();
        assert_eq!(v.get("counters").unwrap().get("a.b").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("gauges").unwrap().get("g").unwrap().as_f64(), Some(-1.0));
    }
}
