//! Wire format for profiling results.
//!
//! One canonical JSON shape serves three consumers: `mudsprof profile
//! --format json` (machine-readable discovery output), the `muds-serve`
//! daemon's `POST /profile` responses, and the differential fuzzer's
//! round-trip invariant. The dependency payload is serialized in canonical
//! sorted order, so two runs that discovered the same metadata — e.g. the
//! same `(dataset, algorithm)` at different `--threads` — produce
//! byte-identical documents.
//!
//! ```json
//! {
//!   "dataset": "uniprot",
//!   "algorithm": "MUDS",
//!   "columns": ["id", "name"],
//!   "inds": [{"dependent": 0, "referenced": 1}],
//!   "uccs": [[0], [1, 2]],
//!   "fds": [{"lhs": [0], "rhs": 1}],
//!   "metrics": { ... muds-obs MetricsSnapshot ... }
//! }
//! ```
//!
//! When the run was configured with `stats = true` the document also
//! carries a schema-versioned `column_profiles` section (per-column
//! statistics, value formats, semantic types, quality scores) and a
//! `relationships` section (identifier candidates from minimal UCCs, FK
//! candidates from unary INDs). Both round-trip: every `f64` is written
//! with Rust's shortest-roundtrip formatting, which the parser's
//! `str::parse::<f64>` recovers bit-exactly.
//!
//! [`profile_from_json`] parses the document back into a
//! [`ProfilePayload`]; `metrics` is emission-only (counters are an
//! observability sidecar, not part of the dependency payload contract).

use muds_fd::FdSet;
use muds_ind::Ind;
use muds_lattice::ColumnSet;
use muds_stats::{
    ColumnStats, FkCandidate, IdentifierCandidate, NumericStats, SemanticType, StatsProfile,
    ValueFormat, STATS_SCHEMA_VERSION,
};

use crate::json::{parse_json, JsonValue};
use crate::profiler::{Algorithm, ProfileResult};

/// The dependency payload of one profiling run — everything a downstream
/// consumer of discovered metadata needs, detached from timings and
/// counters. This is the unit the round-trip invariant compares.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilePayload {
    /// Dataset identifier (registry name or table name).
    pub dataset: String,
    /// Algorithm that produced the payload.
    pub algorithm: Algorithm,
    /// Column names, in schema order (IND/UCC/FD indices refer to these).
    pub columns: Vec<String>,
    /// Unary INDs, sorted.
    pub inds: Vec<Ind>,
    /// Minimal UCCs, sorted.
    pub uccs: Vec<ColumnSet>,
    /// Minimal FDs.
    pub fds: FdSet,
    /// Single-scan column statistics and dependency classifications, when
    /// the run was configured with `stats = true`.
    pub stats: Option<StatsProfile>,
}

impl ProfilePayload {
    /// Extracts the canonical payload from a [`ProfileResult`].
    pub fn from_result(result: &ProfileResult, dataset: &str, columns: &[&str]) -> Self {
        let mut inds = result.inds.clone();
        inds.sort();
        let mut uccs = result.minimal_uccs.clone();
        uccs.sort();
        ProfilePayload {
            dataset: dataset.to_string(),
            algorithm: result.algorithm,
            columns: columns.iter().map(|c| c.to_string()).collect(),
            inds,
            uccs,
            fds: result.fds.clone(),
            stats: result.stats.clone(),
        }
    }
}

use crate::json::write_json_string as write_string;

fn write_column_set(out: &mut String, set: &ColumnSet) {
    out.push('[');
    for (i, col) in set.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&col.to_string());
    }
    out.push(']');
}

/// Shortest-roundtrip `f64` formatting: `str::parse::<f64>` on the output
/// recovers the exact bits, which is what the fuzz round-trip invariant
/// compares. Stats are NaN/∞-free by construction, so the output is
/// always valid JSON.
fn write_f64(out: &mut String, v: f64) {
    debug_assert!(v.is_finite(), "stats payloads are finite by construction");
    out.push_str(&format!("{v}"));
}

fn write_numeric_stats(out: &mut String, n: &NumericStats) {
    for (i, (key, value)) in [
        ("min", n.min),
        ("max", n.max),
        ("mean", n.mean),
        ("variance", n.variance),
        ("q25", n.q25),
        ("median", n.median),
        ("q75", n.q75),
    ]
    .iter()
    .enumerate()
    {
        out.push(if i == 0 { '{' } else { ',' });
        out.push_str(&format!("\"{key}\":"));
        write_f64(out, *value);
    }
    out.push('}');
}

fn write_column_stats(out: &mut String, c: &ColumnStats) {
    out.push_str(&format!(
        "{{\"column\":{},\"rows\":{},\"nulls\":{},\"distinct\":{}",
        c.column, c.rows, c.nulls, c.distinct
    ));
    out.push_str(",\"null_fraction\":");
    write_f64(out, c.null_fraction);
    out.push_str(",\"distinct_fraction\":");
    write_f64(out, c.distinct_fraction);
    out.push_str(",\"entropy\":");
    write_f64(out, c.entropy);
    out.push_str(",\"min\":");
    match &c.min {
        Some(v) => write_string(out, v),
        None => out.push_str("null"),
    }
    out.push_str(",\"max\":");
    match &c.max {
        Some(v) => write_string(out, v),
        None => out.push_str("null"),
    }
    out.push_str(&format!(",\"min_length\":{},\"max_length\":{}", c.min_length, c.max_length));
    out.push_str(",\"avg_length\":");
    write_f64(out, c.avg_length);
    out.push_str(&format!(",\"format\":\"{}\"", c.format.name()));
    out.push_str(",\"format_consistency\":");
    write_f64(out, c.format_consistency);
    out.push_str(&format!(",\"semantic_type\":\"{}\"", c.semantic_type.name()));
    out.push_str(",\"quality\":");
    write_f64(out, c.quality);
    out.push_str(",\"numeric\":");
    match &c.numeric {
        Some(n) => write_numeric_stats(out, n),
        None => out.push_str("null"),
    }
    out.push('}');
}

/// Appends the `column_profiles` and `relationships` sections (leading
/// comma included — called between the `fds` array and `metrics`).
fn write_stats_sections(out: &mut String, stats: &StatsProfile) {
    out.push_str(&format!(
        ",\"column_profiles\":{{\"schema\":{STATS_SCHEMA_VERSION},\"columns\":["
    ));
    for (i, c) in stats.columns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_column_stats(out, c);
    }
    out.push_str("]},\"relationships\":{\"identifiers\":[");
    for (i, ident) in stats.identifiers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"columns\":[");
        for (j, col) in ident.columns.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&col.to_string());
        }
        out.push_str(&format!("],\"null_free\":{},\"score\":", ident.null_free));
        write_f64(out, ident.score);
        out.push('}');
    }
    out.push_str("],\"foreign_keys\":[");
    for (i, fk) in stats.foreign_keys.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"dependent\":{},\"referenced\":{},\"coverage\":",
            fk.dependent, fk.referenced
        ));
        write_f64(out, fk.coverage);
        out.push('}');
    }
    out.push_str("]}");
}

/// Serializes the dependency payload (sorted, canonical) plus the result's
/// metrics snapshot into the wire document described in the module docs.
pub fn profile_to_json(result: &ProfileResult, dataset: &str, columns: &[&str]) -> String {
    let payload = ProfilePayload::from_result(result, dataset, columns);
    let mut out = String::with_capacity(1024);
    out.push_str("{\"dataset\":");
    write_string(&mut out, &payload.dataset);
    out.push_str(",\"algorithm\":");
    write_string(&mut out, payload.algorithm.name());
    out.push_str(",\"columns\":[");
    for (i, name) in payload.columns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_string(&mut out, name);
    }
    out.push_str("],\"inds\":[");
    for (i, ind) in payload.inds.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"dependent\":{},\"referenced\":{}}}",
            ind.dependent, ind.referenced
        ));
    }
    out.push_str("],\"uccs\":[");
    for (i, ucc) in payload.uccs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_column_set(&mut out, ucc);
    }
    out.push_str("],\"fds\":[");
    for (i, fd) in payload.fds.to_sorted_vec().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"lhs\":");
        write_column_set(&mut out, &fd.lhs);
        out.push_str(&format!(",\"rhs\":{}}}", fd.rhs));
    }
    out.push(']');
    if let Some(stats) = &payload.stats {
        write_stats_sections(&mut out, stats);
    }
    out.push_str(",\"metrics\":");
    out.push_str(&result.metrics.to_json());
    out.push('}');
    out
}

fn column_set_from_json(value: &JsonValue, what: &str) -> Result<ColumnSet, String> {
    let items = value.as_array().ok_or_else(|| format!("{what} must be an array"))?;
    let mut set = ColumnSet::empty();
    for item in items {
        let col = item.as_usize().ok_or_else(|| format!("{what} entries must be indices"))?;
        if col >= muds_table::MAX_COLUMNS {
            return Err(format!("{what} index {col} out of range"));
        }
        set.insert(col);
    }
    Ok(set)
}

fn stats_f64(entry: &JsonValue, key: &str) -> Result<f64, String> {
    entry.get(key).and_then(JsonValue::as_f64).ok_or_else(|| format!("stats missing \"{key}\""))
}

fn stats_u64(entry: &JsonValue, key: &str) -> Result<u64, String> {
    entry.get(key).and_then(JsonValue::as_u64).ok_or_else(|| format!("stats missing \"{key}\""))
}

fn stats_usize(entry: &JsonValue, key: &str) -> Result<usize, String> {
    entry.get(key).and_then(JsonValue::as_usize).ok_or_else(|| format!("stats missing \"{key}\""))
}

fn optional_string(entry: &JsonValue, key: &str) -> Result<Option<String>, String> {
    match entry.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => {
            v.as_str().map(|s| Some(s.to_string())).ok_or(format!("\"{key}\" must be a string"))
        }
    }
}

fn numeric_stats_from_json(entry: &JsonValue) -> Result<NumericStats, String> {
    Ok(NumericStats {
        min: stats_f64(entry, "min")?,
        max: stats_f64(entry, "max")?,
        mean: stats_f64(entry, "mean")?,
        variance: stats_f64(entry, "variance")?,
        q25: stats_f64(entry, "q25")?,
        median: stats_f64(entry, "median")?,
        q75: stats_f64(entry, "q75")?,
    })
}

fn column_stats_from_json(entry: &JsonValue) -> Result<ColumnStats, String> {
    let format_name =
        entry.get("format").and_then(|v| v.as_str()).ok_or("stats missing \"format\"")?;
    let format = ValueFormat::from_name(format_name)
        .ok_or_else(|| format!("unknown value format {format_name:?}"))?;
    let semantic_name = entry
        .get("semantic_type")
        .and_then(|v| v.as_str())
        .ok_or("stats missing \"semantic_type\"")?;
    let semantic_type = SemanticType::from_name(semantic_name)
        .ok_or_else(|| format!("unknown semantic type {semantic_name:?}"))?;
    let numeric = match entry.get("numeric") {
        None | Some(JsonValue::Null) => None,
        Some(n) => Some(numeric_stats_from_json(n)?),
    };
    Ok(ColumnStats {
        column: stats_usize(entry, "column")?,
        rows: stats_u64(entry, "rows")?,
        nulls: stats_u64(entry, "nulls")?,
        distinct: stats_u64(entry, "distinct")?,
        null_fraction: stats_f64(entry, "null_fraction")?,
        distinct_fraction: stats_f64(entry, "distinct_fraction")?,
        entropy: stats_f64(entry, "entropy")?,
        min: optional_string(entry, "min")?,
        max: optional_string(entry, "max")?,
        min_length: stats_u64(entry, "min_length")?,
        max_length: stats_u64(entry, "max_length")?,
        avg_length: stats_f64(entry, "avg_length")?,
        format,
        format_consistency: stats_f64(entry, "format_consistency")?,
        semantic_type,
        quality: stats_f64(entry, "quality")?,
        numeric,
    })
}

/// Parses the optional `column_profiles` + `relationships` sections. A
/// document from a stats-off run simply lacks them (`Ok(None)`); a
/// document that has one without the other is malformed.
fn stats_from_json(doc: &JsonValue) -> Result<Option<StatsProfile>, String> {
    let profiles = match doc.get("column_profiles") {
        None => {
            if doc.get("relationships").is_some() {
                return Err("\"relationships\" without \"column_profiles\"".to_string());
            }
            return Ok(None);
        }
        Some(p) => p,
    };
    let schema = stats_u64(profiles, "schema")?;
    if schema != STATS_SCHEMA_VERSION {
        return Err(format!("unsupported column_profiles schema {schema}"));
    }
    let mut columns = Vec::new();
    for entry in profiles
        .get("columns")
        .and_then(|v| v.as_array())
        .ok_or("column_profiles missing \"columns\" array")?
    {
        columns.push(column_stats_from_json(entry)?);
    }
    let rel = doc.get("relationships").ok_or("\"column_profiles\" without \"relationships\"")?;
    let mut identifiers = Vec::new();
    for entry in rel
        .get("identifiers")
        .and_then(|v| v.as_array())
        .ok_or("relationships missing \"identifiers\" array")?
    {
        let cols = entry
            .get("columns")
            .and_then(|v| v.as_array())
            .ok_or("identifier missing \"columns\"")?
            .iter()
            .map(|c| c.as_usize().ok_or("identifier columns must be indices"))
            .collect::<Result<Vec<_>, _>>()?;
        let null_free = entry
            .get("null_free")
            .and_then(JsonValue::as_bool)
            .ok_or("identifier missing \"null_free\"")?;
        identifiers.push(IdentifierCandidate {
            columns: cols,
            null_free,
            score: stats_f64(entry, "score")?,
        });
    }
    let mut foreign_keys = Vec::new();
    for entry in rel
        .get("foreign_keys")
        .and_then(|v| v.as_array())
        .ok_or("relationships missing \"foreign_keys\" array")?
    {
        foreign_keys.push(FkCandidate {
            dependent: stats_usize(entry, "dependent")?,
            referenced: stats_usize(entry, "referenced")?,
            coverage: stats_f64(entry, "coverage")?,
        });
    }
    Ok(Some(StatsProfile { columns, identifiers, foreign_keys }))
}

/// Parses a wire document produced by [`profile_to_json`] back into its
/// dependency payload. `metrics` (and any unknown keys) are ignored.
pub fn profile_from_json(json: &str) -> Result<ProfilePayload, String> {
    let doc = parse_json(json).map_err(|e| e.to_string())?;
    let dataset = doc
        .get("dataset")
        .and_then(|v| v.as_str())
        .ok_or("missing \"dataset\" string")?
        .to_string();
    let algorithm_name =
        doc.get("algorithm").and_then(|v| v.as_str()).ok_or("missing \"algorithm\" string")?;
    let algorithm = Algorithm::from_name(algorithm_name)
        .ok_or_else(|| format!("unknown algorithm {algorithm_name:?}"))?;
    let columns = doc
        .get("columns")
        .and_then(|v| v.as_array())
        .ok_or("missing \"columns\" array")?
        .iter()
        .map(|c| c.as_str().map(|s| s.to_string()).ok_or("column names must be strings"))
        .collect::<Result<Vec<_>, _>>()?;
    let mut inds = Vec::new();
    for entry in doc.get("inds").and_then(|v| v.as_array()).ok_or("missing \"inds\" array")? {
        let dependent =
            entry.get("dependent").and_then(|v| v.as_usize()).ok_or("IND missing \"dependent\"")?;
        let referenced = entry
            .get("referenced")
            .and_then(|v| v.as_usize())
            .ok_or("IND missing \"referenced\"")?;
        inds.push(Ind::new(dependent, referenced));
    }
    let mut uccs = Vec::new();
    for entry in doc.get("uccs").and_then(|v| v.as_array()).ok_or("missing \"uccs\" array")? {
        uccs.push(column_set_from_json(entry, "ucc")?);
    }
    let mut fds = FdSet::new();
    for entry in doc.get("fds").and_then(|v| v.as_array()).ok_or("missing \"fds\" array")? {
        let lhs = column_set_from_json(entry.get("lhs").ok_or("FD missing \"lhs\"")?, "fd lhs")?;
        let rhs = entry.get("rhs").and_then(|v| v.as_usize()).ok_or("FD missing \"rhs\"")?;
        fds.insert(lhs, rhs);
    }
    let stats = stats_from_json(&doc)?;
    Ok(ProfilePayload { dataset, algorithm, columns, inds, uccs, fds, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{profile, ProfilerConfig};
    use muds_table::Table;

    fn sample() -> Table {
        Table::from_rows(
            "sample",
            &["id", "grp", "val", "cpy"],
            &[
                vec!["1", "a", "x", "1"],
                vec!["2", "a", "x", "2"],
                vec!["3", "b", "y", "3"],
                vec!["4", "b", "y", "4"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_the_dependency_payload() {
        let t = sample();
        for &alg in &Algorithm::ALL {
            let result = profile(&t, alg, &ProfilerConfig::default());
            let names = t.column_names();
            let json = profile_to_json(&result, t.name(), &names);
            let parsed = profile_from_json(&json).expect("wire document parses back");
            assert_eq!(parsed, ProfilePayload::from_result(&result, t.name(), &names));
            assert!(!parsed.inds.is_empty(), "sample has INDs");
            assert!(!parsed.fds.is_empty(), "sample has FDs");
        }
    }

    #[test]
    fn serialization_is_canonical_in_input_order() {
        let t = sample();
        let cfg = ProfilerConfig::default();
        let a = profile(&t, Algorithm::Muds, &cfg);
        let b = profile(&t, Algorithm::Muds, &cfg);
        let names = t.column_names();
        // Strip metrics (timings differ) and compare the payload prefix.
        let ja = profile_to_json(&a, t.name(), &names);
        let jb = profile_to_json(&b, t.name(), &names);
        let prefix = |s: &str| s.split(",\"metrics\":").next().unwrap().to_string();
        assert_eq!(prefix(&ja), prefix(&jb));
    }

    #[test]
    fn metrics_ride_along_but_are_not_required_for_parse_back() {
        let t = sample();
        let result = profile(&t, Algorithm::Muds, &ProfilerConfig::default());
        let names = t.column_names();
        let json = profile_to_json(&result, t.name(), &names);
        assert!(json.contains("\"metrics\":{\"counters\""));
        // A document without metrics still parses.
        let stripped = format!("{}}}", json.split(",\"metrics\":").next().unwrap());
        assert!(profile_from_json(&stripped).is_ok());
    }

    #[test]
    fn parse_back_rejects_malformed_documents() {
        assert!(profile_from_json("not json").is_err());
        assert!(profile_from_json("{}").unwrap_err().contains("dataset"));
        assert!(profile_from_json(r#"{"dataset":"x"}"#).unwrap_err().contains("algorithm"));
        let bad_alg =
            r#"{"dataset":"x","algorithm":"nope","columns":[],"inds":[],"uccs":[],"fds":[]}"#;
        assert!(profile_from_json(bad_alg).unwrap_err().contains("unknown algorithm"));
        let bad_ucc =
            r#"{"dataset":"x","algorithm":"MUDS","columns":[],"inds":[],"uccs":[[999]],"fds":[]}"#;
        assert!(profile_from_json(bad_ucc).unwrap_err().contains("out of range"));
        let bad_ind = r#"{"dataset":"x","algorithm":"MUDS","columns":[],"inds":[{"dependent":0}],"uccs":[],"fds":[]}"#;
        assert!(profile_from_json(bad_ind).unwrap_err().contains("referenced"));
    }

    #[test]
    fn stats_sections_round_trip_bit_exactly() {
        let t = sample();
        let cfg = ProfilerConfig { stats: true, ..ProfilerConfig::default() };
        for &alg in &Algorithm::ALL {
            let result = profile(&t, alg, &cfg);
            assert!(result.stats.is_some(), "{alg:?} must attach stats");
            let names = t.column_names();
            let json = profile_to_json(&result, t.name(), &names);
            assert!(json.contains("\"column_profiles\":{\"schema\":1"));
            assert!(json.contains("\"relationships\":{\"identifiers\""));
            let parsed = profile_from_json(&json).expect("stats document parses back");
            assert_eq!(parsed, ProfilePayload::from_result(&result, t.name(), &names));
            let stats = parsed.stats.unwrap();
            assert_eq!(stats.columns.len(), 4);
            assert!(!stats.identifiers.is_empty(), "id and cpy are unary keys");
            assert!(!stats.foreign_keys.is_empty(), "id ⊆ cpy gives an FK candidate");
        }
    }

    #[test]
    fn stats_off_documents_omit_the_sections_and_still_parse() {
        let t = sample();
        let result = profile(&t, Algorithm::Muds, &ProfilerConfig::default());
        let names = t.column_names();
        let json = profile_to_json(&result, t.name(), &names);
        assert!(!json.contains("column_profiles"));
        assert_eq!(profile_from_json(&json).unwrap().stats, None);
    }

    #[test]
    fn malformed_stats_sections_are_rejected() {
        let base = r#""dataset":"x","algorithm":"MUDS","columns":[],"inds":[],"uccs":[],"fds":[]"#;
        let orphan = format!("{{{base},\"relationships\":{{}}}}");
        assert!(profile_from_json(&orphan).unwrap_err().contains("without"));
        let bad_schema =
            format!("{{{base},\"column_profiles\":{{\"schema\":999,\"columns\":[]}}}}");
        assert!(profile_from_json(&bad_schema).unwrap_err().contains("schema"));
        let bad_format = format!(
            "{{{base},\"column_profiles\":{{\"schema\":1,\"columns\":[{{\"format\":\"nope\"}}]}},\"relationships\":{{\"identifiers\":[],\"foreign_keys\":[]}}}}"
        );
        assert!(profile_from_json(&bad_format).unwrap_err().contains("unknown value format"));
    }

    #[test]
    fn escaped_names_survive_the_round_trip() {
        let t = Table::from_rows(
            "data\"set\n",
            &["col\"one", "col\\two"],
            &[vec!["1", "2"], vec!["2", "1"]],
        )
        .unwrap();
        let result = profile(&t, Algorithm::Baseline, &ProfilerConfig::default());
        let names = t.column_names();
        let json = profile_to_json(&result, t.name(), &names);
        let parsed = profile_from_json(&json).unwrap();
        assert_eq!(parsed.dataset, "data\"set\n");
        assert_eq!(parsed.columns, vec!["col\"one", "col\\two"]);
    }
}
