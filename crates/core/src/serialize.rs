//! Wire format for profiling results.
//!
//! One canonical JSON shape serves three consumers: `mudsprof profile
//! --format json` (machine-readable discovery output), the `muds-serve`
//! daemon's `POST /profile` responses, and the differential fuzzer's
//! round-trip invariant. The dependency payload is serialized in canonical
//! sorted order, so two runs that discovered the same metadata — e.g. the
//! same `(dataset, algorithm)` at different `--threads` — produce
//! byte-identical documents.
//!
//! ```json
//! {
//!   "dataset": "uniprot",
//!   "algorithm": "MUDS",
//!   "columns": ["id", "name"],
//!   "inds": [{"dependent": 0, "referenced": 1}],
//!   "uccs": [[0], [1, 2]],
//!   "fds": [{"lhs": [0], "rhs": 1}],
//!   "metrics": { ... muds-obs MetricsSnapshot ... }
//! }
//! ```
//!
//! [`profile_from_json`] parses the document back into a
//! [`ProfilePayload`]; `metrics` is emission-only (counters are an
//! observability sidecar, not part of the dependency payload contract).

use muds_fd::FdSet;
use muds_ind::Ind;
use muds_lattice::ColumnSet;

use crate::json::{parse_json, JsonValue};
use crate::profiler::{Algorithm, ProfileResult};

/// The dependency payload of one profiling run — everything a downstream
/// consumer of discovered metadata needs, detached from timings and
/// counters. This is the unit the round-trip invariant compares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfilePayload {
    /// Dataset identifier (registry name or table name).
    pub dataset: String,
    /// Algorithm that produced the payload.
    pub algorithm: Algorithm,
    /// Column names, in schema order (IND/UCC/FD indices refer to these).
    pub columns: Vec<String>,
    /// Unary INDs, sorted.
    pub inds: Vec<Ind>,
    /// Minimal UCCs, sorted.
    pub uccs: Vec<ColumnSet>,
    /// Minimal FDs.
    pub fds: FdSet,
}

impl ProfilePayload {
    /// Extracts the canonical payload from a [`ProfileResult`].
    pub fn from_result(result: &ProfileResult, dataset: &str, columns: &[&str]) -> Self {
        let mut inds = result.inds.clone();
        inds.sort();
        let mut uccs = result.minimal_uccs.clone();
        uccs.sort();
        ProfilePayload {
            dataset: dataset.to_string(),
            algorithm: result.algorithm,
            columns: columns.iter().map(|c| c.to_string()).collect(),
            inds,
            uccs,
            fds: result.fds.clone(),
        }
    }
}

use crate::json::write_json_string as write_string;

fn write_column_set(out: &mut String, set: &ColumnSet) {
    out.push('[');
    for (i, col) in set.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&col.to_string());
    }
    out.push(']');
}

/// Serializes the dependency payload (sorted, canonical) plus the result's
/// metrics snapshot into the wire document described in the module docs.
pub fn profile_to_json(result: &ProfileResult, dataset: &str, columns: &[&str]) -> String {
    let payload = ProfilePayload::from_result(result, dataset, columns);
    let mut out = String::with_capacity(1024);
    out.push_str("{\"dataset\":");
    write_string(&mut out, &payload.dataset);
    out.push_str(",\"algorithm\":");
    write_string(&mut out, payload.algorithm.name());
    out.push_str(",\"columns\":[");
    for (i, name) in payload.columns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_string(&mut out, name);
    }
    out.push_str("],\"inds\":[");
    for (i, ind) in payload.inds.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"dependent\":{},\"referenced\":{}}}",
            ind.dependent, ind.referenced
        ));
    }
    out.push_str("],\"uccs\":[");
    for (i, ucc) in payload.uccs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_column_set(&mut out, ucc);
    }
    out.push_str("],\"fds\":[");
    for (i, fd) in payload.fds.to_sorted_vec().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"lhs\":");
        write_column_set(&mut out, &fd.lhs);
        out.push_str(&format!(",\"rhs\":{}}}", fd.rhs));
    }
    out.push_str("],\"metrics\":");
    out.push_str(&result.metrics.to_json());
    out.push('}');
    out
}

fn column_set_from_json(value: &JsonValue, what: &str) -> Result<ColumnSet, String> {
    let items = value.as_array().ok_or_else(|| format!("{what} must be an array"))?;
    let mut set = ColumnSet::empty();
    for item in items {
        let col = item.as_usize().ok_or_else(|| format!("{what} entries must be indices"))?;
        if col >= muds_table::MAX_COLUMNS {
            return Err(format!("{what} index {col} out of range"));
        }
        set.insert(col);
    }
    Ok(set)
}

/// Parses a wire document produced by [`profile_to_json`] back into its
/// dependency payload. `metrics` (and any unknown keys) are ignored.
pub fn profile_from_json(json: &str) -> Result<ProfilePayload, String> {
    let doc = parse_json(json).map_err(|e| e.to_string())?;
    let dataset = doc
        .get("dataset")
        .and_then(|v| v.as_str())
        .ok_or("missing \"dataset\" string")?
        .to_string();
    let algorithm_name =
        doc.get("algorithm").and_then(|v| v.as_str()).ok_or("missing \"algorithm\" string")?;
    let algorithm = Algorithm::from_name(algorithm_name)
        .ok_or_else(|| format!("unknown algorithm {algorithm_name:?}"))?;
    let columns = doc
        .get("columns")
        .and_then(|v| v.as_array())
        .ok_or("missing \"columns\" array")?
        .iter()
        .map(|c| c.as_str().map(|s| s.to_string()).ok_or("column names must be strings"))
        .collect::<Result<Vec<_>, _>>()?;
    let mut inds = Vec::new();
    for entry in doc.get("inds").and_then(|v| v.as_array()).ok_or("missing \"inds\" array")? {
        let dependent =
            entry.get("dependent").and_then(|v| v.as_usize()).ok_or("IND missing \"dependent\"")?;
        let referenced = entry
            .get("referenced")
            .and_then(|v| v.as_usize())
            .ok_or("IND missing \"referenced\"")?;
        inds.push(Ind::new(dependent, referenced));
    }
    let mut uccs = Vec::new();
    for entry in doc.get("uccs").and_then(|v| v.as_array()).ok_or("missing \"uccs\" array")? {
        uccs.push(column_set_from_json(entry, "ucc")?);
    }
    let mut fds = FdSet::new();
    for entry in doc.get("fds").and_then(|v| v.as_array()).ok_or("missing \"fds\" array")? {
        let lhs = column_set_from_json(entry.get("lhs").ok_or("FD missing \"lhs\"")?, "fd lhs")?;
        let rhs = entry.get("rhs").and_then(|v| v.as_usize()).ok_or("FD missing \"rhs\"")?;
        fds.insert(lhs, rhs);
    }
    Ok(ProfilePayload { dataset, algorithm, columns, inds, uccs, fds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{profile, ProfilerConfig};
    use muds_table::Table;

    fn sample() -> Table {
        Table::from_rows(
            "sample",
            &["id", "grp", "val", "cpy"],
            &[
                vec!["1", "a", "x", "1"],
                vec!["2", "a", "x", "2"],
                vec!["3", "b", "y", "3"],
                vec!["4", "b", "y", "4"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_the_dependency_payload() {
        let t = sample();
        for &alg in &Algorithm::ALL {
            let result = profile(&t, alg, &ProfilerConfig::default());
            let names = t.column_names();
            let json = profile_to_json(&result, t.name(), &names);
            let parsed = profile_from_json(&json).expect("wire document parses back");
            assert_eq!(parsed, ProfilePayload::from_result(&result, t.name(), &names));
            assert!(!parsed.inds.is_empty(), "sample has INDs");
            assert!(!parsed.fds.is_empty(), "sample has FDs");
        }
    }

    #[test]
    fn serialization_is_canonical_in_input_order() {
        let t = sample();
        let cfg = ProfilerConfig::default();
        let a = profile(&t, Algorithm::Muds, &cfg);
        let b = profile(&t, Algorithm::Muds, &cfg);
        let names = t.column_names();
        // Strip metrics (timings differ) and compare the payload prefix.
        let ja = profile_to_json(&a, t.name(), &names);
        let jb = profile_to_json(&b, t.name(), &names);
        let prefix = |s: &str| s.split(",\"metrics\":").next().unwrap().to_string();
        assert_eq!(prefix(&ja), prefix(&jb));
    }

    #[test]
    fn metrics_ride_along_but_are_not_required_for_parse_back() {
        let t = sample();
        let result = profile(&t, Algorithm::Muds, &ProfilerConfig::default());
        let names = t.column_names();
        let json = profile_to_json(&result, t.name(), &names);
        assert!(json.contains("\"metrics\":{\"counters\""));
        // A document without metrics still parses.
        let stripped = format!("{}}}", json.split(",\"metrics\":").next().unwrap());
        assert!(profile_from_json(&stripped).is_ok());
    }

    #[test]
    fn parse_back_rejects_malformed_documents() {
        assert!(profile_from_json("not json").is_err());
        assert!(profile_from_json("{}").unwrap_err().contains("dataset"));
        assert!(profile_from_json(r#"{"dataset":"x"}"#).unwrap_err().contains("algorithm"));
        let bad_alg =
            r#"{"dataset":"x","algorithm":"nope","columns":[],"inds":[],"uccs":[],"fds":[]}"#;
        assert!(profile_from_json(bad_alg).unwrap_err().contains("unknown algorithm"));
        let bad_ucc =
            r#"{"dataset":"x","algorithm":"MUDS","columns":[],"inds":[],"uccs":[[999]],"fds":[]}"#;
        assert!(profile_from_json(bad_ucc).unwrap_err().contains("out of range"));
        let bad_ind = r#"{"dataset":"x","algorithm":"MUDS","columns":[],"inds":[{"dependent":0}],"uccs":[],"fds":[]}"#;
        assert!(profile_from_json(bad_ind).unwrap_err().contains("referenced"));
    }

    #[test]
    fn escaped_names_survive_the_round_trip() {
        let t = Table::from_rows(
            "data\"set\n",
            &["col\"one", "col\\two"],
            &[vec!["1", "2"], vec!["2", "1"]],
        )
        .unwrap();
        let result = profile(&t, Algorithm::Baseline, &ProfilerConfig::default());
        let names = t.column_names();
        let json = profile_to_json(&result, t.name(), &names);
        let parsed = profile_from_json(&json).unwrap();
        assert_eq!(parsed.dataset, "data\"set\n");
        assert_eq!(parsed.columns, vec!["col\"one", "col\\two"]);
    }
}
