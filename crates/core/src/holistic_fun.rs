//! Holistic FUN (§3.2): FDs and UCCs simultaneously, INDs on the shared
//! scan.
//!
//! FUN must traverse every minimal UCC anyway (Lemma 3: minimal UCCs are
//! free sets), so recording them costs nothing. Combined with SPIDER
//! running on the same input scan and the shared PLI cache, this is the
//! paper's "FDs and UCCs simultaneously" holistic baseline — it always
//! beats the sequential execution by exactly the duplicated work it avoids,
//! but applies none of MUDS' inter-task pruning.

use std::time::Duration;

use muds_fd::{fun, FdSet, FunStats};
use muds_ind::{spider_with_stats, Ind, SpiderStats};
use muds_lattice::ColumnSet;
use muds_pli::{PliCache, PliCacheStats};
use muds_table::Table;

/// Per-phase timings of a Holistic FUN run.
#[derive(Debug, Clone, Default)]
pub struct HolisticFunTimings {
    /// Input scan: SPIDER + single-column PLI construction.
    pub spider: Duration,
    /// FUN traversal (discovers FDs and UCCs together).
    pub fun: Duration,
}

impl HolisticFunTimings {
    pub fn total(&self) -> Duration {
        self.spider + self.fun
    }
}

/// Result of a Holistic FUN run.
#[derive(Debug, Clone)]
pub struct HolisticFunReport {
    pub inds: Vec<Ind>,
    pub minimal_uccs: Vec<ColumnSet>,
    pub fds: FdSet,
    pub timings: HolisticFunTimings,
    pub fun_stats: FunStats,
    pub spider_stats: SpiderStats,
    pub pli_stats: PliCacheStats,
}

/// Runs Holistic FUN on `table` (assumed duplicate-free, §3).
pub fn holistic_fun(table: &Table) -> HolisticFunReport {
    let mut timings = HolisticFunTimings::default();

    let span = muds_obs::span("SPIDER");
    // Same shared-input-scan join as MUDS: PLI construction on the caller
    // thread, SPIDER on a worker with the ambient metrics handle installed
    // (ambient registries are thread-local).
    let ambient = muds_obs::Metrics::current();
    let (mut cache, (inds, spider_stats)) = rayon::join(
        || PliCache::new(table),
        move || {
            let _guard = ambient.as_ref().map(|m| m.install());
            spider_with_stats(table)
        },
    );
    timings.spider = span.stop();

    let span = muds_obs::span("FUN");
    let result = fun(&mut cache);
    timings.fun = span.stop();

    HolisticFunReport {
        inds,
        minimal_uccs: result.minimal_uccs,
        fds: result.fds,
        timings,
        fun_stats: result.stats,
        spider_stats,
        pli_stats: cache.stats().clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muds_fd::naive_minimal_fds;
    use muds_ind::naive_inds;
    use muds_ucc::naive_minimal_uccs;

    #[test]
    fn produces_all_three_metadata_kinds() {
        let t = Table::from_rows(
            "t",
            &["id", "grp", "val"],
            &[vec!["1", "a", "x"], vec!["2", "a", "x"], vec!["3", "b", "y"], vec!["4", "b", "y"]],
        )
        .unwrap();
        let r = holistic_fun(&t);
        assert_eq!(r.inds, naive_inds(&t));
        assert_eq!(r.minimal_uccs, naive_minimal_uccs(&t));
        assert_eq!(r.fds.to_sorted_vec(), naive_minimal_fds(&t).to_sorted_vec());
    }

    #[test]
    fn randomized_equivalence() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(1212);
        for case in 0..80 {
            let cols = rng.gen_range(1..=6);
            let rows = rng.gen_range(1..=25);
            let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let data: Vec<Vec<String>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.gen_range(0..3).to_string()).collect())
                .collect();
            let t = Table::from_rows(format!("r{case}"), &name_refs, &data).unwrap().dedup_rows();
            let r = holistic_fun(&t);
            assert_eq!(r.fds.to_sorted_vec(), naive_minimal_fds(&t).to_sorted_vec(), "case {case}");
            assert_eq!(r.minimal_uccs, naive_minimal_uccs(&t), "case {case}");
        }
    }
}
