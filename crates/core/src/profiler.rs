//! Metanome-style uniform execution environment (§6).
//!
//! The paper evaluates all algorithms inside the Metanome framework so that
//! file I/O, result handling and timing are identical across algorithms.
//! [`profile`] plays that role here: one entry point, one [`Algorithm`]
//! selector, one [`ProfileResult`] shape with phase-level timings, so the
//! experiment harnesses compare algorithms fairly.

use std::time::Duration;

use muds_fd::FdSet;
use muds_ind::Ind;
use muds_lattice::ColumnSet;
use muds_table::{table_from_csv, CsvOptions, Table, TableError};

use crate::baseline::{baseline, baseline_csv};
use crate::holistic_fun::holistic_fun;
use crate::muds::{muds, MudsConfig};

/// The profiling algorithm to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// MUDS (§5): the paper's holistic contribution.
    Muds,
    /// Holistic FUN (§3.2): FUN + UCC capture + shared scan.
    HolisticFun,
    /// Sequential SPIDER → DUCC → FUN, nothing shared (§6's baseline).
    Baseline,
    /// TANE (FD-only reference point of Table 3). IND/UCC outputs come from
    /// its own key pruning; IND list is computed with SPIDER on a separate
    /// scan, like the baseline.
    Tane,
}

impl Algorithm {
    /// All algorithms, in the order Table 3 reports them.
    pub const ALL: [Algorithm; 4] =
        [Algorithm::Baseline, Algorithm::HolisticFun, Algorithm::Muds, Algorithm::Tane];

    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Muds => "MUDS",
            Algorithm::HolisticFun => "HFUN",
            Algorithm::Baseline => "baseline",
            Algorithm::Tane => "TANE",
        }
    }
}

/// Profiler configuration.
#[derive(Debug, Clone)]
pub struct ProfilerConfig {
    /// RNG seed shared by the randomized traversals.
    pub seed: u64,
    /// MUDS-specific knobs.
    pub muds: MudsConfig,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig { seed: 42, muds: MudsConfig::default() }
    }
}

/// One timed phase of an algorithm run.
#[derive(Debug, Clone)]
pub struct Phase {
    pub name: String,
    pub duration: Duration,
}

/// Uniform result of any [`Algorithm`].
#[derive(Debug, Clone)]
pub struct ProfileResult {
    /// Which algorithm produced this.
    pub algorithm: Algorithm,
    /// All unary INDs.
    pub inds: Vec<Ind>,
    /// All minimal UCCs, sorted.
    pub minimal_uccs: Vec<ColumnSet>,
    /// All minimal FDs.
    pub fds: FdSet,
    /// Phase-level wall-clock breakdown (phase names are
    /// algorithm-specific).
    pub phases: Vec<Phase>,
}

impl ProfileResult {
    /// Total runtime across phases.
    pub fn total_time(&self) -> Duration {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// `(|INDs|, |UCCs|, |FDs|)` — the counts Figure 7 plots.
    pub fn counts(&self) -> (usize, usize, usize) {
        (self.inds.len(), self.minimal_uccs.len(), self.fds.len())
    }
}

fn phase(name: &str, duration: Duration) -> Phase {
    Phase { name: name.to_string(), duration }
}

/// Runs `algorithm` on a parsed table. Input is assumed duplicate-free
/// (§3); see [`Table::dedup_rows`].
pub fn profile(table: &Table, algorithm: Algorithm, config: &ProfilerConfig) -> ProfileResult {
    match algorithm {
        Algorithm::Muds => {
            let mut muds_cfg = config.muds.clone();
            muds_cfg.seed = config.seed;
            let r = muds(table, &muds_cfg);
            ProfileResult {
                algorithm,
                inds: r.inds,
                minimal_uccs: r.minimal_uccs,
                fds: r.fds,
                phases: r
                    .timings
                    .as_rows()
                    .into_iter()
                    .map(|(n, d)| phase(n, d))
                    .collect(),
            }
        }
        Algorithm::HolisticFun => {
            let r = holistic_fun(table);
            ProfileResult {
                algorithm,
                inds: r.inds,
                minimal_uccs: r.minimal_uccs,
                fds: r.fds,
                phases: vec![phase("SPIDER", r.timings.spider), phase("FUN", r.timings.fun)],
            }
        }
        Algorithm::Baseline => {
            let r = baseline(table, config.seed);
            ProfileResult {
                algorithm,
                inds: r.inds,
                minimal_uccs: r.minimal_uccs,
                fds: r.fds,
                phases: vec![
                    phase("SPIDER", r.timings.spider),
                    phase("DUCC", r.timings.ducc),
                    phase("FUN", r.timings.fun),
                ],
            }
        }
        Algorithm::Tane => {
            let t0 = std::time::Instant::now();
            let mut cache = muds_pli::PliCache::new(table);
            let r = muds_fd::tane(&mut cache);
            let tane_time = t0.elapsed();
            ProfileResult {
                algorithm,
                inds: Vec::new(),
                minimal_uccs: r.minimal_uccs,
                fds: r.fds,
                phases: vec![phase("TANE", tane_time)],
            }
        }
    }
}

/// Runs `algorithm` on CSV text. Holistic algorithms parse once (shared
/// I/O); the baseline re-parses per task, reproducing the paper's cost
/// model.
pub fn profile_csv(
    name: &str,
    csv: &str,
    options: &CsvOptions,
    algorithm: Algorithm,
    config: &ProfilerConfig,
) -> Result<ProfileResult, TableError> {
    match algorithm {
        Algorithm::Baseline => {
            let r = baseline_csv(name, csv, options, config.seed);
            Ok(ProfileResult {
                algorithm,
                inds: r.inds,
                minimal_uccs: r.minimal_uccs,
                fds: r.fds,
                phases: vec![
                    phase("SPIDER", r.timings.spider),
                    phase("DUCC", r.timings.ducc),
                    phase("FUN", r.timings.fun),
                ],
            })
        }
        _ => {
            // Holistic algorithms and TANE: one parse, timed as a phase.
            let t0 = std::time::Instant::now();
            let table = table_from_csv(name, csv, options)?;
            let parse_time = t0.elapsed();
            let mut result = profile(&table, algorithm, config);
            result.phases.insert(0, phase("read input", parse_time));
            Ok(result)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::from_rows(
            "sample",
            &["id", "grp", "val", "cpy"],
            &[
                vec!["1", "a", "x", "1"],
                vec!["2", "a", "x", "2"],
                vec!["3", "b", "y", "3"],
                vec!["4", "b", "y", "4"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn all_algorithms_agree_on_fds_and_uccs() {
        let t = sample();
        let cfg = ProfilerConfig::default();
        let results: Vec<ProfileResult> =
            Algorithm::ALL.iter().map(|&a| profile(&t, a, &cfg)).collect();
        for pair in results.windows(2) {
            assert_eq!(
                pair[0].fds.to_sorted_vec(),
                pair[1].fds.to_sorted_vec(),
                "{} vs {}",
                pair[0].algorithm.name(),
                pair[1].algorithm.name()
            );
            assert_eq!(pair[0].minimal_uccs, pair[1].minimal_uccs);
        }
        // IND-producing algorithms agree too.
        assert_eq!(results[0].inds, results[1].inds);
        assert_eq!(results[1].inds, results[2].inds);
    }

    #[test]
    fn csv_entry_point_matches_table_entry_point() {
        let t = sample();
        let csv = muds_table::table_to_csv(&t, &CsvOptions::default());
        let cfg = ProfilerConfig::default();
        for &alg in &Algorithm::ALL {
            let r1 = profile(&t, alg, &cfg);
            let r2 = profile_csv("sample", &csv, &CsvOptions::default(), alg, &cfg).unwrap();
            assert_eq!(r1.fds.to_sorted_vec(), r2.fds.to_sorted_vec(), "{}", alg.name());
            assert_eq!(r1.minimal_uccs, r2.minimal_uccs);
        }
    }

    #[test]
    fn counts_reflect_result_sizes() {
        let t = sample();
        let r = profile(&t, Algorithm::Muds, &ProfilerConfig::default());
        let (inds, uccs, fds) = r.counts();
        assert_eq!(inds, r.inds.len());
        assert_eq!(uccs, r.minimal_uccs.len());
        assert_eq!(fds, r.fds.len());
        assert!(r.total_time() > Duration::ZERO);
    }
}
