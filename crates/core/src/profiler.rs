//! Metanome-style uniform execution environment (§6).
//!
//! The paper evaluates all algorithms inside the Metanome framework so that
//! file I/O, result handling and timing are identical across algorithms.
//! [`profile`] plays that role here: one entry point, one [`Algorithm`]
//! selector, one [`ProfileResult`] shape with phase-level timings, so the
//! experiment harnesses compare algorithms fairly.

use std::time::Duration;

use muds_fd::FdSet;
use muds_ind::Ind;
use muds_lattice::ColumnSet;
use muds_obs::{Metrics, MetricsSnapshot, SpanNode};
use muds_table::{table_from_csv, CsvOptions, Table, TableError};

use crate::baseline::{baseline, baseline_csv};
use crate::holistic_fun::holistic_fun;
use crate::muds::{muds, MudsConfig};

/// The profiling algorithm to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// MUDS (§5): the paper's holistic contribution.
    Muds,
    /// Holistic FUN (§3.2): FUN + UCC capture + shared scan.
    HolisticFun,
    /// Sequential SPIDER → DUCC → FUN, nothing shared (§6's baseline).
    Baseline,
    /// TANE (FD-only reference point of Table 3). IND/UCC outputs come from
    /// its own key pruning; IND list is computed with SPIDER on a separate
    /// scan, like the baseline.
    Tane,
}

impl Algorithm {
    /// All algorithms, in the order Table 3 reports them.
    pub const ALL: [Algorithm; 4] =
        [Algorithm::Baseline, Algorithm::HolisticFun, Algorithm::Muds, Algorithm::Tane];

    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Muds => "MUDS",
            Algorithm::HolisticFun => "HFUN",
            Algorithm::Baseline => "baseline",
            Algorithm::Tane => "TANE",
        }
    }

    /// Inverse of [`Algorithm::name`], case-insensitive, accepting the CLI
    /// aliases too (`hfun`/`holistic-fun`, `baseline`/`sequential`). This
    /// is the parser for every wire surface that names an algorithm: the
    /// JSON result document, serve request bodies, and CLI flags.
    pub fn from_name(name: &str) -> Option<Algorithm> {
        match name.to_ascii_lowercase().as_str() {
            "muds" => Some(Algorithm::Muds),
            "hfun" | "holistic-fun" => Some(Algorithm::HolisticFun),
            "baseline" | "sequential" => Some(Algorithm::Baseline),
            "tane" => Some(Algorithm::Tane),
            _ => None,
        }
    }
}

/// Profiler configuration.
#[derive(Debug, Clone)]
pub struct ProfilerConfig {
    /// RNG seed shared by the randomized traversals.
    pub seed: u64,
    /// MUDS-specific knobs.
    pub muds: MudsConfig,
    /// Compute the single-scan column-statistics profile (§15) and attach
    /// it as [`ProfileResult::stats`]. Off by default: dependency-only
    /// callers pay nothing.
    pub stats: bool,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig { seed: 42, muds: MudsConfig::default(), stats: false }
    }
}

impl ProfilerConfig {
    /// Canonical key string covering every knob that can change a
    /// profiling *result* (not its timings). Two configurations with equal
    /// keys are guaranteed to produce identical dependency sets on the
    /// same input, which is what makes the string safe to use as the
    /// config component of a content-addressed result-cache key.
    pub fn cache_key(&self) -> String {
        let shadow = match self.muds.shadow_lookup {
            crate::muds::ShadowLookup::Faithful => "faithful",
            crate::muds::ShadowLookup::Generous => "generous",
        };
        format!(
            "seed={};muds_seed={};pruning={};shadow={};sweep={};stats={}",
            self.seed,
            self.muds.seed,
            self.muds.use_known_fd_pruning,
            shadow,
            self.muds.completion_sweep,
            self.stats
        )
    }
}

/// One timed phase of an algorithm run. Phases form a tree: a phase that
/// contains nested instrumented spans (e.g. an algorithm phase with timed
/// sub-steps) carries them as `children`.
#[derive(Debug, Clone)]
pub struct Phase {
    pub name: String,
    pub duration: Duration,
    pub children: Vec<Phase>,
}

impl Phase {
    fn from_span(span: &SpanNode) -> Phase {
        Phase {
            name: span.name.clone(),
            duration: span.duration,
            children: span.children.iter().map(Phase::from_span).collect(),
        }
    }
}

/// Uniform result of any [`Algorithm`].
#[derive(Debug, Clone)]
pub struct ProfileResult {
    /// Which algorithm produced this.
    pub algorithm: Algorithm,
    /// All unary INDs.
    pub inds: Vec<Ind>,
    /// All minimal UCCs, sorted.
    pub minimal_uccs: Vec<ColumnSet>,
    /// All minimal FDs.
    pub fds: FdSet,
    /// Phase-level wall-clock breakdown, derived from the run's span tree
    /// (phase names are algorithm-specific).
    pub phases: Vec<Phase>,
    /// Every counter, gauge, and span the run recorded — PLI cache traffic,
    /// lattice-walk work, SPIDER merge effort, per-phase FD checks.
    pub metrics: MetricsSnapshot,
    /// Single-scan column statistics plus dependency classification (§15),
    /// present iff [`ProfilerConfig::stats`] was set.
    pub stats: Option<muds_stats::StatsProfile>,
}

impl ProfileResult {
    /// Total runtime across top-level phases.
    pub fn total_time(&self) -> Duration {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// `(|INDs|, |UCCs|, |FDs|)` — the counts Figure 7 plots.
    pub fn counts(&self) -> (usize, usize, usize) {
        (self.inds.len(), self.minimal_uccs.len(), self.fds.len())
    }
}

/// The ambient metrics registry if one is installed (the CLI installs one
/// to attach a trace sink), else a fresh registry installed for the scope
/// of the returned guard.
pub(crate) fn ensure_ambient() -> (Metrics, Option<muds_obs::AmbientGuard>) {
    match Metrics::current() {
        Some(m) => (m, None),
        None => {
            let m = Metrics::new();
            let guard = m.install();
            (m, Some(guard))
        }
    }
}

/// Drains the run's metrics out of `metrics` and assembles the uniform
/// result, deriving the phase list from the recorded span tree.
pub(crate) fn finish(
    algorithm: Algorithm,
    inds: Vec<Ind>,
    minimal_uccs: Vec<ColumnSet>,
    fds: FdSet,
    metrics: &Metrics,
) -> ProfileResult {
    let snapshot = metrics.drain_snapshot();
    let phases = snapshot.spans.iter().map(Phase::from_span).collect();
    ProfileResult { algorithm, inds, minimal_uccs, fds, phases, metrics: snapshot, stats: None }
}

/// Bridges the dependency sets into `muds-stats` (which speaks plain
/// index lists, not `ColumnSet`/`Ind`) and times the scan as its own
/// "stats" phase. Must run *before* [`finish`] drains the registry so the
/// `stats.*` counters land in the result's snapshot.
pub(crate) fn table_stats(
    table: &Table,
    inds: &[Ind],
    minimal_uccs: &[ColumnSet],
) -> muds_stats::StatsProfile {
    let span = muds_obs::span("stats");
    let uccs: Vec<Vec<usize>> = minimal_uccs.iter().map(|u| u.iter().collect()).collect();
    let pairs: Vec<(usize, usize)> = inds.iter().map(|i| (i.dependent, i.referenced)).collect();
    let profile = muds_stats::compute_stats(table, &uccs, &pairs);
    span.stop();
    profile
}

/// Runs `algorithm` on a parsed table. Input is assumed duplicate-free
/// (§3); see [`Table::dedup_rows`].
pub fn profile(table: &Table, algorithm: Algorithm, config: &ProfilerConfig) -> ProfileResult {
    let (metrics, _guard) = ensure_ambient();
    let (inds, minimal_uccs, fds) = match algorithm {
        Algorithm::Muds => {
            let mut muds_cfg = config.muds.clone();
            muds_cfg.seed = config.seed;
            let r = muds(table, &muds_cfg);
            (r.inds, r.minimal_uccs, r.fds)
        }
        Algorithm::HolisticFun => {
            let r = holistic_fun(table);
            (r.inds, r.minimal_uccs, r.fds)
        }
        Algorithm::Baseline => {
            let r = baseline(table, config.seed);
            (r.inds, r.minimal_uccs, r.fds)
        }
        Algorithm::Tane => {
            // TANE discovers no INDs itself; like the baseline, the IND
            // list comes from SPIDER on a separate pass, timed as its own
            // phase so Table 3 comparisons stay honest.
            let span = muds_obs::span("SPIDER");
            let inds = muds_ind::spider(table);
            span.stop();
            let span = muds_obs::span("TANE");
            let mut cache = muds_pli::PliCache::new(table);
            let r = muds_fd::tane(&mut cache);
            span.stop();
            (inds, r.minimal_uccs, r.fds)
        }
    };
    let stats = config.stats.then(|| table_stats(table, &inds, &minimal_uccs));
    let mut result = finish(algorithm, inds, minimal_uccs, fds, &metrics);
    result.stats = stats;
    result
}

/// Runs `algorithm` on CSV text. Holistic algorithms parse once (shared
/// I/O); the baseline re-parses per task, reproducing the paper's cost
/// model.
pub fn profile_csv(
    name: &str,
    csv: &str,
    options: &CsvOptions,
    algorithm: Algorithm,
    config: &ProfilerConfig,
) -> Result<ProfileResult, TableError> {
    match algorithm {
        Algorithm::Baseline => {
            let (metrics, _guard) = ensure_ambient();
            let r = baseline_csv(name, csv, options, config.seed);
            // The baseline has no shared scan to piggyback on, so the
            // stats layer pays an extra parse — faithfully mirroring the
            // paper's cost model for non-holistic execution.
            let stats = if config.stats {
                let table = table_from_csv(name, csv, options)?;
                Some(table_stats(&table, &r.inds, &r.minimal_uccs))
            } else {
                None
            };
            let mut result = finish(algorithm, r.inds, r.minimal_uccs, r.fds, &metrics);
            result.stats = stats;
            Ok(result)
        }
        _ => {
            // Holistic algorithms and TANE: one parse, timed as a phase.
            // The guard (when we installed the registry) must outlive the
            // inner profile() call so the parse span and the algorithm
            // spans drain into one snapshot.
            let (_metrics, _guard) = ensure_ambient();
            let span = muds_obs::span("read input");
            let table = table_from_csv(name, csv, options)?;
            span.stop();
            Ok(profile(&table, algorithm, config))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::from_rows(
            "sample",
            &["id", "grp", "val", "cpy"],
            &[
                vec!["1", "a", "x", "1"],
                vec!["2", "a", "x", "2"],
                vec!["3", "b", "y", "3"],
                vec!["4", "b", "y", "4"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn all_algorithms_agree_on_fds_and_uccs() {
        let t = sample();
        let cfg = ProfilerConfig::default();
        let results: Vec<ProfileResult> =
            Algorithm::ALL.iter().map(|&a| profile(&t, a, &cfg)).collect();
        for pair in results.windows(2) {
            assert_eq!(
                pair[0].fds.to_sorted_vec(),
                pair[1].fds.to_sorted_vec(),
                "{} vs {}",
                pair[0].algorithm.name(),
                pair[1].algorithm.name()
            );
            assert_eq!(pair[0].minimal_uccs, pair[1].minimal_uccs);
        }
        // All four algorithms produce the same IND list (TANE gets its
        // INDs from a separate SPIDER pass).
        assert_eq!(results[0].inds, results[1].inds);
        assert_eq!(results[1].inds, results[2].inds);
        assert_eq!(results[2].inds, results[3].inds);
    }

    /// Regression: TANE used to return an empty IND list; it now runs
    /// SPIDER as its own timed phase, like the sequential baseline.
    #[test]
    fn tane_reports_real_inds_from_its_spider_phase() {
        let t = sample();
        let cfg = ProfilerConfig::default();
        let tane = profile(&t, Algorithm::Tane, &cfg);
        let base = profile(&t, Algorithm::Baseline, &cfg);
        assert!(!tane.inds.is_empty(), "sample table has INDs (id ↔ cpy)");
        assert_eq!(tane.inds, base.inds);
        let names: Vec<&str> = tane.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["SPIDER", "TANE"]);
    }

    #[test]
    fn profile_attaches_metrics_snapshot() {
        let t = sample();
        let r = profile(&t, Algorithm::Muds, &ProfilerConfig::default());
        assert!(r.metrics.counter("pli.intersects") > 0);
        assert_eq!(
            r.metrics.counter("pli.requests"),
            r.metrics.counter("pli.hits") + r.metrics.counter("pli.misses")
        );
        assert!(r.metrics.counter("walk.nodes_visited") > 0);
        // Phase list mirrors the span tree.
        assert_eq!(r.phases.len(), r.metrics.spans.len());
        assert_eq!(r.phases[0].name, "SPIDER");
    }

    #[test]
    fn consecutive_runs_under_one_registry_get_independent_snapshots() {
        let metrics = muds_obs::Metrics::new();
        let _guard = metrics.install();
        let t = sample();
        let cfg = ProfilerConfig::default();
        let a = profile(&t, Algorithm::Muds, &cfg);
        let b = profile(&t, Algorithm::Muds, &cfg);
        // Same seed → identical counters; the drain between runs prevents
        // accumulation.
        assert_eq!(a.metrics.counters, b.metrics.counters);
    }

    #[test]
    fn csv_entry_point_matches_table_entry_point() {
        let t = sample();
        let csv = muds_table::table_to_csv(&t, &CsvOptions::default());
        let cfg = ProfilerConfig::default();
        for &alg in &Algorithm::ALL {
            let r1 = profile(&t, alg, &cfg);
            let r2 = profile_csv("sample", &csv, &CsvOptions::default(), alg, &cfg).unwrap();
            assert_eq!(r1.fds.to_sorted_vec(), r2.fds.to_sorted_vec(), "{}", alg.name());
            assert_eq!(r1.minimal_uccs, r2.minimal_uccs);
        }
    }

    #[test]
    fn algorithm_names_round_trip() {
        for &alg in &Algorithm::ALL {
            assert_eq!(Algorithm::from_name(alg.name()), Some(alg));
        }
        assert_eq!(Algorithm::from_name("holistic-fun"), Some(Algorithm::HolisticFun));
        assert_eq!(Algorithm::from_name("SEQUENTIAL"), Some(Algorithm::Baseline));
        assert_eq!(Algorithm::from_name("nope"), None);
    }

    #[test]
    fn cache_key_tracks_result_affecting_knobs() {
        let base = ProfilerConfig::default();
        let mut other = ProfilerConfig::default();
        assert_eq!(base.cache_key(), other.cache_key());
        other.seed = 43;
        assert_ne!(base.cache_key(), other.cache_key());
        let mut other = ProfilerConfig::default();
        other.muds.completion_sweep = false;
        assert_ne!(base.cache_key(), other.cache_key());
        // The stats knob changes the result document, so it must enter the
        // cache key (a stats-on response served from a stats-off entry
        // would silently drop the column profiles).
        let other = ProfilerConfig { stats: true, ..ProfilerConfig::default() };
        assert_ne!(base.cache_key(), other.cache_key());
    }

    #[test]
    fn stats_attach_only_when_requested() {
        let t = sample();
        let off = profile(&t, Algorithm::Muds, &ProfilerConfig::default());
        assert!(off.stats.is_none());
        let cfg = ProfilerConfig { stats: true, ..ProfilerConfig::default() };
        for &alg in &Algorithm::ALL {
            let r = profile(&t, alg, &cfg);
            let stats = r.stats.expect("stats requested");
            assert_eq!(stats.columns.len(), 4);
            // id and cpy are null-free unary keys → identifier candidates.
            assert!(stats.identifiers.iter().any(|i| i.columns == [0]));
            // id ↔ cpy INDs over unary keys → FK candidates both ways.
            assert!(!stats.foreign_keys.is_empty(), "{}", alg.name());
            // The scan is metered and timed as its own phase.
            assert!(r.metrics.counter("stats.columns_profiled") >= 4);
            assert!(r.phases.iter().any(|p| p.name == "stats"), "{}", alg.name());
        }
    }

    #[test]
    fn counts_reflect_result_sizes() {
        let t = sample();
        let r = profile(&t, Algorithm::Muds, &ProfilerConfig::default());
        let (inds, uccs, fds) = r.counts();
        assert_eq!(inds, r.inds.len());
        assert_eq!(uccs, r.minimal_uccs.len());
        assert_eq!(fds, r.fds.len());
        assert!(r.total_time() > Duration::ZERO);
    }
}
