//! Direction-aware incremental revalidation of a profiling result across a
//! [`TableDelta`].
//!
//! Exact maintenance of dependency sets under updates is hard in general
//! (Bläsius/Friedrich/Schirneck, arXiv 2103.13331), but *direction* makes
//! the practical cases cheap. Appending rows can only add duplicate pairs:
//! a valid UCC or FD can break, an invalid one can never start holding.
//! Deleting rows can only remove duplicate pairs: broken dependencies can
//! start holding, valid ones never break. Combined with the affected-column
//! report of [`Table::apply_delta`] — a dependency's validity can only flip
//! if every left-hand-side column is affected — most of the old result
//! carries over with *zero* data access (`delta.skipped`), and the rest is
//! revalidated against cached PLIs in level-wise batches
//! (`delta.revalidated`, via `PliCache::get_many` / `refines_many`).
//!
//! Unary INDs have no such monotone direction (an append grows both the
//! dependent and the referenced value sets), so they are recomputed exactly
//! with SPIDER — cheap, because the incrementally maintained dictionaries
//! *are* SPIDER's sorted duplicate-free input (the join-aware reuse of
//! arXiv 2012.06237: unary-IND state stays live across deltas).
//!
//! The result is equivalent to re-running [`profile`] on the post-delta
//! table — an equivalence the differential fuzzer (`crates/check`) asserts
//! across all four algorithms on every adversarial table it generates.

use std::collections::BTreeMap;
use std::sync::Arc;

use muds_fd::FdSet;
use muds_lattice::ColumnSet;
use muds_pli::{Pli, PliCache};
use muds_table::{DeltaOutcome, Table, TableDelta, TableError};
use rayon::prelude::*;

use crate::profiler::{ensure_ambient, finish, table_stats, ProfileResult};

/// The outcome of [`apply_incremental`]: the post-delta table plus a
/// [`ProfileResult`] equivalent to profiling it from scratch.
#[derive(Debug)]
pub struct IncrementalOutcome {
    /// The post-delta table (fingerprint-identical to a from-scratch build
    /// of the final data).
    pub table: Table,
    /// Dependency sets for `table` — same contents as
    /// `profile(&table, old.algorithm, config)`.
    pub result: ProfileResult,
    /// Rows actually appended (after duplicate dropping).
    pub appended_rows: usize,
    /// Rows deleted.
    pub deleted_rows: usize,
    /// Appended rows dropped as duplicates of existing rows.
    pub rows_deduplicated: usize,
    /// UCC/FD validity checks performed (`delta.revalidated`).
    pub revalidated: u64,
    /// Dependencies carried over without touching the data
    /// (`delta.skipped`).
    pub skipped: u64,
}

/// Applies `delta` to `old_table` and patches `old`'s dependency sets to
/// the post-delta table, revalidating only what the delta could have
/// changed. See the module docs for the invalidation rules.
///
/// `old` must be the result of profiling `old_table` (any algorithm — the
/// dependency sets agree across all four).
pub fn apply_incremental(
    old: &ProfileResult,
    old_table: &Table,
    delta: &TableDelta,
) -> Result<IncrementalOutcome, TableError> {
    let (metrics, _guard) = ensure_ambient();
    let revalidated_meter = muds_obs::counter("delta.revalidated");
    let skipped_meter = muds_obs::counter("delta.skipped");
    let mut revalidated = 0u64;
    let mut skipped = 0u64;

    let span = muds_obs::span("delta apply");
    let DeltaOutcome { table, affected_columns, appended_rows, deleted_rows, rows_deduplicated } =
        old_table.apply_delta(delta)?;
    let is_append = matches!(delta, TableDelta::Append { .. });
    // Per-column PLIs ride across the delta instead of re-bucketing: an
    // append extends clusters by the new row ids, a deletion shrinks them
    // without looking at surviving rows at all.
    let singles: Vec<Arc<Pli>> = (0..old_table.num_columns())
        .into_par_iter()
        .map(|c| {
            let old_pli = Pli::from_column(old_table.column(c));
            Arc::new(if is_append {
                old_pli.apply_append(table.column(c).codes())
            } else {
                old_pli.apply_delete(&deleted_rows)
            })
        })
        .collect();
    span.stop();

    let unchanged = appended_rows == 0 && deleted_rows.is_empty();
    let d = ColumnSet::from_indices(affected_columns.iter().copied());

    // INDs: no monotone direction, so recompute exactly — unless the delta
    // collapsed to the identity, in which case everything carries over.
    let inds = if unchanged {
        skipped += old.inds.len() as u64;
        old.inds.clone()
    } else {
        let span = muds_obs::span("SPIDER");
        let inds = muds_ind::spider(&table);
        span.stop();
        inds
    };

    let span = muds_obs::span("delta revalidate");
    let mut cache = PliCache::with_singles(&table, singles);
    let (minimal_uccs, fds) = if is_append {
        (
            append_uccs(&mut cache, &old.minimal_uccs, &d, &mut revalidated, &mut skipped),
            append_fds(&mut cache, &old.fds, &d, &mut revalidated, &mut skipped),
        )
    } else {
        (
            delete_uccs(&mut cache, &old.minimal_uccs, &d, &mut revalidated, &mut skipped),
            delete_fds(&mut cache, &old.fds, &d, &mut revalidated, &mut skipped),
        )
    };
    span.stop();

    revalidated_meter.add(revalidated);
    skipped_meter.add(skipped);
    // Column statistics, when the old result carried them: an identity
    // delta carries the whole profile untouched, but any real delta
    // recomputes every column — the new row count enters every column's
    // null/distinct fractions, so no per-column carry can satisfy the
    // `stats ≡ from-scratch` invariant (DESIGN.md §15). Relationships ride
    // on the freshly patched dependency sets either way.
    let stats = old.stats.as_ref().map(|old_stats| {
        let ncols = table.num_columns() as u64;
        if unchanged {
            muds_obs::add("stats.delta_carried", ncols);
            old_stats.clone()
        } else {
            muds_obs::add("stats.delta_recomputed", ncols);
            table_stats(&table, &inds, &minimal_uccs)
        }
    });
    let mut result = finish(old.algorithm, inds, minimal_uccs, fds, &metrics);
    result.stats = stats;
    Ok(IncrementalOutcome {
        table,
        result,
        appended_rows,
        deleted_rows: deleted_rows.len(),
        rows_deduplicated,
        revalidated,
        skipped,
    })
}

/// True iff some set in `minimal` is a subset of `x` (so `x` is valid but
/// not minimal, or equal to an already-confirmed set).
fn dominated(minimal: &[ColumnSet], x: &ColumnSet) -> bool {
    minimal.iter().any(|m| m.is_subset_of(x))
}

/// Drops non-minimal sets and sorts the survivors the way every profiling
/// pipeline sorts its UCC list.
fn minimize_sets(mut sets: Vec<ColumnSet>) -> Vec<ColumnSet> {
    sets.sort_unstable_by_key(|s| (s.cardinality(), *s));
    sets.dedup();
    let mut out: Vec<ColumnSet> = Vec::new();
    for s in sets {
        if !dominated(&out, &s) {
            out.push(s);
        }
    }
    out.sort_unstable();
    out
}

/// Append direction, UCCs. Valid sets can only break, and only if fully
/// inside the affected set `d`; sets that break are replaced by the minimal
/// valid supersets, found with an upward level-wise search (every set
/// unique *now* was unique *before*, hence is a superset of some old
/// minimal UCC — so growing the broken sets covers all candidates).
fn append_uccs(
    cache: &mut PliCache<'_>,
    old: &[ColumnSet],
    d: &ColumnSet,
    revalidated: &mut u64,
    skipped: &mut u64,
) -> Vec<ColumnSet> {
    let mut confirmed: Vec<ColumnSet> = Vec::new();
    let mut to_check: Vec<ColumnSet> = Vec::new();
    for x in old {
        if x.is_subset_of(d) {
            to_check.push(*x);
        } else {
            confirmed.push(*x);
            *skipped += 1;
        }
    }
    *revalidated += to_check.len() as u64;
    let mut frontier: Vec<ColumnSet> = Vec::new();
    for (x, pli) in to_check.iter().zip(cache.get_many(&to_check)) {
        if pli.is_unique() {
            confirmed.push(*x);
        } else {
            frontier.push(*x);
        }
    }
    let n = cache.table().num_columns();
    while !frontier.is_empty() {
        // One column bigger per round; pruning against already-confirmed
        // sets kills every path that can only reach non-minimal sets.
        let mut candidates: Vec<ColumnSet> = Vec::new();
        for x in &frontier {
            for c in (0..n).filter(|&c| !x.contains(c)) {
                let y = x.with(c);
                if !dominated(&confirmed, &y) && !candidates.contains(&y) {
                    candidates.push(y);
                }
            }
        }
        candidates.sort_unstable();
        if candidates.is_empty() {
            break;
        }
        *revalidated += candidates.len() as u64;
        let plis = cache.get_many(&candidates);
        frontier = Vec::new();
        for (y, pli) in candidates.iter().zip(plis) {
            if pli.is_unique() {
                confirmed.push(*y);
            } else {
                frontier.push(*y);
            }
        }
    }
    // Broken sets of different sizes can confirm supersets of each other
    // within one round; one final minimization settles it.
    minimize_sets(confirmed)
}

/// Append direction, FDs: the same scheme as [`append_uccs`] per
/// right-hand side (an FD `X → A` can only break if `X ⊆ d`; minimal valid
/// replacements are supersets of the broken left-hand sides).
fn append_fds(
    cache: &mut PliCache<'_>,
    old: &FdSet,
    d: &ColumnSet,
    revalidated: &mut u64,
    skipped: &mut u64,
) -> FdSet {
    let mut confirmed: BTreeMap<usize, Vec<ColumnSet>> = BTreeMap::new();
    let mut to_check: Vec<(ColumnSet, usize)> = Vec::new();
    for (lhs, rhs_set) in old.iter_entries() {
        for a in rhs_set.iter() {
            if lhs.is_subset_of(d) {
                to_check.push((*lhs, a));
            } else {
                confirmed.entry(a).or_default().push(*lhs);
                *skipped += 1;
            }
        }
    }
    // `iter_entries` walks a hash map; sort so cache traffic (and with it
    // the pli.* counters) is reproducible run to run.
    to_check.sort_unstable();
    *revalidated += to_check.len() as u64;
    let mut broken: BTreeMap<usize, Vec<ColumnSet>> = BTreeMap::new();
    for ((lhs, a), holds) in to_check.iter().zip(cache.refines_many(&to_check)) {
        if holds {
            confirmed.entry(*a).or_default().push(*lhs);
        } else {
            broken.entry(*a).or_default().push(*lhs);
        }
    }
    let n = cache.table().num_columns();
    for (a, mut frontier) in broken {
        let confirmed_a = confirmed.entry(a).or_default();
        while !frontier.is_empty() {
            let mut candidates: Vec<ColumnSet> = Vec::new();
            for x in &frontier {
                for c in (0..n).filter(|&c| c != a && !x.contains(c)) {
                    let y = x.with(c);
                    if !dominated(confirmed_a, &y) && !candidates.contains(&y) {
                        candidates.push(y);
                    }
                }
            }
            candidates.sort_unstable();
            if candidates.is_empty() {
                break;
            }
            let checks: Vec<(ColumnSet, usize)> = candidates.iter().map(|y| (*y, a)).collect();
            *revalidated += checks.len() as u64;
            let verdicts = cache.refines_many(&checks);
            frontier = Vec::new();
            for (y, holds) in candidates.iter().zip(verdicts) {
                if holds {
                    confirmed_a.push(*y);
                } else {
                    frontier.push(*y);
                }
            }
        }
    }
    let mut out = FdSet::new();
    for (a, lhss) in confirmed {
        for lhs in lhss {
            out.insert(lhs, a);
        }
    }
    out.minimize()
}

/// Delete direction, UCCs. Valid sets stay valid; new ones can only appear
/// inside the affected set `d`, so a bottom-up level-wise sweep of the
/// `d`-sublattice (pruned by everything already known valid) finds them
/// all. The old minimal sets merge in at the end — a new, smaller UCC can
/// demote an old one from minimal.
fn delete_uccs(
    cache: &mut PliCache<'_>,
    old: &[ColumnSet],
    d: &ColumnSet,
    revalidated: &mut u64,
    skipped: &mut u64,
) -> Vec<ColumnSet> {
    *skipped += old.len() as u64;
    let found = sublattice_minimal(cache, d, old, revalidated, &mut |cache, level| {
        cache.get_many(level).iter().map(|p| p.is_unique()).collect()
    });
    minimize_sets(old.iter().copied().chain(found).collect())
}

/// Delete direction, FDs: per right-hand side, sweep the `d \ {rhs}`
/// sublattice for newly valid left-hand sides and re-minimize against the
/// old ones.
fn delete_fds(
    cache: &mut PliCache<'_>,
    old: &FdSet,
    d: &ColumnSet,
    revalidated: &mut u64,
    skipped: &mut u64,
) -> FdSet {
    let mut out = FdSet::new();
    let mut per_rhs: BTreeMap<usize, Vec<ColumnSet>> = BTreeMap::new();
    for (lhs, rhs_set) in old.iter_entries() {
        for a in rhs_set.iter() {
            per_rhs.entry(a).or_default().push(*lhs);
            *skipped += 1;
        }
    }
    for a in 0..cache.table().num_columns() {
        let olds = per_rhs.remove(&a).unwrap_or_default();
        let found =
            sublattice_minimal(cache, &d.without(a), &olds, revalidated, &mut |cache, level| {
                let checks: Vec<(ColumnSet, usize)> = level.iter().map(|x| (*x, a)).collect();
                cache.refines_many(&checks)
            });
        for lhs in olds.into_iter().chain(found) {
            out.insert(lhs, a);
        }
    }
    out.minimize()
}

/// Bottom-up level-wise search for the minimal valid sets within the
/// sublattice of subsets of `d`, pruned by `known` (sets already valid
/// before the delta — their supersets cannot be minimal). `check` batches
/// the validity test for one level. Candidate generation extends invalid
/// sets by columns above their maximum, so every subset of `d` is reached
/// exactly once along its own prefix chain; a chain is cut precisely when
/// a prefix is valid or dominated, which also dominates everything above
/// it.
fn sublattice_minimal(
    cache: &mut PliCache<'_>,
    d: &ColumnSet,
    known: &[ColumnSet],
    revalidated: &mut u64,
    check: &mut dyn FnMut(&mut PliCache<'_>, &[ColumnSet]) -> Vec<bool>,
) -> Vec<ColumnSet> {
    let d_cols: Vec<usize> = d.to_vec();
    let mut found: Vec<ColumnSet> = Vec::new();
    let mut level: Vec<ColumnSet> = vec![ColumnSet::empty()];
    while !level.is_empty() {
        let candidates: Vec<ColumnSet> = level
            .iter()
            .filter(|x| !dominated(known, x) && !dominated(&found, x))
            .copied()
            .collect();
        let verdicts = if candidates.is_empty() {
            Vec::new()
        } else {
            *revalidated += candidates.len() as u64;
            check(cache, &candidates)
        };
        let mut next: Vec<ColumnSet> = Vec::new();
        for (x, valid) in candidates.iter().zip(verdicts) {
            if valid {
                found.push(*x);
            } else {
                let floor = x.max_col().map_or(0, |m| m + 1);
                next.extend(d_cols.iter().filter(|&&c| c >= floor).map(|&c| x.with(c)));
            }
        }
        level = next;
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{profile, Algorithm, ProfilerConfig};

    fn table(rows: &[&[&str]]) -> Table {
        let names: Vec<String> =
            (0..rows.first().map_or(0, |r| r.len())).map(|i| format!("c{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let rows: Vec<Vec<&str>> = rows.iter().map(|r| r.to_vec()).collect();
        Table::from_rows("t", &name_refs, &rows).unwrap().dedup_rows()
    }

    /// `apply_incremental` must agree with a from-scratch profile of the
    /// post-delta table on every dependency set, for every algorithm.
    fn assert_incremental_equivalent(t: &Table, delta: &TableDelta) -> IncrementalOutcome {
        let cfg = ProfilerConfig::default();
        let mut last = None;
        for &alg in &Algorithm::ALL {
            let old = profile(t, alg, &cfg);
            let inc = apply_incremental(&old, t, delta).unwrap();
            let scratch = profile(&inc.table, alg, &cfg);
            assert_eq!(inc.result.inds, scratch.inds, "{} INDs", alg.name());
            assert_eq!(inc.result.minimal_uccs, scratch.minimal_uccs, "{} UCCs", alg.name());
            assert_eq!(
                inc.result.fds.to_sorted_vec(),
                scratch.fds.to_sorted_vec(),
                "{} FDs",
                alg.name()
            );
            last = Some(inc);
        }
        last.unwrap()
    }

    fn append(rows: &[&[&str]]) -> TableDelta {
        TableDelta::Append {
            rows: rows.iter().map(|r| r.iter().map(|v| v.to_string()).collect()).collect(),
        }
    }

    #[test]
    fn append_breaking_a_ucc_finds_replacements() {
        // id is the key; appending a duplicate id forces wider UCCs.
        let t = table(&[&["1", "a", "x"], &["2", "a", "y"], &["3", "b", "x"]]);
        let out = assert_incremental_equivalent(&t, &append(&[&["3", "a", "y"]]));
        assert!(out.revalidated > 0);
    }

    #[test]
    fn append_outside_affected_columns_skips_everything() {
        let t = table(&[&["1", "a"], &["2", "a"], &["3", "b"]]);
        // Entirely fresh values: no column gains a duplicate, every
        // dependency carries over with zero checks.
        let out = assert_incremental_equivalent(&t, &append(&[&["9", "z"]]));
        assert_eq!(out.revalidated, 0);
        assert!(out.skipped > 0);
    }

    #[test]
    fn append_breaking_an_fd_finds_replacements() {
        // c1 → c2 holds; the appended row breaks it (a→y vs a→x).
        let t = table(&[&["1", "a", "x"], &["2", "a", "x"], &["3", "b", "y"]]);
        assert_incremental_equivalent(&t, &append(&[&["4", "a", "y"]]));
    }

    #[test]
    fn append_duplicate_row_is_identity() {
        let t = table(&[&["1", "a"], &["2", "b"]]);
        let out = assert_incremental_equivalent(&t, &append(&[&["1", "a"]]));
        assert_eq!(out.rows_deduplicated, 1);
        assert_eq!(out.appended_rows, 0);
        assert_eq!(out.revalidated, 0);
    }

    #[test]
    fn empty_append_is_identity() {
        let t = table(&[&["1", "a"], &["2", "b"]]);
        let out = assert_incremental_equivalent(&t, &append(&[]));
        assert_eq!(out.revalidated, 0);
        assert_eq!(muds_table::fingerprint(&out.table), muds_table::fingerprint(&t));
    }

    #[test]
    fn delete_revealing_a_smaller_ucc() {
        // c1 has duplicates only through row 2; deleting it makes {c1}
        // unique, demoting any wider minimal UCC that contained it.
        let t = table(&[&["1", "a", "x"], &["2", "b", "x"], &["3", "a", "y"]]);
        let out = assert_incremental_equivalent(&t, &TableDelta::Delete { rows: vec![2] });
        assert!(out.revalidated > 0);
    }

    #[test]
    fn delete_singleton_rows_checks_only_the_empty_set() {
        // Row 2 is unique in every column, so no multi-column dependency
        // can flip — but ∅-left-hand-side dependencies can (here c1
        // becomes constant, so ∅ → c1 starts holding): the empty set is a
        // subset of any affected set, and its checks are the only ones
        // allowed to run.
        let t = table(&[&["1", "a"], &["2", "a"], &["3", "z"]]);
        let out = assert_incremental_equivalent(&t, &TableDelta::Delete { rows: vec![2] });
        assert!(out.revalidated <= 1 + t.num_columns() as u64);
        assert!(out.skipped > 0);
    }

    #[test]
    fn delete_revealing_an_fd() {
        // a→x, a→y blocks c1 → c2; deleting the y row restores the FD.
        let t = table(&[&["1", "a", "x"], &["2", "a", "y"], &["3", "b", "x"]]);
        assert_incremental_equivalent(&t, &TableDelta::Delete { rows: vec![1] });
    }

    #[test]
    fn delete_all_rows() {
        let t = table(&[&["1", "a"], &["2", "b"]]);
        assert_incremental_equivalent(&t, &TableDelta::Delete { rows: vec![0, 1] });
    }

    #[test]
    fn delete_then_append_round_trip() {
        let t = table(&[&["1", "a", "x"], &["2", "a", "y"], &["3", "b", "x"]]);
        let cfg = ProfilerConfig::default();
        let old = profile(&t, Algorithm::Muds, &cfg);
        let del = apply_incremental(&old, &t, &TableDelta::Delete { rows: vec![1] }).unwrap();
        let back =
            apply_incremental(&del.result, &del.table, &append(&[&["2", "a", "y"]])).unwrap();
        // The restored row lands at the end, so row order (and with it the
        // fingerprint) differs — but the dependency sets are row-order
        // invariant and must round-trip exactly.
        assert_eq!(back.table.num_rows(), t.num_rows());
        assert_eq!(back.result.minimal_uccs, old.minimal_uccs);
        assert_eq!(back.result.fds.to_sorted_vec(), old.fds.to_sorted_vec());
        assert_eq!(back.result.inds, old.inds);
    }

    #[test]
    fn nulls_participate_in_revalidation() {
        let t = table(&[&["1", ""], &["2", "y"], &["3", ""]]);
        assert_incremental_equivalent(&t, &append(&[&["4", ""]]));
        assert_incremental_equivalent(&t, &TableDelta::Delete { rows: vec![0] });
    }

    #[test]
    fn counters_flow_into_the_ambient_registry() {
        let metrics = muds_obs::Metrics::new();
        let _guard = metrics.install();
        let t = table(&[&["1", "a"], &["2", "a"], &["3", "b"]]);
        let cfg = ProfilerConfig::default();
        let old = profile(&t, Algorithm::Muds, &cfg);
        let inc = apply_incremental(&old, &t, &append(&[&["3", "a"]])).unwrap();
        assert_eq!(inc.result.metrics.counter("delta.revalidated"), inc.revalidated);
        assert_eq!(inc.result.metrics.counter("delta.skipped"), inc.skipped);
        assert!(inc.result.metrics.spans.iter().any(|s| s.name == "delta revalidate"));
    }

    #[test]
    fn stats_carry_on_identity_deltas_and_recompute_on_real_ones() {
        let t = table(&[&["1", "a"], &["2", "a"], &["3", "b"]]);
        let cfg = ProfilerConfig { stats: true, ..ProfilerConfig::default() };
        let old = profile(&t, Algorithm::Muds, &cfg);
        assert!(old.stats.is_some());

        // Identity delta: the whole stats profile carries over untouched.
        let carried = apply_incremental(&old, &t, &append(&[])).unwrap();
        assert_eq!(carried.result.stats, old.stats);
        assert_eq!(carried.result.metrics.counter("stats.delta_carried"), t.num_columns() as u64);
        assert_eq!(carried.result.metrics.counter("stats.delta_recomputed"), 0);

        // Real delta: stats match a from-scratch profile of the new table.
        let inc = apply_incremental(&old, &t, &append(&[&["4", "b"]])).unwrap();
        let scratch = profile(&inc.table, Algorithm::Muds, &cfg);
        assert_eq!(inc.result.stats, scratch.stats);
        assert_eq!(inc.result.metrics.counter("stats.delta_recomputed"), t.num_columns() as u64);

        // A stats-less old result stays stats-less.
        let plain = profile(&t, Algorithm::Muds, &ProfilerConfig::default());
        let inc = apply_incremental(&plain, &t, &append(&[&["4", "b"]])).unwrap();
        assert_eq!(inc.result.stats, None);
    }

    #[test]
    fn random_deltas_match_from_scratch_profiles() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        for case in 0..40 {
            let cols = rng.gen_range(1..5);
            let rows = rng.gen_range(0..14);
            let domain = rng.gen_range(1..4);
            let cell = |rng: &mut StdRng| {
                let v: u32 = rng.gen_range(0..=domain);
                if v == 0 {
                    String::new()
                } else {
                    format!("v{v}")
                }
            };
            let data: Vec<Vec<String>> =
                (0..rows).map(|_| (0..cols).map(|_| cell(&mut rng)).collect()).collect();
            let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let t = Table::from_rows("t", &name_refs, &data).unwrap().dedup_rows();
            let delta = if rng.gen_bool(0.5) || t.num_rows() == 0 {
                let extra = rng.gen_range(0..4);
                TableDelta::Append {
                    rows: (0..extra).map(|_| (0..cols).map(|_| cell(&mut rng)).collect()).collect(),
                }
            } else {
                let k = rng.gen_range(1..=t.num_rows());
                TableDelta::Delete {
                    rows: (0..k).map(|_| rng.gen_range(0..t.num_rows())).collect(),
                }
            };
            let cfg = ProfilerConfig::default();
            let old = profile(&t, Algorithm::Muds, &cfg);
            let inc = apply_incremental(&old, &t, &delta).unwrap();
            let scratch = profile(&inc.table, Algorithm::Muds, &cfg);
            assert_eq!(inc.result.inds, scratch.inds, "case {case}: {delta:?}");
            assert_eq!(inc.result.minimal_uccs, scratch.minimal_uccs, "case {case}: {delta:?}");
            assert_eq!(
                inc.result.fds.to_sorted_vec(),
                scratch.fds.to_sorted_vec(),
                "case {case}: {delta:?}"
            );
        }
    }
}
