//! MUDS phase 1: FDs in connected minimal UCCs (§5.1, Algorithm 1).
//!
//! Every minimal UCC U functionally determines all other columns, so
//! `U → Z \ U` seeds a top-down minimization: the algorithm walks the
//! direct subsets of each left-hand side, tests which right-hand sides stay
//! valid one level down (partition refinement), and emits a right-hand side
//! at the highest node where no subset still determines it.
//!
//! The *connector look-up* keeps the candidate right-hand sides small:
//! for a subset X of a minimal UCC U, the connector is `U \ X`; valid FDs
//! between minimal UCCs must have their right-hand side inside some other
//! minimal UCC that contains the connector (substitution rule, §4.1).
//! Candidates that would lie entirely inside one minimal UCC are impossible
//! (§4, rule 1) and filtered out.

use std::collections::{HashMap, VecDeque};

use muds_fd::FdSet;
use muds_lattice::{ColumnSet, SetTrie};
use muds_pli::PliCache;

use super::knowledge::FdKnowledge;

/// Work counters for the phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MinimizeStats {
    /// Tasks processed (lattice nodes visited top-down).
    pub tasks: u64,
    /// Partition-refinement FD checks.
    pub fd_checks: u64,
    /// Connector look-ups performed.
    pub connector_lookups: u64,
}

/// The connector look-up of §5.1 (Table 2): the union of `V \ connector`
/// over all minimal UCCs V ⊇ connector.
pub fn connector_lookup(ucc_trie: &SetTrie, connector: &ColumnSet) -> ColumnSet {
    let mut union = ColumnSet::empty();
    for ucc in ucc_trie.supersets_of(connector) {
        union = union.union(&ucc.difference(connector));
    }
    union
}

/// §4 rule 1: an FD `lhs → a` cannot exist when `lhs ∪ {a}` fits inside a
/// single minimal UCC (the rhs could otherwise be dropped from that UCC,
/// contradicting its minimality).
fn fd_inside_ucc(ucc_trie: &SetTrie, lhs: &ColumnSet, a: usize) -> bool {
    ucc_trie.contains_superset_of(&lhs.with(a))
}

/// Runs Algorithm 1: discovers and minimizes the FDs whose left- and
/// right-hand sides lie in (different, intersecting) minimal UCCs.
///
/// `uccs` are the minimal UCCs, `ucc_trie` indexes them, and `z` is their
/// union (the set the paper calls Z). Emitted FDs are always *valid*; a
/// final structural minimization pass in the caller removes the rare
/// non-minimal leftovers the connector restriction lets through.
pub fn minimize_fds(
    cache: &mut PliCache<'_>,
    uccs: &[ColumnSet],
    ucc_trie: &SetTrie,
    z: &ColumnSet,
    knowledge: &mut FdKnowledge,
) -> (FdSet, MinimizeStats) {
    let mut stats = MinimizeStats::default();
    let mut fds = FdSet::new();

    struct Task {
        lhs: ColumnSet,
        rhs: ColumnSet,
        mucc: ColumnSet,
    }

    let mut queue: VecDeque<Task> = VecDeque::new();
    // (lhs, mucc) → right-hand sides already enqueued, to avoid reprocessing
    // shared sub-lattice nodes.
    let mut enqueued: HashMap<(ColumnSet, ColumnSet), ColumnSet> = HashMap::new();
    // Connectors and rule-1 queries repeat across tasks; memoize both.
    let mut connector_memo: HashMap<ColumnSet, ColumnSet> = HashMap::new();
    let mut rule1_memo: HashMap<ColumnSet, bool> = HashMap::new();

    for &u in uccs {
        let rhs = z.difference(&u);
        enqueued.insert((u, u), rhs);
        queue.push_back(Task { lhs: u, rhs, mucc: u });
    }

    while let Some(task) = queue.pop_front() {
        stats.tasks += 1;
        let mut current_rhs = task.rhs;
        for lhs_subset in task.lhs.direct_subsets() {
            let connector = task.mucc.difference(&lhs_subset);
            stats.connector_lookups += 1;
            let looked_up = *connector_memo
                .entry(connector)
                .or_insert_with(|| connector_lookup(ucc_trie, &connector));
            let candidates = looked_up.intersection(&task.rhs);
            let mut potential = ColumnSet::empty();
            for a in candidates.difference(&lhs_subset).iter() {
                let impossible = *rule1_memo
                    .entry(lhs_subset.with(a))
                    .or_insert_with(|| fd_inside_ucc(ucc_trie, &lhs_subset, a));
                if !impossible {
                    potential.insert(a);
                }
            }

            // One knowledge batch per node: unresolved checks of the same
            // lhs fan out across threads, outcomes apply in rhs order.
            let rhs_list: Vec<usize> = potential.iter().collect();
            stats.fd_checks += rhs_list.len() as u64;
            let mut valid_rhs = ColumnSet::empty();
            let outcomes = knowledge.decide_many(cache, &lhs_subset, &rhs_list);
            for (&a, outcome) in rhs_list.iter().zip(&outcomes) {
                if outcome.known {
                    knowledge.short_circuits += 1;
                }
                if outcome.holds {
                    valid_rhs.insert(a);
                }
            }
            current_rhs = current_rhs.difference(&valid_rhs);
            if valid_rhs.is_empty() {
                continue;
            }
            let key = (lhs_subset, task.mucc);
            let seen = enqueued.entry(key).or_insert_with(ColumnSet::empty);
            let fresh = valid_rhs.difference(seen);
            if !fresh.is_empty() {
                *seen = seen.union(&fresh);
                queue.push_back(Task { lhs: lhs_subset, rhs: fresh, mucc: task.mucc });
            }
        }
        fds.insert_all(task.lhs, &current_rhs);
    }

    (fds, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muds_table::Table;

    fn cs(cols: &[usize]) -> ColumnSet {
        ColumnSet::from_indices(cols.iter().copied())
    }

    #[test]
    fn connector_lookup_paper_example() {
        // Table 2: UCCs {AFG, BDFG, DEF, CEFG}, connector FG → ABCDE... the
        // union of matched non-connector columns is {A,B,D,C,E}.
        let (a, b, c, d, e, f, g) = (0, 1, 2, 3, 4, 5, 6);
        let trie = SetTrie::from_sets([
            cs(&[a, f, g]),
            cs(&[b, d, f, g]),
            cs(&[d, e, f]),
            cs(&[c, e, f, g]),
        ]);
        assert_eq!(connector_lookup(&trie, &cs(&[f, g])), cs(&[a, b, c, d, e]));
        // A connector matching nothing yields the empty set.
        assert_eq!(connector_lookup(&trie, &cs(&[a, b, c])), ColumnSet::empty());
    }

    #[test]
    fn rule1_fd_inside_ucc() {
        // UCC {0,1,2}: for lhs {0,1}, rhs 2 is impossible (FD inside the
        // UCC); rhs 3 is allowed.
        let trie = SetTrie::from_sets([cs(&[0, 1, 2])]);
        assert!(fd_inside_ucc(&trie, &cs(&[0, 1]), 2));
        assert!(!fd_inside_ucc(&trie, &cs(&[0, 1]), 3));
    }

    #[test]
    fn key_fds_minimized_top_down() {
        // id is a minimal UCC; copy mirrors id. Phase 1 should find
        // copy → id and id → copy (both single-column UCCs, overlapping via
        // connector ∅? No — connectors require superset UCCs).
        // Here: UCCs {id} and {copy}; Z = {id, copy}.
        let t = Table::from_rows(
            "t",
            &["id", "copy", "x"],
            &[vec!["1", "1", "a"], vec!["2", "2", "a"], vec!["3", "3", "b"]],
        )
        .unwrap();
        let mut cache = PliCache::new(&t);
        let uccs = vec![cs(&[0]), cs(&[1])];
        let trie = SetTrie::from_sets(uccs.iter().copied());
        let z = cs(&[0, 1]);
        let mut knowledge = FdKnowledge::new(t.num_columns());
        let (fds, stats) = minimize_fds(&mut cache, &uccs, &trie, &z, &mut knowledge);
        assert!(fds.contains(&cs(&[0]), 1), "id → copy");
        assert!(fds.contains(&cs(&[1]), 0), "copy → id");
        assert!(stats.tasks >= 2);
    }

    #[test]
    fn emitted_fds_are_valid() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(55);
        for _ in 0..40 {
            let cols = rng.gen_range(2..=6);
            let rows = rng.gen_range(2..=20);
            let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let data: Vec<Vec<String>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.gen_range(0..3).to_string()).collect())
                .collect();
            let t = Table::from_rows("t", &name_refs, &data).unwrap().dedup_rows();
            let mut cache = PliCache::new(&t);
            let uccs = muds_ucc::naive_minimal_uccs(&t);
            let trie = SetTrie::from_sets(uccs.iter().copied());
            let z = uccs.iter().fold(ColumnSet::empty(), |acc, u| acc.union(u));
            let mut knowledge = FdKnowledge::new(t.num_columns());
            let (fds, _) = minimize_fds(&mut cache, &uccs, &trie, &z, &mut knowledge);
            for fd in fds.to_sorted_vec() {
                assert!(
                    muds_fd::holds(&t, &fd.lhs, fd.rhs),
                    "phase 1 emitted invalid FD {fd} on {t:?}"
                );
            }
        }
    }
}
