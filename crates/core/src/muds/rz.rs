//! MUDS phase 2: graph traversal for right-hand sides in R \ Z (§5.2).
//!
//! Columns outside every minimal UCC (the set R \ Z) can still be
//! functionally determined — phase 1 never looks at them, so MUDS builds
//! one *sub-lattice* per such column A: the lattice of left-hand-side
//! candidates over R \ {A}. Each sub-lattice is traversed with the DUCC
//! random walk (shared engine in `muds-lattice`), since "X determines A"
//! is monotone exactly like uniqueness; Lemma 4 provides the downward
//! pruning the paper highlights.
//!
//! Inter-task pruning: FDs already discovered in phase 1 make some
//! candidate columns redundant — if a known FD `Y → B` has `Y ⊆ X \ {B}`,
//! then `X → A ⇔ X \ {B} → A`. The oracle therefore *reduces* each
//! candidate to its derivable-column-free core before touching PLIs, which
//! both shrinks intersections and increases cache reuse (and a minimal
//! left-hand side never contains a derivable column, so results are
//! unchanged). Disable with [`RzConfig::use_known_fd_pruning`] to measure
//! the effect (ablation A2 in DESIGN.md).

use std::collections::HashMap;

use muds_fd::FdSet;
use muds_lattice::{find_minimal_positives, ColumnSet, SetTrie, WalkConfig, WalkStats};
use muds_pli::PliCache;

use super::knowledge::FdKnowledge;

/// Configuration for the R\Z traversal.
#[derive(Debug, Clone)]
pub struct RzConfig {
    /// Seed for the per-sub-lattice random walks.
    pub seed: u64,
    /// Apply known-FD reduction in the oracle (on by default).
    pub use_known_fd_pruning: bool,
}

impl Default for RzConfig {
    fn default() -> Self {
        RzConfig { seed: 0x525A, use_known_fd_pruning: true }
    }
}

/// Work counters for the phase.
#[derive(Debug, Clone, Default)]
pub struct RzStats {
    /// Sub-lattices traversed (= |R \ Z|).
    pub sub_lattices: u64,
    /// Aggregated walk statistics over all sub-lattices.
    pub walk: WalkStats,
    /// Oracle candidates shrunk by known-FD reduction.
    pub reductions: u64,
}

/// Per-rhs index of known FD left-hand sides, supporting the reduction rule.
struct KnownFds {
    tries: HashMap<usize, SetTrie>,
}

impl KnownFds {
    fn new(fds: &FdSet) -> Self {
        let mut tries: HashMap<usize, SetTrie> = HashMap::new();
        for (lhs, rhs) in fds.iter_entries() {
            for a in rhs.iter() {
                tries.entry(a).or_default().insert(*lhs);
            }
        }
        KnownFds { tries }
    }

    /// Strips from `set` every column derivable from the rest of the set via
    /// a known FD.
    ///
    /// One pass in column order suffices for a fixpoint: removals only
    /// shrink the set, and `contains_subset_of` over a smaller rest can
    /// only flip from true to false, so a column that fails its check once
    /// can never become derivable later. (Restarting the scan after every
    /// removal is equivalent but O(|set|²) trie queries — on 255-column
    /// candidates that alone made wide-table R\Z walks run for minutes.)
    fn reduce(&self, set: &ColumnSet) -> ColumnSet {
        let mut current = *set;
        for b in set.iter() {
            let rest = current.without(b);
            if let Some(trie) = self.tries.get(&b) {
                if trie.contains_subset_of(&rest) {
                    current = rest;
                }
            }
        }
        current
    }
}

/// Discovers all minimal FDs whose right-hand side lies in `R \ Z`.
///
/// `known_fds` are the (valid) FDs already discovered by phase 1, used only
/// for oracle reduction. Results are exact: for every `a ∈ R \ Z`, all
/// minimal left-hand sides over `R \ {a}` (including the empty set for
/// constant columns).
pub fn discover_rz_fds(
    cache: &mut PliCache<'_>,
    z: &ColumnSet,
    known_fds: &FdSet,
    config: &RzConfig,
    knowledge: &mut FdKnowledge,
) -> (FdSet, RzStats) {
    let n = cache.table().num_columns();
    let r = ColumnSet::full(n);
    let mut fds = FdSet::new();
    let mut stats = RzStats::default();
    let known = if config.use_known_fd_pruning { Some(KnownFds::new(known_fds)) } else { None };

    for a in r.difference(z).iter() {
        stats.sub_lattices += 1;
        let universe = r.without(a);
        let mut reductions = 0u64;
        let mut memo: HashMap<ColumnSet, bool> = HashMap::new();
        let mut oracle = |set: &ColumnSet| {
            let target = match &known {
                Some(k) => {
                    let reduced = k.reduce(set);
                    if reduced != *set {
                        reductions += 1;
                    }
                    reduced
                }
                None => *set,
            };
            if let Some(&v) = memo.get(&target) {
                return v;
            }
            let v = cache.determines(&target, a);
            memo.insert(target, v);
            v
        };
        let walk_cfg = WalkConfig { seed: config.seed.wrapping_add(a as u64) };
        let result = find_minimal_positives(universe, &mut oracle, &walk_cfg, &[]);
        for lhs in result.minimal_positives {
            fds.insert(lhs, a);
            knowledge.record_positive(lhs, a);
        }
        for neg in result.maximal_negatives {
            knowledge.record_negative(neg, a);
        }
        stats.walk.oracle_calls += result.stats.oracle_calls;
        stats.walk.nodes_visited += result.stats.nodes_visited;
        stats.walk.hole_rounds += result.stats.hole_rounds;
        stats.walk.holes_checked += result.stats.holes_checked;
        stats.reductions += reductions;
    }

    (fds, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muds_table::Table;

    fn cs(cols: &[usize]) -> ColumnSet {
        ColumnSet::from_indices(cols.iter().copied())
    }

    /// Ground truth for rhs ∈ R\Z via the naive oracle.
    fn expected_rz(t: &Table, z: &ColumnSet) -> Vec<(ColumnSet, usize)> {
        let all = muds_fd::naive_minimal_fds(t);
        all.to_sorted_vec()
            .into_iter()
            .filter(|fd| !z.contains(fd.rhs))
            .map(|fd| (fd.lhs, fd.rhs))
            .collect()
    }

    fn z_of(t: &Table) -> ColumnSet {
        muds_ucc::naive_minimal_uccs(t).iter().fold(ColumnSet::empty(), |acc, u| acc.union(u))
    }

    #[test]
    fn finds_fds_with_rhs_outside_z() {
        // id key; x outside any minimal UCC; g → x.
        let t = Table::from_rows(
            "t",
            &["id", "g", "x"],
            &[vec!["1", "a", "p"], vec!["2", "a", "p"], vec!["3", "b", "q"], vec!["4", "b", "q"]],
        )
        .unwrap();
        let z = z_of(&t); // {id}
        assert_eq!(z, cs(&[0]));
        let mut cache = PliCache::new(&t);
        let (fds, stats) = discover_rz_fds(
            &mut cache,
            &z,
            &FdSet::new(),
            &RzConfig::default(),
            &mut FdKnowledge::new(t.num_columns()),
        );
        assert!(fds.contains(&cs(&[1]), 2), "g → x");
        assert_eq!(stats.sub_lattices, 2); // g and x
                                           // Exactness vs naive.
        let got: Vec<(ColumnSet, usize)> =
            fds.to_sorted_vec().into_iter().map(|fd| (fd.lhs, fd.rhs)).collect();
        assert_eq!(got, expected_rz(&t, &z));
    }

    #[test]
    fn constant_column_gets_empty_lhs() {
        let t = Table::from_rows("t", &["id", "k"], &[vec!["1", "c"], vec!["2", "c"]]).unwrap();
        let z = z_of(&t);
        let mut cache = PliCache::new(&t);
        let (fds, _) = discover_rz_fds(
            &mut cache,
            &z,
            &FdSet::new(),
            &RzConfig::default(),
            &mut FdKnowledge::new(t.num_columns()),
        );
        assert!(fds.contains(&ColumnSet::empty(), 1));
    }

    #[test]
    fn randomized_exactness() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(60);
        for case in 0..60 {
            let cols = rng.gen_range(2..=6);
            let rows = rng.gen_range(2..=20);
            let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let data: Vec<Vec<String>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.gen_range(0..3).to_string()).collect())
                .collect();
            let t = Table::from_rows("t", &name_refs, &data).unwrap().dedup_rows();
            let z = z_of(&t);
            let mut cache = PliCache::new(&t);
            let (fds, _) = discover_rz_fds(
                &mut cache,
                &z,
                &FdSet::new(),
                &RzConfig::default(),
                &mut FdKnowledge::new(t.num_columns()),
            );
            let got: Vec<(ColumnSet, usize)> =
                fds.to_sorted_vec().into_iter().map(|fd| (fd.lhs, fd.rhs)).collect();
            assert_eq!(got, expected_rz(&t, &z), "case {case}");
        }
    }

    #[test]
    fn known_fd_pruning_preserves_results() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(61);
        for case in 0..40 {
            let cols = rng.gen_range(3..=6);
            let rows = rng.gen_range(3..=20);
            let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let data: Vec<Vec<String>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.gen_range(0..3).to_string()).collect())
                .collect();
            let t = Table::from_rows("t", &name_refs, &data).unwrap().dedup_rows();
            let z = z_of(&t);
            // Feed *all* true FDs with rhs in Z as known knowledge.
            let known: FdSet = muds_fd::naive_minimal_fds(&t)
                .to_sorted_vec()
                .into_iter()
                .filter(|fd| z.contains(fd.rhs))
                .collect();
            let mut c1 = PliCache::new(&t);
            let (with, _) = discover_rz_fds(
                &mut c1,
                &z,
                &known,
                &RzConfig { seed: 1, use_known_fd_pruning: true },
                &mut FdKnowledge::new(t.num_columns()),
            );
            let mut c2 = PliCache::new(&t);
            let (without, _) = discover_rz_fds(
                &mut c2,
                &z,
                &FdSet::new(),
                &RzConfig { seed: 1, use_known_fd_pruning: false },
                &mut FdKnowledge::new(t.num_columns()),
            );
            assert_eq!(with.to_sorted_vec(), without.to_sorted_vec(), "case {case}");
        }
    }
}
