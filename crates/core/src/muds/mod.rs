//! The MUDS algorithm (§5): holistic discovery of unary INDs, minimal
//! UCCs, and minimal FDs in one execution.
//!
//! Execution strategy (§5, mirrored by [`muds`]):
//!
//! 1. **SPIDER + PLI construction** — while the input is "read", unary INDs
//!    are computed and the single-column PLIs built (one shared scan).
//! 2. **DUCC** — all minimal UCCs, via the random walk over the shared
//!    PLI cache.
//! 3. **FD discovery in three phases** driven by the UCCs:
//!    [`minimize::minimize_fds`] (§5.1, FDs between connected minimal
//!    UCCs), [`rz::discover_rz_fds`] (§5.2, sub-lattice walks for right-hand
//!    sides in R\Z), and [`shadowed::discover_shadowed_fds`] (§5.3,
//!    shadowed FDs). A set-trie of the minimal UCCs (§5.4) backs the subset
//!    and connector look-ups throughout.
//!
//! Per-phase wall-clock timings are reported in the exact granularity of
//! Figure 8 of the paper.

pub mod knowledge;
pub mod minimize;
pub mod rz;
pub mod shadowed;

use std::time::{Duration, Instant};

use muds_fd::FdSet;
use muds_ind::{spider_with_stats, Ind, SpiderStats};
use muds_lattice::{find_minimal_positives_seeded, ColumnSet, SetTrie, WalkConfig, WalkStats};
use muds_pli::{PliCache, PliCacheStats};
use muds_table::Table;
use muds_ucc::{ducc, DuccConfig};

pub use minimize::MinimizeStats;
pub use rz::{RzConfig, RzStats};
pub use shadowed::{ShadowLookup, ShadowedStats};

/// Configuration of a MUDS run.
#[derive(Debug, Clone)]
pub struct MudsConfig {
    /// Base RNG seed for the DUCC walk and the R\Z sub-lattice walks.
    pub seed: u64,
    /// Known-FD reduction in the R\Z oracle (§5.2 inter-task pruning).
    pub use_known_fd_pruning: bool,
    /// Shadow look-up variant for phase 3 (§5.3). `Faithful` (default) is
    /// the paper's exact-lhs single pass; `Generous` widens the look-up to
    /// the connector's closure and iterates to a fixpoint — slower, closes
    /// part of the completeness gap without the sweep (study knob).
    pub shadow_lookup: shadowed::ShadowLookup,
    /// Run the exactness sweep after the shadowed phase: one seeded
    /// sub-lattice walk per right-hand side in Z, certifying that no
    /// minimal FD was missed.
    ///
    /// **Defaults to on.** The paper argues phases 1+3 find every minimal
    /// FD with a right-hand side in Z, but our reproduction found a
    /// counterexample (see `paper_faithful_mode_misses_a_shadowed_fd` and
    /// DESIGN.md): a minimal lhs mixing columns of several overlapping
    /// UCCs can be unreachable by Algorithm 2's extend-and-reduce cycle.
    /// Set to `false` for the paper-faithful behavior.
    pub completion_sweep: bool,
}

impl Default for MudsConfig {
    fn default() -> Self {
        MudsConfig {
            seed: 0x4D554453,
            use_known_fd_pruning: true,
            shadow_lookup: shadowed::ShadowLookup::Faithful,
            completion_sweep: true,
        }
    }
}

/// Wall-clock duration of each MUDS phase — the six bars of Figure 8.
#[derive(Debug, Clone, Default)]
pub struct MudsPhaseTimings {
    /// Input scan: SPIDER + single-column PLI construction.
    pub spider: Duration,
    /// Minimal UCC discovery.
    pub ducc: Duration,
    /// §5.1 FDs from connected minimal UCCs.
    pub minimize_fds: Duration,
    /// §5.2 sub-lattice walks for R\Z.
    pub calculate_rz: Duration,
    /// §5.3 shadow-task generation (incl. validation checks).
    pub generate_shadowed: Duration,
    /// §5.3 top-down minimization of shadow tasks.
    pub minimize_shadowed: Duration,
    /// Exactness sweep (our addition; zero when disabled — the paper's six
    /// phases are the rows above).
    pub completion_sweep: Duration,
}

impl MudsPhaseTimings {
    /// `(label, duration)` pairs in execution order — Figure 8's x-axis,
    /// plus the sweep row when it ran.
    pub fn as_rows(&self) -> Vec<(&'static str, Duration)> {
        let mut rows = vec![
            ("SPIDER", self.spider),
            ("DUCC", self.ducc),
            ("minimize FDs", self.minimize_fds),
            ("calculate R\\Z", self.calculate_rz),
            ("generate shadowed fd tasks", self.generate_shadowed),
            ("minimize shadowed tasks", self.minimize_shadowed),
        ];
        if !self.completion_sweep.is_zero() {
            rows.push(("completion sweep", self.completion_sweep));
        }
        rows
    }

    /// Total across all phases.
    pub fn total(&self) -> Duration {
        self.spider
            + self.ducc
            + self.minimize_fds
            + self.calculate_rz
            + self.generate_shadowed
            + self.minimize_shadowed
            + self.completion_sweep
    }
}

/// Work counters of every MUDS component.
#[derive(Debug, Clone, Default)]
pub struct MudsStats {
    pub spider: SpiderStats,
    pub ducc_walk: WalkStats,
    pub minimize: MinimizeStats,
    pub rz: RzStats,
    pub shadowed: ShadowedStats,
    pub pli: PliCacheStats,
    /// Oracle checks spent by the optional completion sweep (0 = disabled
    /// or nothing to do).
    pub sweep_oracle_calls: u64,
}

/// Full result of a MUDS run.
#[derive(Debug, Clone)]
pub struct MudsReport {
    /// All unary inclusion dependencies.
    pub inds: Vec<Ind>,
    /// All minimal unique column combinations, sorted.
    pub minimal_uccs: Vec<ColumnSet>,
    /// All minimal functional dependencies.
    pub fds: FdSet,
    /// Per-phase wall-clock timings (Figure 8 granularity).
    pub timings: MudsPhaseTimings,
    /// Work counters.
    pub stats: MudsStats,
}

/// Runs MUDS on `table`.
///
/// Precondition (§3): `table` must be duplicate-free — use
/// [`Table::dedup_rows`] first. With duplicates the UCC set is empty and
/// the result degrades gracefully (every FD is still found via the R\Z
/// phase), but none of the paper's inter-task pruning applies.
pub fn muds(table: &Table, config: &MudsConfig) -> MudsReport {
    let mut timings = MudsPhaseTimings::default();
    let mut stats = MudsStats::default();

    // Phase: SPIDER + PLI construction (shared input scan). Each phase is
    // an obs span: the timer both feeds the legacy `MudsPhaseTimings`
    // (Figure 8 rows) and nests into the ambient registry's phase tree.
    let span = muds_obs::span("SPIDER");
    // SPIDER and PLI construction read the same immutable columns but
    // produce independent outputs, so the "one shared scan" phase runs them
    // as the two branches of a join. Ambient metrics registries are
    // thread-local; the branch that may land on a worker thread installs
    // the captured handle so SPIDER's counter flush is not lost.
    let ambient = muds_obs::Metrics::current();
    let (mut cache, (inds, spider_stats)) = rayon::join(
        || PliCache::new(table),
        move || {
            let _guard = ambient.as_ref().map(|m| m.install());
            spider_with_stats(table)
        },
    );
    timings.spider = span.stop();
    stats.spider = spider_stats;

    // Phase: DUCC.
    let span = muds_obs::span("DUCC");
    let ducc_cfg = DuccConfig { walk: WalkConfig { seed: config.seed } };
    let ducc_result = ducc(&mut cache, &ducc_cfg);
    timings.ducc = span.stop();
    stats.ducc_walk = ducc_result.stats.clone();
    let minimal_uccs = ducc_result.minimal_uccs.clone();

    // Shared lattice indexes: UCC prefix tree (§5.4) and Z, plus the
    // holistic FD-knowledge store consulted and fed by every phase. Lemma 2
    // seeds it: every minimal UCC determines every other column.
    let ucc_trie = SetTrie::from_sets(minimal_uccs.iter().copied());
    let z = minimal_uccs.iter().fold(ColumnSet::empty(), |acc, u| acc.union(u));
    let r = ColumnSet::full(table.num_columns());
    let mut knowledge = knowledge::FdKnowledge::new(table.num_columns());
    for u in &minimal_uccs {
        for a in r.difference(u).iter() {
            knowledge.record_positive(*u, a);
        }
    }

    // Phase: FDs in connected minimal UCCs (§5.1).
    let span = muds_obs::span("minimize FDs");
    let (mut fds, minimize_stats) =
        minimize::minimize_fds(&mut cache, &minimal_uccs, &ucc_trie, &z, &mut knowledge);
    timings.minimize_fds = span.stop();
    muds_obs::add("minimize.tasks", minimize_stats.tasks);
    muds_obs::add("minimize.fd_checks", minimize_stats.fd_checks);
    muds_obs::add("minimize.connector_lookups", minimize_stats.connector_lookups);
    stats.minimize = minimize_stats;

    // Phase: R\Z sub-lattice walks (§5.2).
    let span = muds_obs::span("calculate R\\Z");
    let rz_cfg =
        RzConfig { seed: config.seed ^ 0x5A5A, use_known_fd_pruning: config.use_known_fd_pruning };
    let (rz_fds, rz_stats) = rz::discover_rz_fds(&mut cache, &z, &fds, &rz_cfg, &mut knowledge);
    timings.calculate_rz = span.stop();
    // The per-walk counters inside each sub-lattice flush themselves
    // (`walk.*`); these are the phase-level aggregates.
    muds_obs::add("rz.sub_lattices", rz_stats.sub_lattices);
    muds_obs::add("rz.reductions", rz_stats.reductions);
    stats.rz = rz_stats;
    for fd in rz_fds.to_sorted_vec() {
        fds.insert(fd.lhs, fd.rhs);
    }

    // Phase: shadowed FDs (§5.3). Timing is split inside between task
    // generation and minimization (Figure 8 reports them separately).
    // lint:allow(wall-clock): measures elapsed time for the Figure 8
    // phase split only; the duration feeds record_span and never
    // influences which FDs are discovered.
    let t0 = Instant::now();
    let shadowed_stats = shadowed::discover_shadowed_fds(
        &mut cache,
        &mut fds,
        &ucc_trie,
        config.shadow_lookup,
        &mut knowledge,
    );
    let shadow_total = t0.elapsed();
    // Attribute time to generation vs minimization proportionally to the FD
    // checks spent in each (both phases are check-dominated, §6.4). The two
    // logical phases share one measured interval, so they enter the span
    // tree post-hoc as leaf spans rather than via RAII timers.
    let gen = shadowed_stats.generation_fd_checks;
    let min = shadowed_stats.minimize_fd_checks;
    if gen + min == 0 {
        // Everything short-circuited: no check ratio to split by, but the
        // wall time is real — attribute it to generation rather than
        // dropping it from the span tree.
        timings.generate_shadowed = shadow_total;
        timings.minimize_shadowed = Duration::ZERO;
    } else {
        let denom = gen + min;
        timings.generate_shadowed = shadow_total.mul_f64(gen as f64 / denom as f64);
        timings.minimize_shadowed = shadow_total.mul_f64(min as f64 / denom as f64);
    }
    muds_obs::record_span("generate shadowed fd tasks", timings.generate_shadowed);
    muds_obs::record_span("minimize shadowed tasks", timings.minimize_shadowed);
    muds_obs::add("shadowed.tasks_generated", shadowed_stats.tasks_generated);
    muds_obs::add("shadowed.generation_fd_checks", shadowed_stats.generation_fd_checks);
    muds_obs::add("shadowed.minimize_fd_checks", shadowed_stats.minimize_fd_checks);
    muds_obs::add("shadowed.checks_short_circuited", shadowed_stats.checks_short_circuited);
    muds_obs::add("shadowed.rounds", shadowed_stats.rounds);
    stats.shadowed = shadowed_stats;

    // Optional exactness sweep for right-hand sides in Z.
    if config.completion_sweep {
        let span = muds_obs::span("completion sweep");
        let sweep_calls = completion_sweep(&mut cache, &z, &mut fds, &mut knowledge, config);
        timings.completion_sweep = span.stop();
        stats.sweep_oracle_calls = sweep_calls;
        muds_obs::add("muds.sweep_oracle_calls", sweep_calls);
    }

    // Structural minimality guard (pure set algebra; see DESIGN.md).
    let fds = fds.minimize();

    stats.pli = cache.stats().clone();
    MudsReport { inds, minimal_uccs, fds, timings, stats }
}

/// One seeded sub-lattice walk per rhs ∈ Z: every already-known lhs is
/// walked down to a minimal one, then the duality loop certifies nothing is
/// missing. Returns oracle calls spent.
fn completion_sweep(
    cache: &mut PliCache<'_>,
    z: &ColumnSet,
    fds: &mut FdSet,
    knowledge: &mut knowledge::FdKnowledge,
    config: &MudsConfig,
) -> u64 {
    let n = cache.table().num_columns();
    let r = ColumnSet::full(n);
    let mut total_calls = 0u64;
    for a in z.iter() {
        let universe = r.without(a);
        // Seed the walk with everything the earlier phases learned about
        // this right-hand side, positive and negative.
        let seeds: Vec<ColumnSet> = knowledge.positive_sets(a);
        let negatives: Vec<ColumnSet> = knowledge
            .negative_sets(a)
            .iter()
            .copied()
            .filter(|s| s.is_subset_of(&universe))
            .collect();
        let mut oracle = |set: &ColumnSet| cache.determines(set, a);
        let walk_cfg = WalkConfig { seed: config.seed ^ (0xC0DE + a as u64) };
        let result =
            find_minimal_positives_seeded(universe, &mut oracle, &walk_cfg, &negatives, &seeds);
        total_calls += result.stats.oracle_calls;
        for lhs in result.minimal_positives {
            fds.insert(lhs, a);
        }
    }
    total_calls
}

#[cfg(test)]
mod tests {
    use super::*;
    use muds_fd::naive_minimal_fds;
    use muds_ind::naive_inds;
    use muds_ucc::naive_minimal_uccs;

    fn cs(cols: &[usize]) -> ColumnSet {
        ColumnSet::from_indices(cols.iter().copied())
    }

    fn check_equivalence(t: &Table, config: &MudsConfig) {
        let report = muds(t, config);
        assert_eq!(report.inds, naive_inds(t), "INDs differ on {}", t.name());
        assert_eq!(report.minimal_uccs, naive_minimal_uccs(t), "UCCs differ on {}", t.name());
        assert_eq!(
            report.fds.to_sorted_vec(),
            naive_minimal_fds(t).to_sorted_vec(),
            "FDs differ on {} (sweep={})",
            t.name(),
            config.completion_sweep
        );
    }

    #[test]
    fn simple_key_table() {
        let t = Table::from_rows(
            "t",
            &["id", "name", "dept", "dept_head"],
            &[
                vec!["1", "ann", "cs", "dijkstra"],
                vec!["2", "bob", "cs", "dijkstra"],
                vec!["3", "cat", "ee", "shannon"],
                vec!["4", "dan", "ee", "shannon"],
            ],
        )
        .unwrap();
        check_equivalence(&t, &MudsConfig::default());
        let report = muds(&t, &MudsConfig::default());
        assert_eq!(report.minimal_uccs, vec![cs(&[0]), cs(&[1])]);
        assert!(report.fds.contains(&cs(&[2]), 3), "dept → dept_head");
        assert!(report.fds.contains(&cs(&[3]), 2), "dept_head → dept");
    }

    #[test]
    fn shadowed_fd_scenario() {
        // Engineered so phase 1 alone misses an FD: two overlapping keys
        // plus a derived column combination.
        let rows: Vec<Vec<String>> = (0u32..16)
            .map(|i| {
                vec![
                    i.to_string(),                   // A: key
                    (i / 2).to_string(),             // B
                    (i % 2).to_string(),             // C
                    ((i / 2) ^ (i % 2)).to_string(), // D = f(B, C)
                ]
            })
            .collect();
        let t = Table::from_rows("t", &["A", "B", "C", "D"], &rows).unwrap();
        check_equivalence(&t, &MudsConfig::default());
    }

    #[test]
    fn degenerate_tables() {
        let t1 = Table::from_rows("one-row", &["a", "b"], &[vec!["1", "2"]]).unwrap();
        check_equivalence(&t1, &MudsConfig::default());
        let rows: Vec<Vec<&str>> = vec![];
        let t0 = Table::from_rows("empty", &["a", "b"], &rows).unwrap();
        check_equivalence(&t0, &MudsConfig::default());
        let t = Table::from_rows("single-col", &["a"], &[vec!["1"], vec!["2"]]).unwrap();
        check_equivalence(&t, &MudsConfig::default());
    }

    #[test]
    fn duplicate_rows_degrade_gracefully() {
        // Duplicates → no UCCs → Z = ∅ → everything via phase 2 (exact).
        let t = Table::from_rows(
            "dups",
            &["a", "b"],
            &[vec!["1", "x"], vec!["1", "x"], vec!["2", "y"]],
        )
        .unwrap();
        let report = muds(&t, &MudsConfig::default());
        assert!(report.minimal_uccs.is_empty());
        assert_eq!(report.fds.to_sorted_vec(), naive_minimal_fds(&t).to_sorted_vec());
    }

    #[test]
    fn randomized_equivalence_with_default_config() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7777);
        for case in 0..200 {
            let cols = rng.gen_range(1..=7);
            let rows = rng.gen_range(1..=30);
            let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let cardinality = rng.gen_range(2..=4);
            let data: Vec<Vec<String>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.gen_range(0..cardinality).to_string()).collect())
                .collect();
            let t =
                Table::from_rows(format!("rand{case}"), &name_refs, &data).unwrap().dedup_rows();
            check_equivalence(&t, &MudsConfig::default());
        }
    }

    /// Paper-faithful mode (no sweep) is *sound* — everything it emits is a
    /// valid FD — but measurably incomplete on adversarial uniform-random
    /// tables (~10% of minimal FDs missed; see DESIGN.md). This test pins
    /// both properties so a future change to the phase-3 look-ups that
    /// closes (or widens) the gap is noticed.
    #[test]
    fn paper_faithful_mode_is_sound_and_incompleteness_is_bounded() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7777);
        let cfg = MudsConfig { completion_sweep: false, ..MudsConfig::default() };
        let mut missing_total = 0usize;
        for case in 0..200 {
            let cols = rng.gen_range(1..=7);
            let rows = rng.gen_range(1..=30);
            let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let cardinality = rng.gen_range(2..=4);
            let data: Vec<Vec<String>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.gen_range(0..cardinality).to_string()).collect())
                .collect();
            let t =
                Table::from_rows(format!("rand{case}"), &name_refs, &data).unwrap().dedup_rows();
            let report = muds(&t, &cfg);
            for fd in report.fds.to_sorted_vec() {
                assert!(muds_fd::holds(&t, &fd.lhs, fd.rhs), "unsound FD {fd} on case {case}");
            }
            let truth: std::collections::BTreeSet<_> =
                naive_minimal_fds(&t).to_sorted_vec().into_iter().collect();
            let got: std::collections::BTreeSet<_> =
                report.fds.to_sorted_vec().into_iter().collect();
            missing_total += truth.difference(&got).count();
        }
        // Measured on this seed: 149 of 1465 minimal FDs missed across 200
        // uniform-random tables. Keep a loose band so RNG-stream changes
        // don't break the build while real regressions still do.
        assert!(missing_total > 0, "faithful mode became complete — update DESIGN.md");
        assert!(
            missing_total < 300,
            "paper-faithful mode missed {missing_total} FDs; far above the expected band"
        );
    }

    /// Regression fixture for the incompleteness of the paper's phases 1+3
    /// (DESIGN.md): with minimal UCCs {{0,1,3},{1,3,4},{0,2,3,4}}, the
    /// minimal FD {0,1,4} → 2 is unreachable by Algorithm 2's
    /// extend-and-reduce cycle — every extension yields the full column set
    /// and UCC removal never strips column 2, because column 3 alone breaks
    /// all three contained UCCs. The completion sweep recovers it.
    #[test]
    fn paper_faithful_mode_misses_a_shadowed_fd() {
        let raw = [
            "1,0,2,0,0",
            "2,1,3,0,0",
            "0,3,0,3,1",
            "2,3,3,0,2",
            "0,2,3,1,2",
            "1,3,0,2,3",
            "0,2,0,0,3",
            "1,0,0,3,1",
            "3,2,3,2,1",
            "3,3,2,3,0",
            "3,2,3,3,2",
            "3,1,2,3,2",
            "1,2,0,0,1",
            "3,3,2,0,1",
            "0,1,3,1,1",
            "3,3,2,2,1",
        ];
        let rows: Vec<Vec<&str>> = raw.iter().map(|r| r.split(',').collect()).collect();
        let t = Table::from_rows("counterexample", &["A", "B", "C", "D", "E"], &rows).unwrap();
        let missing_lhs = cs(&[0, 1, 4]);
        assert!(muds_fd::holds(&t, &missing_lhs, 2));

        let faithful = muds(&t, &MudsConfig { completion_sweep: false, ..MudsConfig::default() });
        assert!(
            !faithful.fds.contains(&missing_lhs, 2),
            "if the faithful mode now finds this FD, the fixture is stale — \
             update DESIGN.md's incompleteness discussion"
        );
        let exact = muds(&t, &MudsConfig::default());
        assert!(exact.fds.contains(&missing_lhs, 2));
        check_equivalence(&t, &MudsConfig::default());
    }

    #[test]
    fn timings_cover_all_phases() {
        let t = Table::from_rows(
            "t",
            &["a", "b", "c"],
            &[vec!["1", "x", "p"], vec!["2", "y", "p"], vec!["3", "x", "q"]],
        )
        .unwrap();
        let report = muds(&t, &MudsConfig::default());
        let rows = report.timings.as_rows();
        assert!(rows.len() >= 6, "expected the six Figure-8 phases, got {}", rows.len());
        assert_eq!(rows[0].0, "SPIDER");
        assert!(report.timings.total() >= report.timings.spider);
        // Paper-faithful mode reports exactly the six Figure-8 phases.
        let faithful = muds(&t, &MudsConfig { completion_sweep: false, ..MudsConfig::default() });
        assert_eq!(faithful.timings.as_rows().len(), 6);
    }
}
