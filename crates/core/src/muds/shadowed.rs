//! MUDS phase 3: shadowed FD discovery and minimization (§5.3,
//! Algorithms 2–4).
//!
//! Phase 1 derives FDs from the minimal UCCs, but a left-hand side mixing
//! columns of *different* minimal UCCs (or of R \ Z) is never generated
//! there — the paper calls such FDs *shadowed*. The repair: for every
//! discovered FD and every split of its left-hand side into
//! `subset ∪ connector`, the columns determined by the connector
//! (`FDs[connector]`) may shadow further left-hand sides. Extending the FD
//! with those columns yields a valid but non-minimal FD, which is then
//! reduced (left-hand sides containing a whole minimal UCC can never be
//! minimal — Algorithm 3 strips them using the UCC prefix tree) and
//! minimized top-down (Algorithm 4).
//!
//! Two look-up variants are provided (see [`ShadowLookup`]): the paper's
//! exact-lhs single pass, and a wider subset-closure fixpoint. Neither is
//! complete on adversarial inputs (DESIGN.md documents a counterexample),
//! which is why MUDS pairs this phase with a completion sweep by default.

use std::collections::{HashMap, HashSet};

use muds_fd::FdSet;
use muds_lattice::{find_minimal_positives_seeded, ColumnSet, SetTrie, WalkConfig};
use muds_pli::PliCache;

use super::knowledge::FdKnowledge;

/// Work counters for the phase, split like Figure 8 of the paper.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShadowedStats {
    /// Shadow-extension candidates generated (Algorithm 2).
    pub tasks_generated: u64,
    /// Partition-refinement checks spent validating generated tasks.
    pub generation_fd_checks: u64,
    /// Partition-refinement checks spent minimizing (Algorithm 4).
    pub minimize_fd_checks: u64,
    /// PLI checks avoided because a known FD already dominated the
    /// candidate (`Y → a` with `Y ⊆ lhs` recorded ⇒ `lhs → a` valid).
    pub checks_short_circuited: u64,
    /// Generate+minimize rounds until fixpoint (paper: single pass).
    pub rounds: u64,
}

/// Algorithm 3: all maximal UCC-free reductions of `lhs`.
///
/// For each minimal UCC contained in `lhs`, at least one of its columns
/// must be removed; a *maximal* UCC-free reduction therefore is exactly
/// `lhs \ H` for a **minimal hitting set** H of the contained UCCs. The
/// paper enumerates removal choices UCC-by-UCC (with duplicates and
/// dominated results filtered afterwards); computing the minimal
/// transversals directly with MMCS yields the same antichain orders of
/// magnitude faster on FD-dense data, where a left-hand side can contain
/// dozens of overlapping minimal UCCs.
pub fn remove_uccs(lhs: &ColumnSet, ucc_trie: &SetTrie) -> Vec<ColumnSet> {
    let contained: Vec<ColumnSet> = ucc_trie.subsets_of(lhs);
    if contained.is_empty() {
        return vec![*lhs];
    }
    let mut reduced: Vec<ColumnSet> = muds_lattice::minimal_hitting_sets(&contained, lhs)
        .into_iter()
        .map(|removal| lhs.difference(&removal))
        .collect();
    reduced.sort();
    reduced
}

/// Algorithm 4: top-down minimization of validated shadow tasks.
///
/// Each task `(L, R)` asks for *every* minimal `X ⊆ L` with `X → a`, for
/// each `a ∈ R`. The paper's breadth-first descent over direct subsets
/// answers that by visiting every valid subset of `L` — which is
/// exponential whenever `L` is wide and contains a stable determinant
/// (a key column makes all `2^{|L|-1}` subsets containing it valid; at
/// the 256-column boundary the descent never terminates). We solve the
/// identical problem with the shared walk engine instead: one
/// minimal-positive search per distinct `(L, a)` pair, seeded with `L`
/// (valid by construction) and backed by [`FdKnowledge`], whose memo
/// spans problems. The walk is polynomial in the output, so outputs stay
/// exactly the box-minimal valid FDs of the breadth-first formulation.
///
/// Returns the number of fresh FDs added.
fn minimize_tasks(
    cache: &mut PliCache<'_>,
    tasks: Vec<(ColumnSet, ColumnSet)>,
    fds: &mut FdSet,
    knowledge: &mut FdKnowledge,
    stats: &mut ShadowedStats,
) -> usize {
    let mut problems: Vec<(ColumnSet, usize)> = Vec::new();
    let mut seen: HashSet<(ColumnSet, usize)> = HashSet::new();
    for (lhs, rhs) in &tasks {
        for a in rhs.iter() {
            if seen.insert((*lhs, a)) {
                problems.push((*lhs, a));
            }
        }
    }
    // Fixed problem order keeps the interleaving of knowledge look-ups
    // with knowledge growth identical across runs (determinism contract).
    problems.sort_unstable();
    let mut added = 0usize;
    for (universe, a) in problems {
        // Seed the walk with everything already known about this rhs:
        // recorded positives inside the box, and recorded negatives
        // intersected into it (any subset of a non-determining set is
        // non-determining). After the R\Z phase this usually classifies
        // the whole box up front, so re-minimizing costs no oracle calls.
        let mut seeds: Vec<ColumnSet> =
            knowledge.positive_sets(a).into_iter().filter(|p| p.is_subset_of(&universe)).collect();
        seeds.push(universe);
        let negatives: Vec<ColumnSet> =
            knowledge.negative_sets(a).iter().map(|n| n.intersection(&universe)).collect();
        let mut fresh_checks = 0u64;
        let mut short_circuited = 0u64;
        let mut oracle = |set: &ColumnSet| {
            let before = knowledge.checks;
            let holds = knowledge.determines(cache, set, a);
            if knowledge.checks == before {
                short_circuited += 1;
            } else {
                fresh_checks += 1;
            }
            holds
        };
        let cfg = WalkConfig { seed: 0x5AD0_u64 ^ a as u64 };
        let result = find_minimal_positives_seeded(universe, &mut oracle, &cfg, &negatives, &seeds);
        stats.minimize_fd_checks += fresh_checks;
        stats.checks_short_circuited += short_circuited;
        for lhs in result.minimal_positives {
            if fds.insert(lhs, a) {
                knowledge.record_positive(lhs, a);
                added += 1;
            }
        }
    }
    added
}

/// How Algorithm 2 looks up the shadowed columns of a connector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShadowLookup {
    /// The paper's pseudocode: the exact-lhs entry `FDs[connector]`, one
    /// generate+minimize pass. Fast; incomplete on adversarial inputs
    /// (MUDS pairs it with the completion sweep for exactness).
    Faithful,
    /// Our wider variant: everything *any subset* of the connector
    /// determines (its closure w.r.t. the known FDs), iterated to a
    /// fixpoint. Closes part of the completeness gap without the sweep but
    /// multiplies generation work on FD-dense data — kept as a study knob
    /// (DESIGN.md).
    Generous,
}

/// Algorithm 2: extends `fds` (in place) with shadowed FDs. `fds` must
/// contain only valid FDs on entry.
pub fn discover_shadowed_fds(
    cache: &mut PliCache<'_>,
    fds: &mut FdSet,
    ucc_trie: &SetTrie,
    lookup: ShadowLookup,
    knowledge: &mut FdKnowledge,
) -> ShadowedStats {
    let mut stats = ShadowedStats::default();
    knowledge.absorb(fds);
    // (lhs, connector) pairs already expanded, across rounds.
    let mut expanded: HashSet<(ColumnSet, ColumnSet)> = HashSet::new();
    // Extensions repeat the same inflated left-hand side many times; the
    // UCC-removal of Algorithm 3 is memoized per distinct set.
    let mut reductions: HashMap<ColumnSet, Vec<ColumnSet>> = HashMap::new();

    loop {
        stats.rounds += 1;
        let mut tasks: Vec<(ColumnSet, ColumnSet)> = Vec::new();
        // `FdSet` stores entries in a hash map; sort so the check sequence
        // (and thus every interleaving of knowledge lookups with knowledge
        // growth) is identical across runs — probe counters are part of the
        // determinism contract pinned by tests/determinism.rs.
        let mut entries: Vec<(ColumnSet, ColumnSet)> =
            fds.iter_entries().map(|(l, r)| (*l, *r)).collect();
        entries.sort_unstable();
        // Index all current left-hand sides. A connector with a non-empty
        // `FDs[connector]` is by definition a stored lhs, so instead of
        // enumerating all 2^|lhs| subsets (the paper's formulation) we
        // enumerate exactly the stored lhs's inside fd.lhs via the prefix
        // tree — identical outcomes, exponentially less iteration on
        // FD-dense data.
        let lhs_trie = SetTrie::from_sets(entries.iter().map(|(l, _)| *l));
        for (lhs, rhs) in &entries {
            for connector in lhs_trie.subsets_of(lhs) {
                if !expanded.insert((*lhs, connector)) {
                    continue;
                }
                let shadowed_rhs = match lookup {
                    ShadowLookup::Faithful => fds.rhs_of(&connector),
                    ShadowLookup::Generous => {
                        let mut union = ColumnSet::empty();
                        for dominated in lhs_trie.subsets_of(&connector) {
                            union = union.union(&fds.rhs_of(&dominated));
                        }
                        union
                    }
                };
                if shadowed_rhs.is_empty() {
                    continue;
                }
                let new_lhs = lhs.union(&shadowed_rhs);
                if new_lhs == *lhs {
                    continue;
                }
                let reduced_sets = reductions
                    .entry(new_lhs)
                    .or_insert_with(|| remove_uccs(&new_lhs, ucc_trie))
                    .clone();
                for reduced in reduced_sets {
                    // The extension is valid for new_lhs by construction;
                    // after UCC removal it must be re-validated. The
                    // reductions stay sequential (a check on one reduced
                    // set can short-circuit the next), but each set's
                    // unresolved checks fan out as one batch.
                    let rhs_list: Vec<usize> = rhs.difference(&reduced).iter().collect();
                    let outcomes = knowledge.decide_many(cache, &reduced, &rhs_list);
                    let mut valid = ColumnSet::empty();
                    for (&a, outcome) in rhs_list.iter().zip(&outcomes) {
                        if outcome.known {
                            stats.checks_short_circuited += 1;
                        } else {
                            stats.generation_fd_checks += 1;
                        }
                        if outcome.holds {
                            valid.insert(a);
                        }
                    }
                    if !valid.is_empty() {
                        stats.tasks_generated += 1;
                        tasks.push((reduced, valid));
                    }
                }
            }
        }
        if tasks.is_empty() {
            break;
        }
        let added = minimize_tasks(cache, tasks, fds, knowledge, &mut stats);
        // Faithful mode: the paper's single generate+minimize pass.
        if lookup == ShadowLookup::Faithful || added == 0 {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use muds_table::Table;

    fn cs(cols: &[usize]) -> ColumnSet {
        ColumnSet::from_indices(cols.iter().copied())
    }

    #[test]
    fn remove_uccs_no_contained_ucc_is_identity() {
        let trie = SetTrie::from_sets([cs(&[5, 6])]);
        assert_eq!(remove_uccs(&cs(&[0, 1]), &trie), vec![cs(&[0, 1])]);
    }

    #[test]
    fn remove_uccs_single_ucc() {
        // lhs {0,1,2}, UCC {0,1}: remove 0 or 1.
        let trie = SetTrie::from_sets([cs(&[0, 1])]);
        let mut got = remove_uccs(&cs(&[0, 1, 2]), &trie);
        got.sort();
        let mut want = vec![cs(&[1, 2]), cs(&[0, 2])];
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn remove_uccs_overlapping_uccs_share_removals() {
        // lhs {0,1,2}; UCCs {0,1} and {1,2}. Removing 1 breaks both;
        // removing 0 then forces removing 1 or 2.
        let trie = SetTrie::from_sets([cs(&[0, 1]), cs(&[1, 2])]);
        let mut got = remove_uccs(&cs(&[0, 1, 2]), &trie);
        got.sort();
        // Maximal reductions: {0,2} (remove 1) and {1} (remove 0 and 2);
        // {2} and {0} are dominated by {0,2}.
        let mut want = vec![cs(&[0, 2]), cs(&[1])];
        want.sort();
        assert_eq!(got, want);
        for r in &got {
            assert!(!trie.contains_subset_of(r), "{r:?} still contains a UCC");
        }
    }

    #[test]
    fn remove_uccs_result_never_contains_ucc() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let n = 8;
            let lhs = ColumnSet::from_indices((0..n).filter(|_| rng.gen_bool(0.6)));
            let mut trie = SetTrie::new();
            for _ in 0..rng.gen_range(1..4) {
                let k = rng.gen_range(1..=3);
                trie.insert(ColumnSet::from_indices((0..k).map(|_| rng.gen_range(0..n))));
            }
            for r in remove_uccs(&lhs, &trie) {
                assert!(r.is_subset_of(&lhs));
                assert!(!trie.contains_subset_of(&r));
            }
        }
    }

    #[test]
    fn paper_shadowed_example_is_found() {
        // §4.3's example, realized as data: R = {A,B,C,D,E} with minimal
        // UCCs BCD, CDE, AD and an extra minimal FD AC → B that phase 1
        // cannot reach. We emulate phase-1 output (FDs directly from the
        // UCCs) and check the shadowed phase recovers AC → B.
        // Construct a table with exactly that structure:
        //   A = r mod 4, C = r mod 2 shifted, B = f(A,C) ...
        // Simpler: search a small random space for a witness table is
        // flaky; instead verify end-to-end equivalence in the integration
        // tests and check here the mechanics on a handmade table where a
        // two-UCC mix shadows an FD.
        //
        //   id1 id2 v
        //    1   a  x
        //    2   a  y
        //    1   b  y
        //    2   b  x
        // Minimal UCCs: {id1,id2}... id1,id2 pairs distinct ✓; v alone not
        // unique; {id1,v} unique? (1,x),(2,y),(1,y),(2,x) distinct ✓;
        // {id2,v}: (a,x),(a,y),(b,y),(b,x) distinct ✓.
        // So UCCs: {0,1},{0,2},{1,2}. Z = all; R\Z = ∅.
        // FD {0,1} → 2 etc. hold (keys). No shadowed FDs expected — the
        // phase must terminate cleanly with rounds == 1.
        let t = Table::from_rows(
            "t",
            &["id1", "id2", "v"],
            &[vec!["1", "a", "x"], vec!["2", "a", "y"], vec!["1", "b", "y"], vec!["2", "b", "x"]],
        )
        .unwrap();
        let uccs = muds_ucc::naive_minimal_uccs(&t);
        let trie = SetTrie::from_sets(uccs.iter().copied());
        let mut cache = PliCache::new(&t);
        let mut fds = FdSet::new();
        for u in &uccs {
            for a in ColumnSet::full(3).difference(u).iter() {
                fds.insert(*u, a);
            }
        }
        let mut knowledge = FdKnowledge::new(t.num_columns());
        let stats = discover_shadowed_fds(
            &mut cache,
            &mut fds,
            &trie,
            ShadowLookup::Generous,
            &mut knowledge,
        );
        assert!(stats.rounds >= 1);
        // All emitted FDs valid.
        for fd in fds.to_sorted_vec() {
            assert!(muds_fd::holds(&t, &fd.lhs, fd.rhs), "invalid {fd}");
        }
    }

    #[test]
    fn minimize_tasks_emits_only_minimal_valid_fds() {
        // b == a (copy); task with inflated lhs {a, c} → b must minimize to
        // a → b.
        let t = Table::from_rows(
            "t",
            &["a", "b", "c"],
            &[vec!["1", "1", "p"], vec!["2", "2", "p"], vec!["3", "3", "q"]],
        )
        .unwrap();
        let mut cache = PliCache::new(&t);
        let mut fds = FdSet::new();
        let mut stats = ShadowedStats::default();
        let added = minimize_tasks(
            &mut cache,
            vec![(cs(&[0, 2]), cs(&[1]))],
            &mut fds,
            &mut FdKnowledge::new(3),
            &mut stats,
        );
        assert!(added >= 1);
        assert!(fds.contains(&cs(&[0]), 1));
        assert!(!fds.contains(&cs(&[0, 2]), 1));
    }
}
