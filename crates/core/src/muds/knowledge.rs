//! Shared FD knowledge across MUDS' phases — the paper's holistic thesis
//! ("facilitate new pruning rules using all collected information at once",
//! §1) applied to the FD sub-problem itself.
//!
//! Every phase both *consults* and *feeds* this store:
//!
//! * positives: per-rhs set-tries of known valid left-hand sides; by
//!   augmentation, `Y → a` with `Y ⊆ X` answers `X → a` = true without a
//!   partition-refinement check;
//! * negatives: per-rhs maximal sets known not to determine the rhs
//!   (Lemma 4 downward knowledge); `X ⊆ N` answers `X → a` = false.
//!
//! The completion sweep seeds its per-rhs walks with both sides, so work
//! done by phases 1–3 is never repeated.

use std::collections::HashMap;

use muds_fd::FdSet;
use muds_lattice::{ColumnSet, MaximalSetFamily, MinimalSetFamily};
use muds_pli::PliCache;

/// Outcome of one decision in a [`FdKnowledge::decide_many`] batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Whether `lhs → rhs` holds.
    pub holds: bool,
    /// True when the answer came from existing knowledge (or triviality)
    /// instead of a fresh partition-refinement check.
    pub known: bool,
}

/// Accumulated three-valued FD knowledge for one table.
///
/// Positives are kept as per-rhs *antichains* of minimal recorded
/// left-hand sides ([`MinimalSetFamily`]): a dominated positive can never
/// change a subset query's answer, and phases like the R\Z walks record
/// tens of thousands of (mostly dominated) positives on wide tables —
/// storing them all would both bloat the trie and degrade the dense-query
/// subset searches the look-up path performs.
pub struct FdKnowledge {
    positives: HashMap<usize, MinimalSetFamily>,
    negatives: HashMap<usize, MaximalSetFamily>,
    universe: ColumnSet,
    /// Partition-refinement checks answered from knowledge instead.
    pub short_circuits: u64,
    /// Actual partition-refinement checks performed through this store.
    pub checks: u64,
}

impl FdKnowledge {
    /// An empty store for a table with `num_columns` columns.
    pub fn new(num_columns: usize) -> Self {
        FdKnowledge {
            positives: HashMap::new(),
            negatives: HashMap::new(),
            universe: ColumnSet::full(num_columns),
            short_circuits: 0,
            checks: 0,
        }
    }

    /// Records a valid FD `lhs → rhs`.
    pub fn record_positive(&mut self, lhs: ColumnSet, rhs: usize) {
        self.positives.entry(rhs).or_default().add(lhs);
    }

    /// Records all FDs of `fds` as positives.
    pub fn absorb(&mut self, fds: &FdSet) {
        for (lhs, rhs) in fds.iter_entries() {
            for a in rhs.iter() {
                self.record_positive(*lhs, a);
            }
        }
    }

    /// Records that `lhs` does **not** determine `rhs`.
    pub fn record_negative(&mut self, lhs: ColumnSet, rhs: usize) {
        let universe = self.universe;
        self.negatives
            .entry(rhs)
            .or_insert_with(|| MaximalSetFamily::with_universe(universe))
            .add(lhs);
    }

    /// `Some(answer)` when knowledge already decides `lhs → rhs`.
    pub fn lookup(&self, lhs: &ColumnSet, rhs: usize) -> Option<bool> {
        if self.positives.get(&rhs).is_some_and(|f| f.dominates(lhs)) {
            return Some(true);
        }
        if self.negatives.get(&rhs).is_some_and(|f| f.dominates(lhs)) {
            return Some(false);
        }
        None
    }

    /// Decides `lhs → rhs`, consulting knowledge first and recording the
    /// outcome of any real check. Trivial FDs (`rhs ∈ lhs`) are true.
    pub fn determines(&mut self, cache: &mut PliCache<'_>, lhs: &ColumnSet, rhs: usize) -> bool {
        if lhs.contains(rhs) {
            return true;
        }
        if let Some(v) = self.lookup(lhs, rhs) {
            self.short_circuits += 1;
            return v;
        }
        self.checks += 1;
        let v = cache.determines(lhs, rhs);
        if v {
            self.record_positive(*lhs, rhs);
        } else {
            self.record_negative(*lhs, rhs);
        }
        v
    }

    /// Decides `lhs → a` for every `a` in `rhss` at once.
    ///
    /// Equivalent to a loop of [`Self::determines`] calls: knowledge
    /// look-ups and outcome recording happen sequentially in input order,
    /// and only the partition scans of the unresolved checks fan out across
    /// threads. Batching is sound because the rhss of one call are distinct
    /// columns over a fixed lhs, so no check in the batch can create
    /// knowledge that would have short-circuited a later one. `self.checks`
    /// is incremented per real check; knowledge hits are reported through
    /// `known` and their accounting is left to the caller (call sites
    /// disagree on which counter a hit feeds).
    pub fn decide_many(
        &mut self,
        cache: &mut PliCache<'_>,
        lhs: &ColumnSet,
        rhss: &[usize],
    ) -> Vec<BatchOutcome> {
        let mut out: Vec<BatchOutcome> = Vec::with_capacity(rhss.len());
        // (position in `out`, rhs) of the decisions needing a real check.
        let mut pending: Vec<(usize, usize)> = Vec::new();
        for &a in rhss {
            if lhs.contains(a) {
                out.push(BatchOutcome { holds: true, known: true });
            } else if let Some(v) = self.lookup(lhs, a) {
                out.push(BatchOutcome { holds: v, known: true });
            } else {
                self.checks += 1;
                pending.push((out.len(), a));
                out.push(BatchOutcome { holds: false, known: false });
            }
        }
        let checks: Vec<(ColumnSet, usize)> = pending.iter().map(|&(_, a)| (*lhs, a)).collect();
        let verdicts = cache.refines_many(&checks);
        for (&(slot, a), &v) in pending.iter().zip(&verdicts) {
            if v {
                self.record_positive(*lhs, a);
            } else {
                self.record_negative(*lhs, a);
            }
            out[slot].holds = v;
        }
        out
    }

    /// Known maximal non-determining sets for `rhs` (walk seeds).
    pub fn negative_sets(&self, rhs: usize) -> &[ColumnSet] {
        self.negatives.get(&rhs).map_or(&[], |f| f.sets())
    }

    /// Known valid left-hand sides for `rhs` (walk seeds): the antichain
    /// of subset-minimal recorded positives, which covers every recorded
    /// one for seeding purposes (a dominated positive walks down to the
    /// same minimal core as the antichain member inside it).
    pub fn positive_sets(&self, rhs: usize) -> Vec<ColumnSet> {
        self.positives.get(&rhs).map_or_else(Vec::new, |f| f.sets().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muds_table::Table;

    fn cs(cols: &[usize]) -> ColumnSet {
        ColumnSet::from_indices(cols.iter().copied())
    }

    #[test]
    fn knowledge_short_circuits_supersets_and_subsets() {
        let t = Table::from_rows(
            "t",
            &["a", "b", "c"],
            &[vec!["1", "1", "x"], vec!["2", "2", "y"], vec!["3", "3", "x"]],
        )
        .unwrap();
        let mut cache = PliCache::new(&t);
        let mut k = FdKnowledge::new(3);
        // a → b is valid; the first call checks, the superset call doesn't.
        assert!(k.determines(&mut cache, &cs(&[0]), 1));
        assert_eq!(k.checks, 1);
        assert!(k.determines(&mut cache, &cs(&[0, 2]), 1));
        assert_eq!(k.checks, 1);
        assert_eq!(k.short_circuits, 1);
        // c → a is invalid; the subset query of a recorded negative is free.
        assert!(!k.determines(&mut cache, &cs(&[2]), 0));
        assert_eq!(k.checks, 2);
        assert!(!k.determines(&mut cache, &ColumnSet::empty(), 0));
        assert_eq!(k.checks, 2);
    }

    #[test]
    fn trivial_fds_never_touch_the_cache() {
        let t = Table::from_rows("t", &["a"], &[vec!["1"]]).unwrap();
        let mut cache = PliCache::new(&t);
        let mut k = FdKnowledge::new(1);
        assert!(k.determines(&mut cache, &cs(&[0]), 0));
        assert_eq!(k.checks, 0);
    }

    #[test]
    fn absorb_seeds_positives() {
        let mut fds = FdSet::new();
        fds.insert(cs(&[0]), 1);
        let mut k = FdKnowledge::new(3);
        k.absorb(&fds);
        assert_eq!(k.lookup(&cs(&[0, 2]), 1), Some(true));
        assert_eq!(k.lookup(&cs(&[2]), 1), None);
    }

    #[test]
    fn decide_many_matches_a_determines_loop() {
        let t = Table::from_rows(
            "t",
            &["a", "b", "c", "d"],
            &[
                vec!["1", "1", "x", "p"],
                vec!["2", "2", "y", "p"],
                vec!["3", "3", "x", "q"],
                vec!["4", "4", "y", "q"],
            ],
        )
        .unwrap();
        // Pre-seed both stores identically so knowledge hits arise.
        let mut seq = FdKnowledge::new(4);
        let mut bat = FdKnowledge::new(4);
        for k in [&mut seq, &mut bat] {
            k.record_positive(cs(&[0]), 1);
            k.record_negative(cs(&[3]), 2);
        }
        let mut c1 = PliCache::new(&t);
        let mut c2 = PliCache::new(&t);
        let lhs = cs(&[0, 3]);
        let rhss = [1usize, 2, 3]; // knowledge hit, real check, trivial
        let seq_holds: Vec<bool> = rhss.iter().map(|&a| seq.determines(&mut c1, &lhs, a)).collect();
        let outcomes = bat.decide_many(&mut c2, &lhs, &rhss);
        assert_eq!(outcomes.iter().map(|o| o.holds).collect::<Vec<_>>(), seq_holds);
        assert_eq!(outcomes.iter().map(|o| o.known).collect::<Vec<_>>(), vec![true, false, true],);
        assert_eq!(bat.checks, seq.checks);
        assert_eq!(c1.stats(), c2.stats());
        // Outcomes were recorded: a second batch is fully known.
        let again = bat.decide_many(&mut c2, &lhs, &rhss);
        assert!(again.iter().all(|o| o.known));
        assert_eq!(again.iter().map(|o| o.holds).collect::<Vec<_>>(), seq_holds,);
    }

    #[test]
    fn seed_accessors_round_trip() {
        let mut k = FdKnowledge::new(4);
        k.record_positive(cs(&[0, 1]), 2);
        k.record_negative(cs(&[3]), 2);
        assert_eq!(k.positive_sets(2), vec![cs(&[0, 1])]);
        assert_eq!(k.negative_sets(2), &[cs(&[3])]);
        assert!(k.positive_sets(0).is_empty());
    }
}
