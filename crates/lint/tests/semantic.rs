//! Self-tests for the workspace-level semantic rules: a sabotage test
//! that injects a real lock-order inversion into the live serve sources
//! and demands the exact cycle back, a SARIF shape check against the
//! 2.1.0 structure GitHub code scanning consumes, and a release-build
//! performance gate on a synthetic 100-file workspace.

use std::path::Path;

use muds_lint::{semantic_pass, Rule};

fn serve_src(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../serve/src").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// The real registry/persist pair is clean: `Registry::restore` acquires
/// `Persist.manifest_written` while holding `Registry.inner`, and nothing
/// acquires them in the opposite order.
#[test]
fn real_registry_persist_pair_has_no_cycle() {
    let sources = vec![
        ("crates/serve/src/registry.rs".to_string(), serve_src("registry.rs")),
        ("crates/serve/src/persist.rs".to_string(), serve_src("persist.rs")),
    ];
    let (diags, dot) = semantic_pass(&sources);
    let l008: Vec<_> = diags.iter().filter(|d| d.rule == Rule::L008).collect();
    assert!(l008.is_empty(), "unexpected cycle in clean sources: {l008:?}");
    assert!(
        dot.contains("\"Registry.inner\" -> \"Persist.manifest_written\""),
        "the restore edge should appear in the lock graph:\n{dot}"
    );
}

/// Sabotage: graft a function onto the real `Persist` that holds
/// `manifest_written` while calling into the registry (which locks
/// `Registry.inner`). Combined with the genuine `restore` edge this is a
/// two-lock inversion, and the analyzer must name the exact cycle and
/// witness both paths.
#[test]
fn injected_inversion_reports_the_exact_cycle() {
    let injected = "
impl Persist {
    pub fn sabotage_probe(&self, registry: &Registry) {
        let guard = lock(&self.manifest_written);
        let names = registry.names_len();
        consume(names, *guard);
    }
}
";
    let sources = vec![
        ("crates/serve/src/registry.rs".to_string(), serve_src("registry.rs")),
        ("crates/serve/src/persist.rs".to_string(), serve_src("persist.rs") + injected),
    ];
    let (diags, dot) = semantic_pass(&sources);
    let l008: Vec<_> = diags.iter().filter(|d| d.rule == Rule::L008).collect();
    assert_eq!(l008.len(), 1, "exactly one cycle expected, got: {l008:?}");
    let message = &l008.first().expect("one L008 finding").message;
    assert!(
        message.contains(
            "lock-order cycle Persist.manifest_written -> Registry.inner -> \
             Persist.manifest_written"
        ),
        "cycle ring misreported: {message}"
    );
    assert!(message.contains("sabotage_probe"), "witness must name the injected fn: {message}");
    assert!(message.contains("restore"), "witness must name the genuine inverse path: {message}");
    assert!(
        dot.contains("\"Persist.manifest_written\" -> \"Registry.inner\""),
        "injected edge should appear in the lock graph:\n{dot}"
    );
}

/// The SARIF output must hold up as JSON with the 2.1.0 skeleton intact:
/// version, tool.driver.name, a rules table covering every rule id, and
/// results that carry ruleId + physical location.
#[test]
fn sarif_output_parses_with_expected_shape() {
    use muds_core::json::parse_json;
    use muds_lint::Diagnostic;

    let diagnostics = vec![Diagnostic {
        rule: Rule::L009,
        file: "crates/serve/src/reactor.rs".to_string(),
        line: 42,
        col: 7,
        message: "blocking call \"write_all\" in reactor".to_string(),
    }];
    let comparison = muds_lint::baseline::compare(&diagnostics, &muds_lint::Baseline::default());
    let sarif = muds_lint::render_sarif(&comparison);
    let doc = parse_json(&sarif).expect("SARIF output must be valid JSON");

    assert_eq!(doc.get("version").and_then(|v| v.as_str()), Some("2.1.0"));
    let runs = doc.get("runs").and_then(|v| v.as_array()).expect("runs array");
    assert_eq!(runs.len(), 1);
    let run = runs.first().expect("one run");
    let driver = run.get("tool").and_then(|t| t.get("driver")).expect("tool.driver");
    assert_eq!(driver.get("name").and_then(|v| v.as_str()), Some("muds-lint"));
    let rules = driver.get("rules").and_then(|v| v.as_array()).expect("rules array");
    assert_eq!(rules.len(), Rule::ALL.len());
    for rule in Rule::ALL {
        assert!(
            rules.iter().any(|r| r.get("id").and_then(|v| v.as_str()) == Some(rule.id())),
            "rule {} missing from SARIF rules table",
            rule.id()
        );
    }
    let results = run.get("results").and_then(|v| v.as_array()).expect("results array");
    assert_eq!(results.len(), 1);
    let result = results.first().expect("one result");
    assert_eq!(result.get("ruleId").and_then(|v| v.as_str()), Some("L009"));
    assert_eq!(result.get("level").and_then(|v| v.as_str()), Some("error"));
    let location = result
        .get("locations")
        .and_then(|v| v.as_array())
        .and_then(|l| l.first())
        .and_then(|l| l.get("physicalLocation"))
        .expect("physicalLocation");
    assert_eq!(
        location.get("artifactLocation").and_then(|a| a.get("uri")).and_then(|v| v.as_str()),
        Some("crates/serve/src/reactor.rs")
    );
    let region = location.get("region").expect("region");
    assert_eq!(region.get("startLine").and_then(|v| v.as_usize()), Some(42));
    assert_eq!(region.get("startColumn").and_then(|v| v.as_usize()), Some(7));
}

/// Release-build performance gate: the full token + semantic pass over a
/// synthetic 100-file workspace (each file with locks, cross-calls, and a
/// spawn) must finish well under the 2-second CI budget. Debug builds are
/// exempt — the gate mirrors the `lint-self` release CI step.
#[cfg(not(debug_assertions))]
#[test]
fn hundred_file_workspace_lints_under_two_seconds() {
    use muds_lint::{lint_source, FileOptions};

    let mut sources = Vec::new();
    for i in 0..100 {
        let next = (i + 1) % 100;
        let source = format!(
            "use std::sync::Mutex;\n\
             struct S{i} {{ a: Mutex<u32>, b: Mutex<u32> }}\n\
             impl S{i} {{\n\
                 fn alpha(&self) {{\n\
                     let ga = lock(&self.a);\n\
                     let gb = lock(&self.b);\n\
                     helper_{i}(*ga + *gb);\n\
                 }}\n\
                 fn beta(&self) {{\n\
                     let ga = lock(&self.a);\n\
                     self.gamma();\n\
                     drop(ga);\n\
                 }}\n\
                 fn gamma(&self) {{\n\
                     let gb = lock(&self.b);\n\
                     helper_{next}(*gb);\n\
                 }}\n\
             }}\n\
             fn helper_{i}(x: u32) {{\n\
                 std::thread::spawn(move || {{ archive_{i}(x); }});\n\
             }}\n\
             fn archive_{i}(x: u32) {{ emit(x); }}\n"
        );
        sources.push((format!("crates/synth/src/file_{i:03}.rs"), source));
    }
    let start = std::time::Instant::now();
    let options = FileOptions::default();
    let mut token_findings = 0;
    for (name, source) in &sources {
        token_findings += lint_source(name, source, &options).len();
    }
    let (semantic, dot) = semantic_pass(&sources);
    let elapsed = start.elapsed();
    assert_eq!(token_findings, 0, "synthetic workspace should be token-clean");
    assert!(semantic.is_empty(), "synthetic workspace should be cycle-free: {semantic:?}");
    assert!(dot.contains("digraph lock_order"));
    assert!(elapsed.as_secs_f64() < 2.0, "100-file lint pass took {elapsed:?}, budget is 2s");
}
