//! Fixture-driven self-tests for the lint rules.
//!
//! Every `fixtures/*.rs` file is linted with algorithm-crate options (no
//! clock/panic exemptions, a one-entry metric catalogue) and its findings
//! are compared against the sibling `.expected` file: one `line:col RULE`
//! entry per line, empty for the `*_good.rs` half of each pair. This keeps
//! the seeded violations honest — each must fire at the exact span the
//! fixture author recorded, and the clean twins must stay clean.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use muds_lint::{lint_source, FileOptions};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The options a fixture is linted under: strictest profile, with a
/// catalogue containing only `pli.requests` (so `pli.bogus` drifts).
/// L007 fixtures model bench scenario files, where the crate-level clock
/// exemption holds (no L004) but scenario discipline applies (L007).
fn fixture_options(stem: &str) -> FileOptions {
    let catalogue: BTreeSet<String> = ["pli.requests".to_string()].into_iter().collect();
    let bench_scenario = stem.starts_with("l007");
    FileOptions {
        is_test_file: false,
        panic_allowed: false,
        clock_allowed: bench_scenario,
        catalogue: Some(catalogue),
        bench_scenario,
    }
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

fn expected_entries(path: &Path) -> Vec<String> {
    read(path).lines().map(str::trim).filter(|l| !l.is_empty()).map(String::from).collect()
}

#[test]
fn every_fixture_matches_its_expected_diagnostics() {
    let dir = fixture_dir();
    let mut checked = 0;
    let mut names: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixtures dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    names.sort();
    assert!(!names.is_empty(), "no fixtures under {}", dir.display());
    for fixture in names {
        let expected_path = fixture.with_extension("expected");
        assert!(expected_path.exists(), "{} has no paired .expected file", fixture.display());
        let source = read(&fixture);
        let stem = fixture.file_stem().unwrap().to_string_lossy().into_owned();
        let mut diags = lint_source(
            &fixture.file_name().unwrap().to_string_lossy(),
            &source,
            &fixture_options(&stem),
        );
        // L008/L009 are workspace-level semantic rules: run the call-graph
        // pass over the fixture as a one-file workspace. L009 fixtures are
        // analysed under the reactor file name so the event-loop roots
        // apply.
        if stem.starts_with("l008") || stem.starts_with("l009") {
            let name = if stem.starts_with("l009") { "reactor.rs" } else { "fixture.rs" };
            let (semantic, _dot) = muds_lint::semantic_pass(&[(name.to_string(), source.clone())]);
            diags.extend(semantic);
            diags.sort_by_key(|d| (d.line, d.col, d.rule.id()));
        }
        let actual: Vec<String> =
            diags.iter().map(|d| format!("{}:{} {}", d.line, d.col, d.rule.id())).collect();
        let expected = expected_entries(&expected_path);
        assert_eq!(
            actual,
            expected,
            "{}: diagnostics diverge from {}\nfull findings:\n{}",
            fixture.display(),
            expected_path.display(),
            diags.iter().map(|d| d.render()).collect::<Vec<_>>().join("\n")
        );
        checked += 1;
    }
    // One good + one bad fixture per rule L000–L010 (L001–L007 token
    // rules, L008/L009 semantic rules, L010 discard rule).
    assert!(checked >= 22, "expected at least 22 fixtures, saw {checked}");
}

#[test]
fn good_and_bad_fixtures_come_in_pairs() {
    let dir = fixture_dir();
    let stems: BTreeSet<String> = std::fs::read_dir(&dir)
        .expect("fixtures dir")
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.strip_suffix(".rs").map(String::from)
        })
        .collect();
    for stem in &stems {
        if let Some(base) = stem.strip_suffix("_bad") {
            assert!(stems.contains(&format!("{base}_good")), "{stem}.rs has no _good twin");
        }
        if let Some(base) = stem.strip_suffix("_good") {
            assert!(stems.contains(&format!("{base}_bad")), "{stem}.rs has no _bad twin");
        }
    }
}

#[test]
fn bad_fixtures_expect_findings_and_good_fixtures_expect_none() {
    let dir = fixture_dir();
    for entry in std::fs::read_dir(&dir).expect("fixtures dir").flatten() {
        let path = entry.path();
        if path.extension().is_none_or(|e| e != "expected") {
            continue;
        }
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        let entries = expected_entries(&path);
        if stem.ends_with("_bad") {
            assert!(!entries.is_empty(), "{stem}.expected should list at least one finding");
            let rule = format!("L{}", &stem[1..4.min(stem.len())]);
            assert!(
                entries.iter().any(|e| e.ends_with(&rule)),
                "{stem}.expected should contain a {rule} finding, got {entries:?}"
            );
        } else {
            assert!(entries.is_empty(), "{stem}.expected should be empty, got {entries:?}");
        }
    }
}

/// The workspace itself must lint clean against the committed baseline —
/// the same check CI runs, embedded as a test so `cargo test` catches
/// drift without the CI round trip.
#[test]
fn workspace_is_lint_clean_against_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report =
        muds_lint::lint_workspace(&muds_lint::LintConfig::new(&root)).expect("lint workspace");
    let baseline_text =
        std::fs::read_to_string(root.join(muds_lint::BASELINE_FILE)).expect("baseline file");
    let baseline = muds_lint::baseline::parse_json(&baseline_text).expect("baseline parses");
    let comparison = muds_lint::baseline::compare(&report.diagnostics, &baseline);
    assert!(
        comparison.new_findings.is_empty(),
        "workspace has non-baseline lint findings:\n{}",
        comparison.new_findings.iter().map(|d| d.render()).collect::<Vec<_>>().join("\n")
    );
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
}
