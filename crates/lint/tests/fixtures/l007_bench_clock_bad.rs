//! Scenario that times an entry with raw clock reads: the reported wall
//! time can drift from the span-tree phases in the same report.

use std::time::Instant;

pub fn run_entry(work: impl Fn()) -> u64 {
    let t0 = Instant::now();
    work();
    t0.elapsed().as_nanos() as u64
}
