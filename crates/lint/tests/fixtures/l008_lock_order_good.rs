use std::sync::Mutex;

use crate::sync::lock;

struct App {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl App {
    fn forward(&self) {
        let ga = lock(&self.a);
        let gb = lock(&self.b);
        consume(*ga, *gb);
    }

    fn also_forward(&self) {
        let ga = lock(&self.a);
        let gb = lock(&self.b);
        consume(*gb, *ga);
    }

    fn scoped(&self) {
        {
            let gb = lock(&self.b);
            consume(0, *gb);
        }
        let ga = lock(&self.a);
        consume(*ga, 0);
    }
}
