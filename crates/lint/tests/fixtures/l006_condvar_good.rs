use std::sync::{Condvar, Mutex};

pub fn wait_until_ready(lock: &Mutex<bool>, cond: &Condvar) {
    let mut ready = lock.lock().unwrap_or_else(|p| p.into_inner());
    while !*ready {
        ready = cond.wait(ready).unwrap_or_else(|p| p.into_inner());
    }
}
