//! Scenario timing routed through the muds-obs span APIs; the one raw
//! clock read is justified and never feeds a measured number.

pub fn run_entry(metrics: &muds_obs::Metrics, work: impl Fn()) -> u64 {
    let timer = metrics.span("entry");
    work();
    timer.stop().as_nanos() as u64
}

pub fn stamp_report() -> std::time::SystemTime {
    // lint:allow(bench-clock): the timestamp only labels the report file;
    // no measured number derives from it.
    std::time::SystemTime::now()
}
