pub fn record(metrics: &muds_obs::Metrics) {
    metrics.add("pli.requests", 1);
    metrics.add("pli.bogus", 1);
}
