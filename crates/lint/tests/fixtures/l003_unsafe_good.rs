pub fn reinterpret(bytes: &[u8; 4]) -> u32 {
    // SAFETY: any 4-byte value is a valid u32; alignment is irrelevant
    // because transmute copies by value.
    unsafe { std::mem::transmute(*bytes) }
}
