// lint:allow(hash-order)
pub fn missing_justification() {}

// lint:allow(mystery): unknown keys must be rejected loudly.
pub fn unknown_key() {}
