pub struct Reactor {
    log_path: std::path::PathBuf,
}

impl Reactor {
    pub fn run(&self) {
        loop {
            self.poll_once();
        }
    }

    fn poll_once(&self) {
        let path = self.log_path.clone();
        std::thread::spawn(move || {
            std::fs::remove_file(&path);
        });
    }
}
