pub fn first_line(text: &str) -> Option<String> {
    text.lines().next().map(str::to_string)
}

pub fn head(v: &[u8]) -> Option<u8> {
    v.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(super::head(&[7]).unwrap(), 7);
    }
}
