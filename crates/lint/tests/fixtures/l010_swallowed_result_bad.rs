fn persist(file: &mut File, line: &str) {
    let _ = file.write(line.as_bytes());
    file.sync_all().ok();
}
