use std::collections::HashMap;

pub fn histogram(items: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for item in items {
        *counts.entry(*item).or_insert(0) += 1;
    }
    let mut out = Vec::new();
    for (value, count) in &counts {
        out.push((*value, *count));
    }
    out
}

pub fn first_keys(counts: &HashMap<u32, usize>) -> Vec<u32> {
    counts.keys().copied().take(3).collect()
}
