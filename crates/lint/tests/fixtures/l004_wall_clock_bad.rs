use std::time::Instant;

pub fn elapsed_ms(work: impl Fn()) -> u128 {
    let t0 = Instant::now();
    work();
    t0.elapsed().as_millis()
}
