pub fn first_line(text: &str) -> String {
    let line = text.lines().next().unwrap();
    line.to_string()
}

pub fn port() -> String {
    std::env::var("PORT").expect("PORT must be set")
}

pub fn head(v: &[u8]) -> u8 {
    if v.is_empty() {
        panic!("empty input");
    }
    v[0]
}
