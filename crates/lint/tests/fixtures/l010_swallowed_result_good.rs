fn persist(file: &mut File, line: &str) -> io::Result<()> {
    file.write_all(line.as_bytes())?;
    file.sync_all()?;
    Ok(())
}

fn sweep(dir: &Path) {
    // lint:allow(swallowed-result): crash residue; already-gone is fine
    let _ = remove_file(dir.join("stale.tmp"));
    let parsed = read_header(dir).ok();
    let _ = unused_binding;
}
