use std::sync::{Condvar, Mutex};

pub fn wait_once(lock: &Mutex<bool>, cond: &Condvar) {
    let guard = lock.lock().unwrap_or_else(|p| p.into_inner());
    let _guard = cond.wait(guard).unwrap_or_else(|p| p.into_inner());
}
