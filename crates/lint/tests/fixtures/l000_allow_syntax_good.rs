/// Mentioning `lint:allow(hash-order)` in a doc comment is fine; doc
/// text documents the syntax, it does not use it.
pub fn documented() {}
