use std::collections::HashMap;

pub fn total(counts: &HashMap<u32, usize>) -> usize {
    counts.values().sum()
}

pub fn sorted_keys(counts: &HashMap<u32, usize>) -> Vec<u32> {
    // lint:allow(hash-order): fully sorted on the next line, so storage
    // order cannot reach the caller.
    let mut keys: Vec<u32> = counts.keys().copied().collect();
    keys.sort();
    keys
}
