pub fn reinterpret(bytes: &[u8; 4]) -> u32 {
    unsafe { std::mem::transmute(*bytes) }
}
