pub fn record(metrics: &muds_obs::Metrics) {
    metrics.add("pli.requests", 1);
    // lint:allow(counter-name): fixture-local scratch metric, not part
    // of the paper's catalogue.
    metrics.add("scratch.probe", 1);
}
