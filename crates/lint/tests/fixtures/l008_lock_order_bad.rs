use std::sync::Mutex;

use crate::sync::lock;

struct App {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl App {
    fn forward(&self) {
        let ga = lock(&self.a);
        let gb = lock(&self.b);
        consume(*ga, *gb);
    }

    fn backward(&self) {
        let gb = lock(&self.b);
        let ga = lock(&self.a);
        consume(*ga, *gb);
    }
}
