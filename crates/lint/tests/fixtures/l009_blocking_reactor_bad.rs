pub struct Reactor {
    log_path: std::path::PathBuf,
}

impl Reactor {
    pub fn run(&self) {
        loop {
            self.poll_once();
        }
    }

    fn poll_once(&self) {
        self.rotate_log();
    }

    fn rotate_log(&self) {
        std::fs::remove_file(&self.log_path);
    }
}
