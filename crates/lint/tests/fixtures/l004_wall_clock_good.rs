pub fn stamp() -> std::time::SystemTime {
    // lint:allow(wall-clock): fixture for a justified clock read; the
    // timestamp is attached to log output and never reaches results.
    std::time::SystemTime::now()
}
