//! Count-based baseline: grandfathered findings fail the build only when
//! their count grows.
//!
//! The baseline file is a tiny JSON object mapping `"RULE:file"` to the
//! number of findings of that rule in that file at the time the baseline
//! was written. Comparing counts (not spans) keeps the file stable across
//! unrelated edits that shift line numbers, while still catching every
//! *new* finding: any key whose current count exceeds its baselined count
//! — including keys absent from the baseline — fails the run. Counts that
//! shrink are reported as stale so the baseline can be tightened with
//! `--write-baseline`.

use crate::rules::Diagnostic;
use std::collections::BTreeMap;

/// Parsed baseline: `"RULE:file"` → grandfathered finding count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub counts: BTreeMap<String, usize>,
}

/// Outcome of comparing current findings against a baseline.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Findings in keys whose count exceeds the baseline (all findings of
    /// that key are listed, since spans aren't tracked per-finding).
    pub new_findings: Vec<Diagnostic>,
    /// Keys whose current count is below the baseline (candidates for
    /// `--write-baseline` tightening): `(key, baselined, current)`.
    pub stale: Vec<(String, usize, usize)>,
    /// Total findings covered by the baseline.
    pub suppressed: usize,
}

pub fn key_of(diag: &Diagnostic) -> String {
    format!("{}:{}", diag.rule.id(), diag.file)
}

/// Groups findings by key and compares counts against the baseline.
pub fn compare(diagnostics: &[Diagnostic], baseline: &Baseline) -> Comparison {
    let mut by_key: BTreeMap<String, Vec<&Diagnostic>> = BTreeMap::new();
    for diag in diagnostics {
        by_key.entry(key_of(diag)).or_default().push(diag);
    }
    let mut comparison = Comparison::default();
    for (key, found) in &by_key {
        let allowed = baseline.counts.get(key).copied().unwrap_or(0);
        if found.len() > allowed {
            comparison.new_findings.extend(found.iter().map(|d| (*d).clone()));
        } else {
            comparison.suppressed += found.len();
            if found.len() < allowed {
                comparison.stale.push((key.clone(), allowed, found.len()));
            }
        }
    }
    for (key, allowed) in &baseline.counts {
        if !by_key.contains_key(key) && *allowed > 0 {
            comparison.stale.push((key.clone(), *allowed, 0));
        }
    }
    comparison.stale.sort();
    comparison
}

/// Tightens a baseline against current findings without ever widening it:
/// each key keeps `min(baselined, current)` and keys with no findings left
/// are dropped. Used by `--update-baseline`, which must never grandfather
/// a new finding — growth still fails the run.
pub fn shrink(baseline: &Baseline, diagnostics: &[Diagnostic]) -> Baseline {
    let current = from_diagnostics(diagnostics);
    let counts = baseline
        .counts
        .iter()
        .filter_map(|(key, &allowed)| {
            let now = current.counts.get(key).copied().unwrap_or(0);
            let kept = allowed.min(now);
            (kept > 0).then(|| (key.clone(), kept))
        })
        .collect();
    Baseline { counts }
}

/// Builds a fresh baseline from the current findings.
pub fn from_diagnostics(diagnostics: &[Diagnostic]) -> Baseline {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for diag in diagnostics {
        *counts.entry(key_of(diag)).or_insert(0) += 1;
    }
    Baseline { counts }
}

/// Serialises the baseline as pretty-printed JSON (sorted keys, so diffs
/// are stable).
pub fn to_json(baseline: &Baseline) -> String {
    let mut out = String::from("{\n");
    let mut first = true;
    for (key, count) in &baseline.counts {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!("  \"{}\": {}", escape(key), count));
    }
    out.push_str("\n}\n");
    if baseline.counts.is_empty() {
        return "{}\n".to_string();
    }
    out
}

/// Parses the baseline JSON. The format is a flat string→number object;
/// anything else is an error so a corrupted baseline can't silently allow
/// regressions.
pub fn parse_json(text: &str) -> Result<Baseline, String> {
    let mut counts = BTreeMap::new();
    let mut chars = text.char_indices().peekable();
    skip_ws(&mut chars);
    expect(&mut chars, '{')?;
    skip_ws(&mut chars);
    if chars.peek().map(|(_, c)| *c) == Some('}') {
        chars.next();
        return Ok(Baseline { counts });
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars, text)?;
        skip_ws(&mut chars);
        expect(&mut chars, ':')?;
        skip_ws(&mut chars);
        let count = parse_number(&mut chars)?;
        counts.insert(key, count);
        skip_ws(&mut chars);
        match chars.next().map(|(_, c)| c) {
            Some(',') => continue,
            Some('}') => break,
            other => return Err(format!("baseline: expected `,` or `}}`, got {other:?}")),
        }
    }
    Ok(Baseline { counts })
}

type Chars<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn skip_ws(chars: &mut Chars<'_>) {
    while chars.peek().is_some_and(|(_, c)| c.is_whitespace()) {
        chars.next();
    }
}

fn expect(chars: &mut Chars<'_>, want: char) -> Result<(), String> {
    match chars.next().map(|(_, c)| c) {
        Some(c) if c == want => Ok(()),
        other => Err(format!("baseline: expected {want:?}, got {other:?}")),
    }
}

fn parse_string(chars: &mut Chars<'_>, text: &str) -> Result<String, String> {
    expect(chars, '"')?;
    let start = chars.peek().map(|(i, _)| *i).unwrap_or(text.len());
    for (i, c) in chars.by_ref() {
        if c == '\\' {
            return Err("baseline: escape sequences in keys are not supported".to_string());
        }
        if c == '"' {
            return Ok(text[start..i].to_string());
        }
    }
    Err("baseline: unterminated string".to_string())
}

fn parse_number(chars: &mut Chars<'_>) -> Result<usize, String> {
    let mut value: usize = 0;
    let mut seen = false;
    while let Some((_, c)) = chars.peek() {
        if let Some(digit) = c.to_digit(10) {
            value = value.saturating_mul(10).saturating_add(digit as usize);
            seen = true;
            chars.next();
        } else {
            break;
        }
    }
    if seen {
        Ok(value)
    } else {
        Err("baseline: expected a count".to_string())
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn diag(rule: Rule, file: &str, line: usize) -> Diagnostic {
        Diagnostic { rule, file: file.to_string(), line, col: 1, message: String::new() }
    }

    #[test]
    fn roundtrips_through_json() {
        let diags =
            [diag(Rule::L002, "a.rs", 1), diag(Rule::L002, "a.rs", 2), diag(Rule::L004, "b.rs", 9)];
        let baseline = from_diagnostics(&diags);
        let parsed = parse_json(&to_json(&baseline)).expect("parse");
        assert_eq!(parsed, baseline);
        assert_eq!(parsed.counts.get("L002:a.rs"), Some(&2));
    }

    #[test]
    fn growth_fails_shrink_is_stale() {
        let baseline = parse_json("{\"L002:a.rs\": 2, \"L004:b.rs\": 1}").expect("parse");
        // Same counts: all suppressed.
        let same = [diag(Rule::L002, "a.rs", 1), diag(Rule::L002, "a.rs", 5)];
        let cmp = compare(&same, &baseline);
        assert!(cmp.new_findings.is_empty());
        assert_eq!(cmp.suppressed, 2);
        assert_eq!(cmp.stale, vec![("L004:b.rs".to_string(), 1, 0)]);
        // One more L002: the whole key fails.
        let grown =
            [diag(Rule::L002, "a.rs", 1), diag(Rule::L002, "a.rs", 5), diag(Rule::L002, "a.rs", 9)];
        assert_eq!(compare(&grown, &baseline).new_findings.len(), 3);
        // A rule/file pair absent from the baseline always fails.
        let fresh = [diag(Rule::L006, "c.rs", 3)];
        assert_eq!(compare(&fresh, &baseline).new_findings.len(), 1);
    }

    #[test]
    fn shrink_tightens_but_never_widens() {
        let baseline =
            parse_json("{\"L002:a.rs\": 3, \"L004:b.rs\": 1, \"L006:c.rs\": 2}").expect("parse");
        // a.rs is down to one finding, b.rs unchanged, c.rs fully fixed,
        // and d.rs has a brand-new finding that must NOT be absorbed.
        let now =
            [diag(Rule::L002, "a.rs", 1), diag(Rule::L004, "b.rs", 9), diag(Rule::L010, "d.rs", 4)];
        let shrunk = shrink(&baseline, &now);
        assert_eq!(shrunk.counts.get("L002:a.rs"), Some(&1));
        assert_eq!(shrunk.counts.get("L004:b.rs"), Some(&1));
        assert!(!shrunk.counts.contains_key("L006:c.rs"));
        assert!(!shrunk.counts.contains_key("L010:d.rs"));
        // Deterministic output: same inputs, same bytes.
        assert_eq!(to_json(&shrunk), to_json(&shrink(&baseline, &now)));
        // After shrinking, the stale list is empty and the new finding fails.
        let cmp = compare(&now, &shrunk);
        assert!(cmp.stale.is_empty());
        assert_eq!(cmp.new_findings.len(), 1);
        assert_eq!(cmp.new_findings[0].file, "d.rs");
    }

    #[test]
    fn empty_baseline_serialises_cleanly() {
        assert_eq!(to_json(&Baseline::default()), "{}\n");
        assert!(parse_json("{}").expect("parse").counts.is_empty());
        assert!(parse_json("[]").is_err());
    }
}
