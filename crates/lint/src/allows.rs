//! Inline allow-comment parsing.
//!
//! Syntax: `// lint:allow(<key>): <justification>` where `<key>` is one of
//! the keys in [`crate::rules::ALLOW_KEYS`] and the justification is
//! mandatory free text explaining *why* the finding is acceptable. An
//! allow suppresses matching findings on its own line or the few lines
//! directly below it, so the excuse always sits next to the code it
//! excuses. Malformed allows (unknown key, missing justification) are
//! themselves findings (L000) — a broken allow silently stops working.

use crate::rules::ALLOW_KEYS;

/// A successfully parsed allow comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowSite {
    /// 1-based line of the comment.
    pub line: usize,
    /// The allow key, e.g. `hash-order`.
    pub key: String,
    /// The justification text after the colon.
    pub justification: String,
}

/// Returns the allow key for `key` if it is recognised.
pub fn allow_key(key: &str) -> Option<&'static str> {
    ALLOW_KEYS.iter().copied().find(|k| *k == key)
}

/// Parses every `lint:allow` marker inside one comment's text. Returns
/// `Ok(site)` per valid marker and `Err(message)` per malformed one.
///
/// Only plain `//` / `/*` comments whose body *starts* with `lint:allow`
/// carry allows; doc comments (`///`, `//!`, `/**`, `/*!`) are prose and
/// may mention the syntax without invoking it.
pub fn parse_allow_comments(text: &str, line: usize) -> Vec<Result<AllowSite, String>> {
    let mut out = Vec::new();
    let body = text.strip_prefix("//").or_else(|| text.strip_prefix("/*")).unwrap_or(text);
    if body.starts_with('/') || body.starts_with('!') || body.starts_with('*') {
        return out; // doc comment
    }
    if !body.trim_start().starts_with("lint:allow") {
        return out;
    }
    let mut rest = text;
    while let Some(at) = rest.find("lint:allow") {
        rest = &rest[at + "lint:allow".len()..];
        let Some(after_open) = rest.strip_prefix('(') else {
            out.push(Err(
                "malformed allow: expected `lint:allow(<key>): <justification>`".to_string()
            ));
            continue;
        };
        let Some(close) = after_open.find(')') else {
            out.push(Err("malformed allow: missing `)` after allow key".to_string()));
            rest = after_open;
            continue;
        };
        let key = after_open[..close].trim();
        let tail = &after_open[close + 1..];
        rest = tail;
        if allow_key(key).is_none() {
            out.push(Err(format!(
                "unknown allow key {key:?}: expected one of {}",
                ALLOW_KEYS.join(", ")
            )));
            continue;
        }
        let Some(after_colon) = tail.trim_start().strip_prefix(':') else {
            out.push(Err(format!(
                "allow for {key:?} is missing its justification: write \
                 `lint:allow({key}): <why this is sound>`"
            )));
            continue;
        };
        let justification = after_colon.trim();
        if justification.len() < 8 {
            out.push(Err(format!(
                "allow for {key:?} needs a real justification (at least a sentence), got \
                 {justification:?}"
            )));
            continue;
        }
        out.push(Ok(AllowSite {
            line,
            key: key.to_string(),
            justification: justification.to_string(),
        }));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_valid_allow() {
        let parsed = parse_allow_comments("// lint:allow(hash-order): sums are commutative", 7);
        assert_eq!(parsed.len(), 1);
        let site = parsed[0].as_ref().expect("valid allow");
        assert_eq!(site.line, 7);
        assert_eq!(site.key, "hash-order");
        assert_eq!(site.justification, "sums are commutative");
    }

    #[test]
    fn rejects_unknown_key_and_missing_justification() {
        let unknown = parse_allow_comments("// lint:allow(nonsense): text here", 1);
        assert!(unknown[0].as_ref().is_err_and(|m| m.contains("unknown allow key")));
        let missing = parse_allow_comments("// lint:allow(panic)", 1);
        assert!(missing[0].as_ref().is_err_and(|m| m.contains("missing its justification")));
        let short = parse_allow_comments("// lint:allow(panic): ok", 1);
        assert!(short[0].as_ref().is_err_and(|m| m.contains("real justification")));
    }

    #[test]
    fn plain_comments_produce_nothing() {
        assert!(parse_allow_comments("// nothing to see", 1).is_empty());
    }
}
