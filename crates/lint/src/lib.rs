//! muds-lint — workspace static analysis for the MUDS profiler.
//!
//! A dependency-free lint pass enforcing the project invariants that
//! generic tooling can't know about: result determinism (no hash-order
//! leaks, no wall-clock reads in algorithm crates), panic hygiene in
//! library code, `// SAFETY:` discipline around `unsafe`, obs metric
//! names staying in sync with the DESIGN.md §7 catalogue, and
//! condvar-wait predicates. See DESIGN.md §11 for the catalogue, the
//! allow-comment syntax, and baseline semantics.
//!
//! The crate is a library (so `mudsprof lint` and the self-tests embed
//! the engine) plus a thin `muds-lint` binary.

pub mod allows;
pub mod baseline;
pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod rules;

pub use allows::AllowSite;
pub use baseline::Baseline;
pub use rules::{lint_source, Diagnostic, FileOptions, Rule};

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Default baseline path, relative to the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";

/// Directories scanned under the workspace root.
const SCAN_ROOTS: [&str; 4] = ["crates", "src", "tests", "vendor"];

/// Path prefixes allowed to read wall clocks (instrumentation, benches,
/// the serving layer, and the lint tool itself).
const CLOCK_ALLOWLIST: [&str; 5] =
    ["crates/obs", "crates/bench", "crates/serve", "crates/cli", "vendor/criterion"];

/// Workspace lint configuration.
pub struct LintConfig {
    /// Workspace root (the directory holding `Cargo.toml` and `DESIGN.md`).
    pub root: PathBuf,
    /// Metric-name catalogue override; `None` parses DESIGN.md §7.
    pub catalogue: Option<BTreeSet<String>>,
}

impl LintConfig {
    pub fn new(root: impl Into<PathBuf>) -> LintConfig {
        LintConfig { root: root.into(), catalogue: None }
    }
}

/// Result of linting the whole workspace.
pub struct LintReport {
    /// All findings, sorted by (file, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// The workspace lock-acquisition graph in Graphviz DOT form
    /// (`--lock-graph dot`).
    pub lock_graph_dot: String,
}

/// Lints every `.rs` file under the configured root: the token rules
/// (L001–L007, L010) per file, then the workspace-wide semantic pass
/// (L008 lock-order, L009 blocking-in-reactor) over the call graph.
/// Returns an error only for I/O or catalogue problems; findings live in
/// the report.
pub fn lint_workspace(config: &LintConfig) -> Result<LintReport, String> {
    let catalogue = match &config.catalogue {
        Some(c) => c.clone(),
        None => {
            let design = config.root.join("DESIGN.md");
            let text = std::fs::read_to_string(&design)
                .map_err(|e| format!("cannot read {}: {e}", design.display()))?;
            parse_catalogue(&text)?
        }
    };
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        collect_rs_files(&config.root.join(dir), &mut files);
    }
    files.sort();
    let mut diagnostics = Vec::new();
    let files_scanned = files.len();
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in &files {
        let rel = relative_path(&config.root, path);
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let options = file_options(&rel, &catalogue);
        diagnostics.extend(lint_source(&rel, &source, &options));
        // Semantic analysis covers first-party production code: test
        // files lock in arbitrary orders and vendored code follows
        // upstream's own discipline.
        if !options.is_test_file && !rel.starts_with("vendor/") {
            sources.push((rel, source));
        }
    }
    let (semantic, lock_graph_dot) = semantic_pass(&sources);
    diagnostics.extend(semantic);
    diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(LintReport { diagnostics, files_scanned, lock_graph_dot })
}

/// Runs the workspace-wide semantic rules (L008/L009) over already-read
/// sources, honouring each file's inline allow comments. Public so the
/// fixture harness and the sabotage self-test can drive it on synthetic
/// workspaces.
pub fn semantic_pass(sources: &[(String, String)]) -> (Vec<Diagnostic>, String) {
    let parsed: Vec<parser::ParsedFile> =
        sources.iter().map(|(rel, src)| parser::parse_file(rel, src)).collect();
    let report = callgraph::analyze(&parsed, &callgraph::SemanticOptions::default());
    let mut analyses: std::collections::BTreeMap<&str, rules::FileAnalysis> =
        std::collections::BTreeMap::new();
    let diagnostics = report
        .diagnostics
        .into_iter()
        .filter(|diag| {
            let Some(key) = diag.rule.allow_key() else { return true };
            let Some((_, source)) = sources.iter().find(|(rel, _)| *rel == diag.file) else {
                return true;
            };
            let analysis =
                analyses.entry(source.as_str()).or_insert_with(|| rules::FileAnalysis::new(source));
            !analysis.allowed(diag.line, key)
        })
        .collect();
    (diagnostics, report.lock_graph_dot)
}

/// Every valid allow site in the workspace, as `(file, site)` pairs —
/// used by the determinism cross-reference test to assert that each
/// `hash-order` allow in an algorithm crate is covered by a matrix case.
pub fn collect_allow_sites(root: &Path) -> Result<Vec<(String, AllowSite)>, String> {
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();
    let mut out = Vec::new();
    for path in &files {
        let rel = relative_path(root, path);
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        for site in rules::collect_allows(&source) {
            out.push((rel.clone(), site));
        }
    }
    Ok(out)
}

/// Recursively collects `.rs` files, skipping build output, VCS metadata,
/// and the lint fixture corpus (fixtures contain deliberate violations).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// Per-file rule tuning from the workspace-relative path.
pub fn file_options(rel: &str, catalogue: &BTreeSet<String>) -> FileOptions {
    let is_test_file = rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/");
    let clock_allowed = CLOCK_ALLOWLIST.iter().any(|p| rel.starts_with(p)) || is_test_file;
    // Binary entry points may panic (it's their error reporting), and
    // vendored third-party code follows upstream's panic policy — L002
    // is a library-code rule.
    let panic_allowed =
        rel.starts_with("vendor/") || rel.contains("/src/bin/") || rel.ends_with("/src/main.rs");
    // crates/obs defines the metric API itself (docs and tests register
    // free-form names); everything else must match the catalogue.
    let catalogue = if rel.starts_with("crates/obs") { None } else { Some(catalogue.clone()) };
    // Scenario code publishes BENCH_*.json numbers and must take them from
    // the muds-obs timing APIs even though the bench crate may otherwise
    // read clocks (L007).
    let bench_scenario = rel.starts_with("crates/bench/src/scenarios") && !is_test_file;
    FileOptions { is_test_file, clock_allowed, panic_allowed, catalogue, bench_scenario }
}

/// Parses the DESIGN.md §7 counter-catalogue table into the set of legal
/// metric names, and rejects duplicates (L005's uniqueness requirement).
///
/// Each table row contributes backticked spans: spans ending in `.` are
/// prefixes, bare `[a-z0-9_]+` spans are counter suffixes; the row's
/// names are `prefix` × `suffix`. Spans with other characters (formulae,
/// section refs) are ignored.
pub fn parse_catalogue(design: &str) -> Result<BTreeSet<String>, String> {
    let mut names = BTreeSet::new();
    let mut in_section = false;
    for line in design.lines() {
        if let Some(header) = line.strip_prefix("## ") {
            in_section = header.starts_with("7.");
            continue;
        }
        if !in_section || !line.trim_start().starts_with('|') {
            continue;
        }
        let mut prefixes = Vec::new();
        let mut suffixes = Vec::new();
        for span in backtick_spans(line) {
            if span.ends_with('.') && span.len() > 1 && is_metric_word(&span[..span.len() - 1]) {
                prefixes.push(span);
            } else if is_metric_word(span) {
                suffixes.push(span);
            }
        }
        for prefix in &prefixes {
            for suffix in &suffixes {
                let name = format!("{prefix}{suffix}");
                if !names.insert(name.clone()) {
                    return Err(format!(
                        "DESIGN.md §7: metric name {name:?} appears more than once in the \
                         catalogue; names must be unique"
                    ));
                }
            }
        }
    }
    if names.is_empty() {
        return Err("DESIGN.md §7: no counter catalogue found (expected a table of \
                    `prefix.` / `name` spans)"
            .to_string());
    }
    Ok(names)
}

fn is_metric_word(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

fn backtick_spans(line: &str) -> impl Iterator<Item = &str> {
    let mut rest = line;
    std::iter::from_fn(move || {
        let open = rest.find('`')?;
        let after = &rest[open + 1..];
        let close = after.find('`')?;
        let span = &after[..close];
        rest = &after[close + 1..];
        Some(span)
    })
}

// ---------------------------------------------------------------------------
// Output rendering
// ---------------------------------------------------------------------------

/// Renders findings for humans: one `file:line:col` line per finding,
/// then a summary.
pub fn render_human(report: &LintReport, comparison: &baseline::Comparison) -> String {
    let mut out = String::new();
    for diag in &comparison.new_findings {
        out.push_str(&diag.render());
        out.push('\n');
    }
    for (key, was, now) in &comparison.stale {
        out.push_str(&format!(
            "error: baseline entry `{key}` is stale ({was} grandfathered, {now} found) — run \
             `muds-lint --update-baseline` to tighten\n"
        ));
    }
    out.push_str(&format!(
        "{} file(s) scanned, {} finding(s): {} new, {} baselined\n",
        report.files_scanned,
        report.diagnostics.len(),
        comparison.new_findings.len(),
        comparison.suppressed
    ));
    out
}

/// Renders the run as a single JSON object (machine-readable, used by CI).
pub fn render_json(report: &LintReport, comparison: &baseline::Comparison) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!("  \"total_findings\": {},\n", report.diagnostics.len()));
    out.push_str(&format!("  \"baselined\": {},\n", comparison.suppressed));
    out.push_str("  \"new_findings\": [\n");
    for (i, diag) in comparison.new_findings.iter().enumerate() {
        let comma = if i + 1 == comparison.new_findings.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"name\": \"{}\", \"file\": \"{}\", \"line\": {}, \
             \"col\": {}, \"message\": \"{}\"}}{comma}\n",
            diag.rule.id(),
            diag.rule.name(),
            json_escape(&diag.file),
            diag.line,
            diag.col,
            json_escape(&diag.message)
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"stale_baseline_keys\": [");
    for (i, (key, _, _)) in comparison.stale.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", json_escape(key)));
    }
    out.push_str("]\n}\n");
    out
}

/// Renders new findings as a SARIF 2.1.0 log (`--format sarif`), the
/// interchange format GitHub code scanning ingests for PR annotations.
/// Only the baseline-failing findings become results; grandfathered ones
/// are already visible via the JSON/human formats.
pub fn render_sarif(comparison: &baseline::Comparison) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"muds-lint\",\n");
    out.push_str("          \"informationUri\": \"DESIGN.md\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, rule) in Rule::ALL.iter().enumerate() {
        let comma = if i + 1 == Rule::ALL.len() { "" } else { "," };
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"name\": \"{}\", \
             \"shortDescription\": {{\"text\": \"{}\"}}}}{comma}\n",
            rule.id(),
            rule.name(),
            rule.name()
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, diag) in comparison.new_findings.iter().enumerate() {
        let comma = if i + 1 == comparison.new_findings.len() { "" } else { "," };
        out.push_str(&format!(
            "        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"error\",\n          \
             \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}, \
             \"startColumn\": {}}}}}}}]\n        }}{comma}\n",
            diag.rule.id(),
            json_escape(&diag.message),
            json_escape(&diag.file),
            diag.line,
            diag.col
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Shared CLI runner (used by the muds-lint binary and `mudsprof lint`)
// ---------------------------------------------------------------------------

/// Output rendering selected by `--format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    Human,
    Json,
    Sarif,
}

/// Parsed command-line options for the lint runner.
pub struct CliOptions {
    pub root: PathBuf,
    pub format: OutputFormat,
    pub baseline_path: Option<PathBuf>,
    pub write_baseline: bool,
    pub update_baseline: bool,
    pub lock_graph_dot: bool,
}

impl CliOptions {
    /// Parses `--root <dir> --format json|human|sarif --baseline <file>
    /// --write-baseline --update-baseline --lock-graph dot` style
    /// arguments. Returns `Err(usage)` on anything unrecognised.
    pub fn parse(args: &[String]) -> Result<CliOptions, String> {
        let mut options = CliOptions {
            root: PathBuf::from("."),
            format: OutputFormat::Human,
            baseline_path: None,
            write_baseline: false,
            update_baseline: false,
            lock_graph_dot: false,
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--root" => {
                    i += 1;
                    let value = args.get(i).ok_or("--root needs a directory")?;
                    options.root = PathBuf::from(value);
                }
                "--format" => {
                    i += 1;
                    match args.get(i).map(|s| s.as_str()) {
                        Some("json") => options.format = OutputFormat::Json,
                        Some("human") => options.format = OutputFormat::Human,
                        Some("sarif") => options.format = OutputFormat::Sarif,
                        other => {
                            return Err(format!("--format expects json|human|sarif, got {other:?}"))
                        }
                    }
                }
                "--baseline" => {
                    i += 1;
                    let value = args.get(i).ok_or("--baseline needs a file path")?;
                    options.baseline_path = Some(PathBuf::from(value));
                }
                "--write-baseline" => options.write_baseline = true,
                "--update-baseline" => options.update_baseline = true,
                "--lock-graph" => {
                    i += 1;
                    match args.get(i).map(|s| s.as_str()) {
                        Some("dot") => options.lock_graph_dot = true,
                        other => return Err(format!("--lock-graph expects dot, got {other:?}")),
                    }
                }
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
            }
            i += 1;
        }
        if options.write_baseline && options.update_baseline {
            return Err("--write-baseline and --update-baseline are mutually exclusive".to_string());
        }
        Ok(options)
    }
}

pub const USAGE: &str = "usage: muds-lint [--root <dir>] [--format json|human|sarif] \
                         [--baseline <file>] [--write-baseline] [--update-baseline] \
                         [--lock-graph dot]\n\
                         --write-baseline   grandfather all current findings\n\
                         --update-baseline  shrink the baseline (never grows it)\n\
                         --lock-graph dot   print the lock-order graph and exit\n\
                         exit codes: 0 clean/baseline-stable, 1 new findings or stale \
                         baseline, 2 error";

/// Runs the lint pass end to end, printing to `out`. Returns the process
/// exit code: 0 clean, 1 new findings or stale baseline, 2 error.
pub fn run_cli(args: &[String], out: &mut dyn std::io::Write) -> i32 {
    run_cli_io(args, out).unwrap_or(2)
}

fn run_cli_io(args: &[String], out: &mut dyn std::io::Write) -> std::io::Result<i32> {
    let options = match CliOptions::parse(args) {
        Ok(options) => options,
        Err(message) => {
            writeln!(out, "{message}")?;
            return Ok(2);
        }
    };
    let config = LintConfig::new(&options.root);
    let report = match lint_workspace(&config) {
        Ok(report) => report,
        Err(message) => {
            writeln!(out, "muds-lint: {message}")?;
            return Ok(2);
        }
    };
    if options.lock_graph_dot {
        write!(out, "{}", report.lock_graph_dot)?;
        return Ok(0);
    }
    let baseline_path =
        options.baseline_path.clone().unwrap_or_else(|| options.root.join(BASELINE_FILE));
    if options.write_baseline {
        let baseline = baseline::from_diagnostics(&report.diagnostics);
        if let Err(e) = std::fs::write(&baseline_path, baseline::to_json(&baseline)) {
            writeln!(out, "muds-lint: cannot write {}: {e}", baseline_path.display())?;
            return Ok(2);
        }
        writeln!(
            out,
            "wrote baseline with {} grandfathered finding(s) to {}",
            report.diagnostics.len(),
            baseline_path.display()
        )?;
        return Ok(0);
    }
    let mut baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match baseline::parse_json(&text) {
            Ok(baseline) => baseline,
            Err(message) => {
                writeln!(out, "muds-lint: {}: {message}", baseline_path.display())?;
                return Ok(2);
            }
        },
        Err(_) => Baseline::default(), // no baseline file: everything is new
    };
    if options.update_baseline {
        let shrunk = baseline::shrink(&baseline, &report.diagnostics);
        if shrunk != baseline {
            if let Err(e) = std::fs::write(&baseline_path, baseline::to_json(&shrunk)) {
                writeln!(out, "muds-lint: cannot write {}: {e}", baseline_path.display())?;
                return Ok(2);
            }
            writeln!(
                out,
                "tightened baseline {} -> {} grandfathered finding(s) in {}",
                baseline.counts.values().sum::<usize>(),
                shrunk.counts.values().sum::<usize>(),
                baseline_path.display()
            )?;
        } else {
            writeln!(out, "baseline already tight: {}", baseline_path.display())?;
        }
        baseline = shrunk;
    }
    let comparison = baseline::compare(&report.diagnostics, &baseline);
    let rendered = match options.format {
        OutputFormat::Json => render_json(&report, &comparison),
        OutputFormat::Human => render_human(&report, &comparison),
        OutputFormat::Sarif => render_sarif(&comparison),
    };
    write!(out, "{rendered}")?;
    Ok(if comparison.new_findings.is_empty() && comparison.stale.is_empty() { 0 } else { 1 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_parses_prefix_suffix_rows() {
        let design = "
## 7. Observability

| prefix | counters |
|--------|----------|
| `pli.` | `requests`, `hits`, `misses` (`hits + misses == requests`) |
| `walk.` | `runs` (§5.1) |

## 8. Next
| `bogus.` | `ignored` |
";
        let catalogue = parse_catalogue(design).expect("parse");
        let names: Vec<&str> = catalogue.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["pli.hits", "pli.misses", "pli.requests", "walk.runs"]);
    }

    #[test]
    fn catalogue_rejects_duplicates() {
        let design = "
## 7. Observability
| `pli.` | `requests`, `requests` |
";
        assert!(parse_catalogue(design).is_err_and(|m| m.contains("unique")));
    }

    #[test]
    fn file_options_classify_paths() {
        let catalogue: BTreeSet<String> = ["pli.requests".to_string()].into_iter().collect();
        let algo = file_options("crates/fd/src/tane.rs", &catalogue);
        assert!(!algo.is_test_file && !algo.clock_allowed && algo.catalogue.is_some());
        let obs = file_options("crates/obs/src/lib.rs", &catalogue);
        assert!(obs.clock_allowed && obs.catalogue.is_none());
        let test = file_options("tests/determinism.rs", &catalogue);
        assert!(test.is_test_file);
        let serve = file_options("crates/serve/src/server.rs", &catalogue);
        assert!(serve.clock_allowed && !serve.is_test_file);
        // Bench crate reads clocks freely — except scenario code (L007).
        let bench = file_options("crates/bench/src/lib.rs", &catalogue);
        assert!(bench.clock_allowed && !bench.bench_scenario);
        let scenario = file_options("crates/bench/src/scenarios.rs", &catalogue);
        assert!(scenario.clock_allowed && scenario.bench_scenario);
    }

    #[test]
    fn cli_parse_and_usage_errors() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let parsed =
            CliOptions::parse(&args(&["--root", "/x", "--format", "json", "--write-baseline"]))
                .expect("parse");
        assert_eq!(parsed.root, PathBuf::from("/x"));
        assert!(parsed.format == OutputFormat::Json && parsed.write_baseline);
        let sarif = CliOptions::parse(&args(&["--format", "sarif", "--update-baseline"]))
            .expect("parse sarif");
        assert!(sarif.format == OutputFormat::Sarif && sarif.update_baseline);
        let dot = CliOptions::parse(&args(&["--lock-graph", "dot"])).expect("parse dot");
        assert!(dot.lock_graph_dot);
        assert!(CliOptions::parse(&args(&["--format", "yaml"])).is_err());
        assert!(CliOptions::parse(&args(&["--lock-graph", "png"])).is_err());
        assert!(CliOptions::parse(&args(&["--write-baseline", "--update-baseline"])).is_err());
        assert!(CliOptions::parse(&args(&["--mystery"])).is_err());
    }

    fn sample_report() -> LintReport {
        LintReport {
            diagnostics: vec![Diagnostic {
                rule: Rule::L002,
                file: "a.rs".to_string(),
                line: 1,
                col: 2,
                message: "has \"quotes\"".to_string(),
            }],
            files_scanned: 1,
            lock_graph_dot: String::new(),
        }
    }

    #[test]
    fn json_output_is_escaped() {
        let report = sample_report();
        let comparison = baseline::compare(&report.diagnostics, &Baseline::default());
        let json = render_json(&report, &comparison);
        assert!(json.contains("has \\\"quotes\\\""), "{json}");
        assert!(json.contains("\"rule\": \"L002\""));
    }

    #[test]
    fn sarif_output_carries_rule_and_location() {
        let report = sample_report();
        let comparison = baseline::compare(&report.diagnostics, &Baseline::default());
        let sarif = render_sarif(&comparison);
        assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
        assert!(sarif.contains("\"ruleId\": \"L002\""));
        assert!(sarif.contains("\"startLine\": 1"));
        assert!(sarif.contains("has \\\"quotes\\\""));
    }

    #[test]
    fn stale_baseline_fails_and_update_tightens() {
        let dir = std::env::temp_dir().join(format!("muds-lint-stale-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let baseline_path = dir.join("baseline.json");
        // Grandfather a finding that no longer exists anywhere.
        std::fs::write(&baseline_path, "{\"L002:ghost.rs\": 3}\n").expect("write baseline");
        let workspace = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
        let run = |extra: &[&str]| {
            let mut argv = vec![
                "--root".to_string(),
                workspace.display().to_string(),
                "--baseline".to_string(),
                baseline_path.display().to_string(),
            ];
            argv.extend(extra.iter().map(|s| s.to_string()));
            let mut out = Vec::new();
            let code = run_cli(&argv, &mut out);
            (code, String::from_utf8_lossy(&out).into_owned())
        };
        let (code, text) = run(&[]);
        assert_eq!(code, 1, "stale baseline must fail: {text}");
        assert!(text.contains("stale"), "{text}");
        let (code, text) = run(&["--update-baseline"]);
        assert_eq!(code, 0, "after tightening the run is clean: {text}");
        assert!(text.contains("tightened baseline"), "{text}");
        let rewritten = std::fs::read_to_string(&baseline_path).expect("read");
        assert_eq!(rewritten, "{}\n", "ghost entries are dropped deterministically");
        let (code, _) = run(&[]);
        assert_eq!(code, 0);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
