//! The lint rule catalogue (L001–L006) and the per-file analysis context.
//!
//! Rules pattern-match over the token stream from [`crate::lexer`],
//! guided by three pieces of per-file context computed up front:
//!
//! * **test regions** — `#[cfg(test)]` / `#[test]` items and files under a
//!   `tests/` directory. Only L003 (SAFETY comments) applies inside them;
//!   panic, determinism, and clock rules are about production behaviour.
//! * **loop regions** — brace ranges introduced by `loop`/`while`/`for`,
//!   used by L006 to tell a predicate-guarded condvar wait from a bare one.
//! * **hash-typed names** — identifiers declared in this file with a
//!   `HashMap`/`HashSet` type (let bindings, struct fields), used by L001
//!   to find iteration with nondeterministic order.
//!
//! Findings are suppressed by inline allow comments
//! (`// lint:allow(<key>): <justification>`, see [`crate::allows`]) on the
//! same line or an immediately preceding comment line.

use crate::allows::AllowSite;
use crate::lexer::{lex, Lexed, Token, TokenKind};

/// One lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Malformed allow comment (unknown key / missing justification).
    L000,
    /// Hash-order determinism: iteration over `HashMap`/`HashSet`.
    L001,
    /// Panic in library code: `unwrap`/`expect`/`panic!`/`[literal]` index.
    L002,
    /// `unsafe` without a `// SAFETY:` comment.
    L003,
    /// Wall-clock reads outside the obs/bench/serve/cli allowlist.
    L004,
    /// Obs metric name not in the DESIGN.md §7 catalogue.
    L005,
    /// Condvar `.wait()` not guarded by a loop predicate.
    L006,
    /// Raw wall-clock read in bench scenario code: scenario timing must
    /// come from `muds_obs` spans so reported numbers match the span tree.
    L007,
    /// Lock-order cycle in the interprocedural lock-acquisition graph:
    /// two call paths acquire the same locks in opposite orders.
    L008,
    /// Blocking call (file I/O, `write_all`, condvar wait, hot mutex)
    /// reachable from the reactor event loop on its own thread.
    L009,
    /// `let _ = call(…);` / statement-position `.ok();` discarding a
    /// result in library code.
    L010,
}

impl Rule {
    /// Every rule, in id order — drives the SARIF `tool.driver.rules`
    /// array so viewers can resolve `ruleId` references.
    pub const ALL: [Rule; 11] = [
        Rule::L000,
        Rule::L001,
        Rule::L002,
        Rule::L003,
        Rule::L004,
        Rule::L005,
        Rule::L006,
        Rule::L007,
        Rule::L008,
        Rule::L009,
        Rule::L010,
    ];

    pub fn id(self) -> &'static str {
        match self {
            Rule::L000 => "L000",
            Rule::L001 => "L001",
            Rule::L002 => "L002",
            Rule::L003 => "L003",
            Rule::L004 => "L004",
            Rule::L005 => "L005",
            Rule::L006 => "L006",
            Rule::L007 => "L007",
            Rule::L008 => "L008",
            Rule::L009 => "L009",
            Rule::L010 => "L010",
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Rule::L000 => "allow-syntax",
            Rule::L001 => "hash-order",
            Rule::L002 => "panic-in-library",
            Rule::L003 => "unsafe-needs-safety-comment",
            Rule::L004 => "wall-clock",
            Rule::L005 => "counter-catalogue",
            Rule::L006 => "condvar-wait-without-loop",
            Rule::L007 => "bench-clock-discipline",
            Rule::L008 => "lock-order-cycle",
            Rule::L009 => "blocking-in-reactor",
            Rule::L010 => "swallowed-result",
        }
    }

    /// The `lint:allow(<key>)` key that suppresses this rule, if any.
    /// L003 has no allow key: the `// SAFETY:` comment *is* the mechanism.
    pub fn allow_key(self) -> Option<&'static str> {
        match self {
            Rule::L000 | Rule::L003 => None,
            Rule::L001 => Some("hash-order"),
            Rule::L002 => Some("panic"),
            Rule::L004 => Some("wall-clock"),
            Rule::L005 => Some("counter-name"),
            Rule::L006 => Some("condvar-loop"),
            Rule::L007 => Some("bench-clock"),
            Rule::L008 => Some("lock-order"),
            Rule::L009 => Some("blocking-reactor"),
            Rule::L010 => Some("swallowed-result"),
        }
    }
}

/// All rules with an allow key, for validating allow comments.
pub const ALLOW_KEYS: [&str; 9] = [
    "hash-order",
    "panic",
    "wall-clock",
    "counter-name",
    "condvar-loop",
    "bench-clock",
    "lock-order",
    "blocking-reactor",
    "swallowed-result",
];

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: Rule,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    pub line: usize,
    pub col: usize,
    pub message: String,
}

impl Diagnostic {
    /// `file:line:col: L002 [panic-in-library] message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {} [{}] {}",
            self.file,
            self.line,
            self.col,
            self.rule.id(),
            self.rule.name(),
            self.message
        )
    }
}

/// Per-file rule tuning resolved by the workspace walker.
#[derive(Debug, Clone, Default)]
pub struct FileOptions {
    /// Entire file is test/fixture code (under a `tests/`, `benches/`, or
    /// `examples/` directory): only L003 applies.
    pub is_test_file: bool,
    /// Panics are acceptable here (binary entry points, vendored code):
    /// L002 is skipped.
    pub panic_allowed: bool,
    /// File is allowed to read wall clocks (obs/bench/serve/cli/vendor
    /// instrumentation layers).
    pub clock_allowed: bool,
    /// Check registered obs metric names against this catalogue; `None`
    /// disables L005 for the file.
    pub catalogue: Option<std::collections::BTreeSet<String>>,
    /// File holds bench *scenario* code (`crates/bench/src/scenarios*`):
    /// even though the bench crate as a whole may read clocks, scenario
    /// timing must come from `muds_obs` spans (L007), so the numbers in a
    /// `BENCH_*.json` report always match its span-tree phases.
    pub bench_scenario: bool,
}

/// Methods whose receiver iterates a collection in storage order.
const ITER_METHODS: [&str; 8] =
    ["iter", "iter_mut", "keys", "values", "values_mut", "into_keys", "into_values", "drain"];

/// Chain sinks whose result does not depend on iteration order (or that
/// restore a deterministic order). Seeing one of these later in the same
/// statement exempts an L001 candidate.
const ORDER_INSENSITIVE_SINKS: [&str; 22] = [
    "sum",
    "product",
    "count",
    "len",
    "is_empty",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "all",
    "any",
    "contains",
    "find",
    "position",
    "sort",
    "sort_by",
    "sort_unstable",
    "sort_by_key",
    "sort_unstable_by",
    "sorted",
];

/// Obs registration functions whose first string argument is a metric name.
const METRIC_FNS: [&str; 6] = ["counter", "gauge", "histogram", "add", "gauge_set", "gauge_max"];

/// Wall-clock acquisition points: `<type>::<fn>` paths.
const CLOCK_PATHS: [(&str, &str); 3] =
    [("Instant", "now"), ("SystemTime", "now"), ("SystemTime", "UNIX_EPOCH")];

/// Analysis of one file.
pub struct FileAnalysis {
    lexed: Lexed,
    /// `in_test[i]` — token `i` is inside a `#[cfg(test)]`/`#[test]` item.
    in_test: Vec<bool>,
    /// `in_loop[i]` — token `i` is lexically inside a loop body.
    in_loop: Vec<bool>,
    /// Identifiers declared with a hash-table type in this file.
    hash_names: std::collections::BTreeSet<String>,
    /// Valid allow comments: `(comment line, key, last covered line)`.
    /// An allow covers its own line (trailing comment) plus the whole
    /// statement that starts directly below it.
    allows: Vec<(usize, String, usize)>,
    /// Malformed allow comments found while parsing.
    allow_errors: Vec<(usize, String)>,
    /// All parsed allow sites (valid ones), for cross-referencing tests.
    pub allow_sites: Vec<AllowSite>,
}

impl FileAnalysis {
    pub fn new(source: &str) -> FileAnalysis {
        let lexed = lex(source);
        let in_test = mark_test_regions(&lexed.tokens);
        let in_loop = mark_loop_regions(&lexed.tokens);
        let hash_names = collect_hash_names(&lexed.tokens);
        let mut allows = Vec::new();
        let mut allow_errors = Vec::new();
        let mut allow_sites = Vec::new();
        for comment in &lexed.comments {
            for parsed in crate::allows::parse_allow_comments(&comment.text, comment.line) {
                match parsed {
                    Ok(site) => {
                        let cover_end = allow_cover_end(&lexed.tokens, site.line);
                        allows.push((site.line, site.key.clone(), cover_end));
                        allow_sites.push(site);
                    }
                    Err(message) => allow_errors.push((comment.line, message)),
                }
            }
        }
        FileAnalysis { lexed, in_test, in_loop, hash_names, allows, allow_errors, allow_sites }
    }

    /// Is there a `// SAFETY:` comment on `line`, or in the contiguous
    /// comment run directly above it (every line between the comment and
    /// `line` must itself hold a comment)?
    fn has_safety_comment(&self, line: usize) -> bool {
        let comment_lines: std::collections::BTreeSet<usize> = self
            .lexed
            .comments
            .iter()
            .flat_map(|c| c.line..=c.line + c.text.matches('\n').count())
            .collect();
        self.lexed.comments.iter().any(|c| {
            c.text.contains("SAFETY:")
                && c.line <= line
                && (c.line + 1..line).all(|between| comment_lines.contains(&between))
        })
    }

    /// Is the finding at `line` suppressed by an allow comment for `key`
    /// on the same line or covering the statement below it? Public so the
    /// workspace-level semantic pass (L008/L009) can honour file-local
    /// allows on the diagnostics it attributes to this file.
    pub fn allowed(&self, line: usize, key: &str) -> bool {
        self.allows.iter().any(|(allow_line, allow_key, cover_end)| {
            allow_key == key && *allow_line <= line && line <= *cover_end
        })
    }
}

/// Last line an allow comment on `allow_line` covers: its own line plus
/// the statement that starts within the next 4 lines (the comment may
/// continue over a few plain lines before code resumes). The statement
/// runs to its terminating `;`, an opening `{` (loop/if headers), or the
/// `}` / `)` that closes an enclosing block — whichever comes first.
fn allow_cover_end(tokens: &[Token], allow_line: usize) -> usize {
    let Some(start) = tokens.iter().position(|t| t.line > allow_line) else { return allow_line };
    if tokens[start].line > allow_line + 4 {
        return allow_line; // allow not directly above code: same-line only
    }
    let mut depth = 0i32;
    let mut last_line = tokens[start].line;
    for token in &tokens[start..] {
        last_line = token.line;
        match token.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                depth -= 1;
                if depth < 0 {
                    return last_line;
                }
            }
            ";" if depth <= 0 => return last_line,
            "{" | "}" if depth <= 0 => return last_line,
            _ => {}
        }
    }
    last_line
}

/// Runs every applicable rule over `source`, returning findings sorted by
/// position. `file` is the workspace-relative path used in diagnostics.
pub fn lint_source(file: &str, source: &str, options: &FileOptions) -> Vec<Diagnostic> {
    let analysis = FileAnalysis::new(source);
    let mut out = Vec::new();

    // L000: malformed allow comments are findings everywhere, test or not —
    // a broken allow silently stops suppressing.
    for (line, message) in &analysis.allow_errors {
        out.push(Diagnostic {
            rule: Rule::L000,
            file: file.to_string(),
            line: *line,
            col: 1,
            message: message.clone(),
        });
    }

    rule_l003_unsafe(file, &analysis, &mut out);
    if !options.is_test_file {
        rule_l001_hash_order(file, &analysis, &mut out);
        if !options.panic_allowed {
            rule_l002_panic(file, &analysis, &mut out);
            rule_l010_swallowed_result(file, &analysis, &mut out);
        }
        if !options.clock_allowed {
            rule_l004_wall_clock(file, &analysis, &mut out);
        }
        if options.bench_scenario {
            rule_l007_bench_clock(file, &analysis, &mut out);
        }
        if let Some(catalogue) = &options.catalogue {
            rule_l005_counter_catalogue(file, &analysis, catalogue, &mut out);
        }
        rule_l006_condvar(file, &analysis, &mut out);
    }

    out.sort_by_key(|d| (d.line, d.col, d.rule));
    out
}

/// Exposes the file's valid allow sites (used by the determinism
/// cross-reference test).
pub fn collect_allows(source: &str) -> Vec<AllowSite> {
    FileAnalysis::new(source).allow_sites
}

// ---------------------------------------------------------------------------
// Context marking
// ---------------------------------------------------------------------------

/// Marks tokens covered by `#[cfg(test)]` / `#[test]` items: from the
/// attribute to the end of the following brace-balanced item (or the `;`
/// that ends a braceless one).
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if is_test_attribute(tokens, i) {
            // Find the item's opening brace (skipping further attributes),
            // then its matching close.
            let mut j = i;
            let mut depth = 0usize;
            let mut opened = false;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "{" => {
                        depth += 1;
                        opened = true;
                    }
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            break;
                        }
                    }
                    ";" if !opened && depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let end = j.min(tokens.len() - 1);
            for flag in &mut mask[i..=end] {
                *flag = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// `#` `[` `cfg` `(` `test` … or `#` `[` `test` `]` at `i`.
fn is_test_attribute(tokens: &[Token], i: usize) -> bool {
    let text = |k: usize| tokens.get(i + k).map(|t| t.text.as_str());
    if text(0) != Some("#") || text(1) != Some("[") {
        return false;
    }
    match text(2) {
        Some("test") => text(3) == Some("]"),
        Some("cfg") => text(3) == Some("(") && text(4) == Some("test"),
        _ => false,
    }
}

/// Marks tokens lexically inside a `loop`/`while`/`for` body.
fn mark_loop_regions(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    // Stack of brace kinds: true = loop body (or nested inside one).
    let mut stack: Vec<bool> = Vec::new();
    // A loop keyword arms the *next* top-level `{`; `;` disarms (e.g. a
    // `while` used inside a macro that never opens a block).
    let mut armed = false;
    let mut paren_depth = 0usize;
    for (i, token) in tokens.iter().enumerate() {
        match token.text.as_str() {
            "loop" | "while" | "for" if token.kind == TokenKind::Ident => armed = true,
            "(" | "[" => paren_depth += 1,
            ")" | "]" => paren_depth = paren_depth.saturating_sub(1),
            "{" => {
                let inside = stack.last().copied().unwrap_or(false);
                let is_loop_body = armed && paren_depth == 0;
                stack.push(inside || is_loop_body);
                if is_loop_body {
                    armed = false;
                }
            }
            "}" => {
                stack.pop();
            }
            ";" if paren_depth == 0 => armed = false,
            _ => {}
        }
        if stack.last().copied().unwrap_or(false) {
            mask[i] = true;
        }
    }
    mask
}

/// Identifiers declared in this file with a `HashMap`/`HashSet` type:
/// `name: …HashMap<…`, `let [mut] name = HashMap::new()`, and the
/// `with_capacity` / `from` constructors.
fn collect_hash_names(tokens: &[Token]) -> std::collections::BTreeSet<String> {
    let mut names = std::collections::BTreeSet::new();
    for i in 0..tokens.len() {
        if tokens[i].kind != TokenKind::Ident {
            continue;
        }
        let name = &tokens[i].text;
        // `name :` followed by a type mentioning HashMap/HashSet within a
        // short window (covers struct fields and annotated lets).
        if tokens.get(i + 1).is_some_and(|t| t.text == ":")
            && tokens.get(i + 2).is_some_and(|t| t.text != ":")
        {
            let window = &tokens[i + 2..tokens.len().min(i + 12)];
            let mut angle = 0i32;
            for t in window {
                match t.text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "=" | ";" | ")" | "{" if angle <= 0 => break,
                    "," if angle <= 0 => break,
                    "HashMap" | "HashSet" => {
                        names.insert(name.clone());
                        break;
                    }
                    _ => {}
                }
            }
        }
        // `name = HashMap::new(…)` / `with_capacity(…)` etc.
        if tokens.get(i + 1).is_some_and(|t| t.text == "=")
            && tokens.get(i + 2).is_some_and(|t| t.text == "HashMap" || t.text == "HashSet")
        {
            names.insert(name.clone());
        }
    }
    names
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// L001 — iteration over a hash-typed binding. Two shapes:
/// `name.iter()/keys()/…` and `for … in [&[mut]] name {`. A chain ending
/// in an order-insensitive sink is exempt; so is an allow comment.
fn rule_l001_hash_order(file: &str, analysis: &FileAnalysis, out: &mut Vec<Diagnostic>) {
    let tokens = &analysis.lexed.tokens;
    for i in 0..tokens.len() {
        if analysis.in_test[i] {
            continue;
        }
        let token = &tokens[i];
        if token.kind != TokenKind::Ident || !analysis.hash_names.contains(&token.text) {
            continue;
        }
        // Shape 1: `name . <iter-method> (`.
        let method = tokens.get(i + 1).filter(|t| t.text == ".").and_then(|_| tokens.get(i + 2));
        if let Some(m) = method {
            if ITER_METHODS.contains(&m.text.as_str())
                && tokens.get(i + 3).is_some_and(|t| t.text == "(")
            {
                if chain_has_order_insensitive_sink(tokens, i + 3)
                    || analysis.allowed(token.line, "hash-order")
                {
                    continue;
                }
                out.push(Diagnostic {
                    rule: Rule::L001,
                    file: file.to_string(),
                    line: token.line,
                    col: token.col,
                    message: format!(
                        "iteration over hash-ordered `{}` via `.{}()`: order is nondeterministic \
                         across runs; sort the items, use a BTree collection, or justify with \
                         `// lint:allow(hash-order): <why order cannot leak>`",
                        token.text, m.text
                    ),
                });
            }
            continue;
        }
        // Shape 2: `for <pat> in [& [mut]] name {`.
        let mut j = i;
        let mut prefix_ok = true;
        for _ in 0..2 {
            if j == 0 {
                break;
            }
            let prev = &tokens[j - 1];
            if prev.text == "&" || prev.text == "mut" {
                j -= 1;
            } else {
                break;
            }
        }
        if j == 0 || tokens[j - 1].text != "in" {
            prefix_ok = false;
        }
        let body_next = tokens.get(i + 1).is_some_and(|t| t.text == "{");
        if prefix_ok && body_next && !analysis.allowed(token.line, "hash-order") {
            out.push(Diagnostic {
                rule: Rule::L001,
                file: file.to_string(),
                line: token.line,
                col: token.col,
                message: format!(
                    "`for` loop over hash-ordered `{}`: order is nondeterministic across runs; \
                     iterate a sorted view or justify with `// lint:allow(hash-order): …`",
                    token.text
                ),
            });
        }
    }
}

/// Scans the method chain starting at the `(` of the iteration call:
/// does any later `.sink(` in the same statement make order irrelevant?
fn chain_has_order_insensitive_sink(tokens: &[Token], open_paren: usize) -> bool {
    let mut depth = 0i32;
    let mut i = open_paren;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                depth -= 1;
                if depth < 0 {
                    return false; // chain ended inside an enclosing call
                }
            }
            ";" | "{" if depth == 0 => return false,
            _ if depth == 0
                && tokens[i].kind == TokenKind::Ident
                && ORDER_INSENSITIVE_SINKS.contains(&tokens[i].text.as_str()) =>
            {
                return true;
            }
            _ => {}
        }
        i += 1;
    }
    false
}

/// L002 — `.unwrap()`, `.expect(…)`, `panic!`, `unimplemented!`, `todo!`,
/// and integer-literal slice indexing in non-test code.
fn rule_l002_panic(file: &str, analysis: &FileAnalysis, out: &mut Vec<Diagnostic>) {
    let tokens = &analysis.lexed.tokens;
    for i in 0..tokens.len() {
        if analysis.in_test[i] || tokens[i].kind != TokenKind::Ident {
            continue;
        }
        let token = &tokens[i];
        let preceded_by_dot = i > 0 && tokens[i - 1].text == ".";
        let followed_by_paren = tokens.get(i + 1).is_some_and(|t| t.text == "(");
        let followed_by_bang = tokens.get(i + 1).is_some_and(|t| t.text == "!");
        // `.unwrap()` takes no argument; `.expect("…")` takes a string
        // literal message. Anything else (e.g. a parser's own
        // `self.expect(b'{')` returning Result) is a different method.
        let std_panic_shape = match token.text.as_str() {
            "unwrap" => tokens.get(i + 2).is_some_and(|t| t.text == ")"),
            "expect" => tokens.get(i + 2).is_some_and(|t| t.kind == TokenKind::Str),
            _ => false,
        };
        let finding = match token.text.as_str() {
            "unwrap" | "expect" if preceded_by_dot && followed_by_paren && std_panic_shape => {
                Some(format!(
                    "`.{}()` can panic: return a typed error instead (or justify with \
                     `// lint:allow(panic): <why this cannot fire>`)",
                    token.text
                ))
            }
            "panic" | "unimplemented" | "todo" if followed_by_bang => Some(format!(
                "`{}!` in library code: return a typed error instead (or justify with \
                 `// lint:allow(panic): …`)",
                token.text
            )),
            _ => None,
        };
        if let Some(message) = finding {
            if !analysis.allowed(token.line, "panic") {
                out.push(Diagnostic {
                    rule: Rule::L002,
                    file: file.to_string(),
                    line: token.line,
                    col: token.col,
                    message,
                });
            }
        }
        // Integer-literal indexing `name[0]` — the narrow, high-signal
        // slice-index subset (arbitrary `a[i]` would drown the report).
        if tokens.get(i + 1).is_some_and(|t| t.text == "[")
            && tokens.get(i + 2).is_some_and(|t| t.kind == TokenKind::Number)
            && tokens.get(i + 3).is_some_and(|t| t.text == "]")
            && !analysis.allowed(token.line, "panic")
        {
            out.push(Diagnostic {
                rule: Rule::L002,
                file: file.to_string(),
                line: token.line,
                col: token.col,
                message: format!(
                    "literal index `{}[{}]` can panic on short input: use `.get({})` or justify \
                     with `// lint:allow(panic): …`",
                    token.text,
                    tokens[i + 2].text,
                    tokens[i + 2].text
                ),
            });
        }
    }
}

/// L003 — every `unsafe` keyword needs a `// SAFETY:` comment on the same
/// line or within the 4 lines above. Applies in test code too.
fn rule_l003_unsafe(file: &str, analysis: &FileAnalysis, out: &mut Vec<Diagnostic>) {
    for token in &analysis.lexed.tokens {
        if token.kind == TokenKind::Ident
            && token.text == "unsafe"
            && !analysis.has_safety_comment(token.line)
        {
            out.push(Diagnostic {
                rule: Rule::L003,
                file: file.to_string(),
                line: token.line,
                col: token.col,
                message: "`unsafe` without a `// SAFETY:` comment: state the invariant that makes \
                          this sound in a comment directly above"
                    .to_string(),
            });
        }
    }
}

/// Calls `found(token_index, type_name, fn_name)` for every non-test
/// `<type>::<fn>` clock-acquisition site in the file. Shared by L004 and
/// L007, which differ only in where they apply and how a site is excused.
fn for_each_clock_read(analysis: &FileAnalysis, mut found: impl FnMut(usize, &str, &str)) {
    let tokens = &analysis.lexed.tokens;
    for i in 0..tokens.len() {
        if analysis.in_test[i] || tokens[i].kind != TokenKind::Ident {
            continue;
        }
        for (type_name, fn_name) in CLOCK_PATHS {
            if tokens[i].text == type_name
                && tokens.get(i + 1).is_some_and(|t| t.text == ":")
                && tokens.get(i + 2).is_some_and(|t| t.text == ":")
                && tokens.get(i + 3).is_some_and(|t| t.text == fn_name)
            {
                found(i, type_name, fn_name);
            }
        }
    }
}

/// L004 — `Instant::now`/`SystemTime::now`/`UNIX_EPOCH` outside the
/// instrumentation allowlist.
fn rule_l004_wall_clock(file: &str, analysis: &FileAnalysis, out: &mut Vec<Diagnostic>) {
    let tokens = &analysis.lexed.tokens;
    for_each_clock_read(analysis, |i, type_name, fn_name| {
        if analysis.allowed(tokens[i].line, "wall-clock") {
            return;
        }
        out.push(Diagnostic {
            rule: Rule::L004,
            file: file.to_string(),
            line: tokens[i].line,
            col: tokens[i].col,
            message: format!(
                "`{type_name}::{fn_name}` in an algorithm crate: wall-clock reads belong \
                 in obs/bench/serve instrumentation; route timing through `muds_obs` \
                 spans or justify with `// lint:allow(wall-clock): <why results cannot \
                 depend on it>`"
            ),
        });
    });
}

/// L007 — raw clock reads in bench scenario code. Scenario files are in
/// the bench crate (which L004 exempts wholesale), but the numbers they
/// publish into `BENCH_*.json` must be derived from `muds_obs` spans —
/// a raw `Instant::now()` pair would drift from the span-tree phases the
/// report also carries.
fn rule_l007_bench_clock(file: &str, analysis: &FileAnalysis, out: &mut Vec<Diagnostic>) {
    let tokens = &analysis.lexed.tokens;
    for_each_clock_read(analysis, |i, type_name, fn_name| {
        if analysis.allowed(tokens[i].line, "bench-clock") {
            return;
        }
        out.push(Diagnostic {
            rule: Rule::L007,
            file: file.to_string(),
            line: tokens[i].line,
            col: tokens[i].col,
            message: format!(
                "`{type_name}::{fn_name}` in bench scenario code: scenario timing must go \
                 through the muds-obs timing APIs (`Metrics::span`, `SpanTimer::stop`, \
                 `ProfileResult::total_time`) so BENCH_*.json wall times agree with their \
                 span-tree phases; justify exceptions with `// lint:allow(bench-clock): …`"
            ),
        });
    });
}

/// L005 — string literals registered as obs metric names must appear in
/// the DESIGN.md §7 catalogue.
fn rule_l005_counter_catalogue(
    file: &str,
    analysis: &FileAnalysis,
    catalogue: &std::collections::BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    let tokens = &analysis.lexed.tokens;
    for i in 0..tokens.len() {
        if analysis.in_test[i] || tokens[i].kind != TokenKind::Ident {
            continue;
        }
        if !METRIC_FNS.contains(&tokens[i].text.as_str()) {
            continue;
        }
        if tokens.get(i + 1).is_none_or(|t| t.text != "(") {
            continue;
        }
        let Some(arg) = tokens.get(i + 2).filter(|t| t.kind == TokenKind::Str) else { continue };
        let name = arg.text.trim_matches('"');
        // Metric names are `prefix.suffix`; other string-first calls that
        // happen to share a function name (e.g. a local `add("x", …)`)
        // won't look like one.
        if !name.contains('.')
            || !name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_')
        {
            continue;
        }
        if !catalogue.contains(name) && !analysis.allowed(arg.line, "counter-name") {
            out.push(Diagnostic {
                rule: Rule::L005,
                file: file.to_string(),
                line: arg.line,
                col: arg.col,
                message: format!(
                    "metric name {name:?} is not in the DESIGN.md §7 counter catalogue: add it \
                     there (names drift silently otherwise) or justify with \
                     `// lint:allow(counter-name): …`"
                ),
            });
        }
    }
}

/// L006 — `.wait(` / `.wait_timeout(` outside a `loop`/`while`/`for`
/// body. `wait_while` is self-guarding and exempt.
fn rule_l006_condvar(file: &str, analysis: &FileAnalysis, out: &mut Vec<Diagnostic>) {
    let tokens = &analysis.lexed.tokens;
    for i in 0..tokens.len() {
        if analysis.in_test[i] || tokens[i].kind != TokenKind::Ident {
            continue;
        }
        let token = &tokens[i];
        if (token.text == "wait" || token.text == "wait_timeout")
            && i > 0
            && tokens[i - 1].text == "."
            && tokens.get(i + 1).is_some_and(|t| t.text == "(")
            && !analysis.in_loop[i]
            && !analysis.allowed(token.line, "condvar-loop")
        {
            out.push(Diagnostic {
                rule: Rule::L006,
                file: file.to_string(),
                line: token.line,
                col: token.col,
                message: format!(
                    "`.{}()` outside a loop: condvar waits return spuriously; re-check the \
                     predicate in a `while`/`loop`, or justify with \
                     `// lint:allow(condvar-loop): <what loops for you>`",
                    token.text
                ),
            });
        }
    }
}

/// L010 — a discarded result in library code: `let _ = call(…);` or a
/// statement-position `.ok();`. The persist write-through path must never
/// drop an I/O error silently; genuinely best-effort discards carry a
/// `// lint:allow(swallowed-result): …` justification instead.
///
/// Two shapes keep the rule high-signal:
/// * `let _ = RHS;` only fires when the RHS contains a call (`(` present) —
///   `let _ = case;` silences an unused binding, not a Result.
/// * `.ok();` only fires in statement position — `let hex = ….ok();` binds
///   the Option and `….ok()?;`/match arms never end in `();`.
fn rule_l010_swallowed_result(file: &str, analysis: &FileAnalysis, out: &mut Vec<Diagnostic>) {
    let tokens = &analysis.lexed.tokens;
    for i in 0..tokens.len() {
        if analysis.in_test[i] {
            continue;
        }
        // `let` `_` `=` … `;` with a call somewhere in the RHS.
        if tokens[i].text == "let"
            && tokens[i].kind == TokenKind::Ident
            && tokens.get(i + 1).is_some_and(|t| t.text == "_")
            && tokens.get(i + 2).is_some_and(|t| t.text == "=")
        {
            let mut depth = 0i32;
            let mut has_call = false;
            for t in &tokens[i + 3..] {
                match t.text.as_str() {
                    "(" => {
                        depth += 1;
                        has_call = true;
                    }
                    "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth <= 0 => break,
                    _ => {}
                }
            }
            if has_call && !analysis.allowed(tokens[i].line, "swallowed-result") {
                out.push(Diagnostic {
                    rule: Rule::L010,
                    file: file.to_string(),
                    line: tokens[i].line,
                    col: tokens[i].col,
                    message: "`let _ = …` discards a call result in library code: handle or \
                              report the error, or justify with \
                              `// lint:allow(swallowed-result): …`"
                        .to_string(),
                });
            }
        }
        // Statement-position `.ok();`.
        if tokens[i].text == "ok"
            && tokens[i].kind == TokenKind::Ident
            && i > 0
            && tokens[i - 1].text == "."
            && tokens.get(i + 1).is_some_and(|t| t.text == "(")
            && tokens.get(i + 2).is_some_and(|t| t.text == ")")
            && tokens.get(i + 3).is_some_and(|t| t.text == ";")
        {
            // Walk back to the statement start; a `let`, `=`, or `return`
            // on the way means the Option is consumed, not discarded.
            let mut consumed = false;
            for t in tokens[..i].iter().rev() {
                match t.text.as_str() {
                    ";" | "{" | "}" => break,
                    "let" | "=" | "return" => {
                        consumed = true;
                        break;
                    }
                    _ => {}
                }
            }
            if !consumed && !analysis.allowed(tokens[i].line, "swallowed-result") {
                out.push(Diagnostic {
                    rule: Rule::L010,
                    file: file.to_string(),
                    line: tokens[i].line,
                    col: tokens[i].col,
                    message: "statement-position `.ok();` swallows a Result in library code: \
                              handle or report the error, or justify with \
                              `// lint:allow(swallowed-result): …`"
                        .to_string(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        lint_source("test.rs", src, &FileOptions::default())
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<Rule> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn l001_flags_hash_iteration_and_respects_sinks() {
        let src = "
            use std::collections::HashMap;
            fn f() {
                let mut counts: HashMap<u32, usize> = HashMap::new();
                for (k, v) in &counts { emit(k, v); }
                let total: usize = counts.values().sum();
                let listed: Vec<_> = counts.keys().collect();
            }
        ";
        let diags = run(src);
        assert_eq!(rules_of(&diags), vec![Rule::L001, Rule::L001], "{diags:?}");
        assert_eq!(diags[0].line, 5, "for loop flagged");
        assert_eq!(diags[1].line, 7, "unsorted collect flagged; .sum() exempt");
    }

    #[test]
    fn l001_allow_comment_suppresses() {
        let src = "
            fn f(counts: std::collections::HashMap<u32, u32>) {
                // lint:allow(hash-order): sums are commutative
                for v in &counts { s += v; }
            }
        ";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn l002_flags_panics_and_literal_indexing() {
        let src = "
            fn f(v: &[u8]) -> u8 {
                let x = maybe().unwrap();
                let y = maybe().expect(\"present\");
                if v.is_empty() { panic!(\"empty\"); }
                v[0]
            }
        ";
        let diags = run(src);
        assert_eq!(rules_of(&diags), vec![Rule::L002; 4], "{diags:?}");
        assert!(diags[3].message.contains("v[0]"));
    }

    #[test]
    fn l002_skips_test_code_and_unwrap_or() {
        let src = "
            fn f() -> u32 { maybe().unwrap_or(2) }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { super::f(); maybe().unwrap(); }
            }
        ";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn l003_requires_safety_comment() {
        let bad = "fn f() { unsafe { do_it(); } }";
        let good = "fn f() {\n    // SAFETY: the handler only touches a static atomic.\n    unsafe { do_it(); }\n}";
        assert_eq!(rules_of(&run(bad)), vec![Rule::L003]);
        assert!(run(good).is_empty());
    }

    #[test]
    fn l003_applies_even_in_test_code() {
        let src = "#[cfg(test)] mod tests { fn t() { unsafe { x(); } } }";
        assert_eq!(rules_of(&run(src)), vec![Rule::L003]);
    }

    #[test]
    fn l004_flags_clocks_unless_allowlisted() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(rules_of(&run(src)), vec![Rule::L004]);
        let options = FileOptions { clock_allowed: true, ..FileOptions::default() };
        assert!(lint_source("test.rs", src, &options).is_empty());
    }

    #[test]
    fn l007_flags_clocks_in_bench_scenarios_even_when_clock_allowed() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        let options =
            FileOptions { clock_allowed: true, bench_scenario: true, ..FileOptions::default() };
        let diags = lint_source("crates/bench/src/scenarios.rs", src, &options);
        assert_eq!(rules_of(&diags), vec![Rule::L007], "{diags:?}");
        assert!(diags[0].message.contains("muds-obs timing APIs"));
        // An allow comment with the bench-clock key excuses the site.
        let excused = "fn f() {\n    // lint:allow(bench-clock): only labels the output file\n    let t = std::time::Instant::now();\n}";
        assert!(lint_source("crates/bench/src/scenarios.rs", excused, &options).is_empty());
        // Outside scenario files the same source only answers to L004.
        let plain = FileOptions::default();
        assert_eq!(rules_of(&lint_source("x.rs", src, &plain)), vec![Rule::L004]);
    }

    #[test]
    fn l005_checks_names_against_catalogue() {
        let src = "fn f() { muds_obs::add(\"pli.requests\", 1); muds_obs::add(\"pli.bogus\", 1); }";
        let options = FileOptions {
            catalogue: Some(["pli.requests".to_string()].into_iter().collect()),
            ..FileOptions::default()
        };
        let diags = lint_source("test.rs", src, &options);
        assert_eq!(rules_of(&diags), vec![Rule::L005], "{diags:?}");
        assert!(diags[0].message.contains("pli.bogus"));
    }

    #[test]
    fn l006_wants_a_loop_around_waits() {
        let bad = "fn f(cv: &Condvar, g: Guard) { let g = cv.wait(g).unwrap_or_else(|p| p.into_inner()); }";
        let good = "fn f(cv: &Condvar, mut g: Guard) { while !*g { g = cv.wait(g).unwrap_or_else(|p| p.into_inner()); } }";
        assert_eq!(rules_of(&run(bad)), vec![Rule::L006]);
        assert!(run(good).is_empty(), "{:?}", run(good));
    }

    #[test]
    fn l000_reports_malformed_allows() {
        let missing = "// lint:allow(hash-order)\nfn f() {}";
        let unknown = "// lint:allow(whatever): because\nfn f() {}";
        assert_eq!(rules_of(&run(missing)), vec![Rule::L000]);
        assert_eq!(rules_of(&run(unknown)), vec![Rule::L000]);
    }

    #[test]
    fn l010_flags_discarded_results() {
        let bad = "
            fn f(w: &mut W) {
                let _ = w.write(b\"x\");
                w.send().ok();
            }
        ";
        let diags = run(bad);
        assert_eq!(rules_of(&diags), vec![Rule::L010, Rule::L010], "{diags:?}");
        assert_eq!((diags[0].line, diags[1].line), (3, 4));
    }

    #[test]
    fn l010_skips_bindings_returns_and_non_calls() {
        let good = "
            fn f(w: &mut W) -> Option<u32> {
                let _ = unused_variable;
                let value = w.parse().ok();
                if let Some(v) = w.peek().ok() { use_it(v); }
                return w.count().ok();
            }
        ";
        assert!(run(good).is_empty(), "{:?}", run(good));
    }

    #[test]
    fn l010_respects_allow_and_test_and_binary_context() {
        let allowed = "
            fn f(w: &mut W) {
                // lint:allow(swallowed-result): best-effort trace write
                let _ = w.write(b\"x\");
            }
        ";
        assert!(run(allowed).is_empty(), "{:?}", run(allowed));
        let in_test = "#[cfg(test)] mod tests { fn t(w: &mut W) { let _ = w.write(b\"x\"); } }";
        assert!(run(in_test).is_empty(), "{:?}", run(in_test));
        // Binaries (panic_allowed contexts) report errors by exiting; the
        // discard rule is library-code hygiene like L002.
        let options = FileOptions { panic_allowed: true, ..FileOptions::default() };
        let diags =
            lint_source("src/main.rs", "fn f(w: &mut W) { let _ = w.write(b\"x\"); }", &options);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn strings_and_comments_never_fire_rules() {
        let src = "
            fn f() -> String {
                // calling .unwrap() here would panic!
                format!(\"docs say .unwrap() and panic! and unsafe\")
            }
        ";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn diagnostics_render_with_spans() {
        let diags = run("fn f() { x.unwrap(); }");
        assert_eq!(diags[0].render(), "test.rs:1:12: L002 [panic-in-library] `.unwrap()` can panic: return a typed error instead (or justify with `// lint:allow(panic): <why this cannot fire>`)");
    }
}
