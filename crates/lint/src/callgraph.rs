//! Workspace call graph and the flow-aware rules built on it:
//! L008 (lock-order cycles) and L009 (blocking in the reactor).
//!
//! Call resolution is conservative by name + arity: a call site targets
//! every workspace function with the same name and parameter count,
//! narrowed by receiver/qualifier type only when the type resolves — a
//! `self.epoll.wait(…)` whose receiver is a known `Epoll` field never
//! aliases a condvar, but an unresolved receiver keeps every candidate.
//! Missing an edge hides a deadlock; a spurious edge costs one review,
//! so ties break toward more edges.
//!
//! Lock identity is `Owner.field`: `lock(&self.shared.queue)` inside
//! `impl Reactor` resolves through the struct-field type map
//! (`Reactor.shared: Arc<HandlerShared>`) to `HandlerShared.queue`.
//! Acquisitions whose identity cannot be resolved to a struct field (a
//! local `Mutex`, a generic helper parameter) are skipped: an unnamed
//! lock cannot participate in a reportable order.

use crate::parser::{Event, Function, ParsedFile};
use crate::rules::{Diagnostic, Rule};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Knobs for the semantic pass.
#[derive(Debug, Clone)]
pub struct SemanticOptions {
    /// Files (path suffixes) holding reactor event-loop code.
    pub reactor_files: Vec<String>,
    /// Function names in those files that are event-loop roots.
    pub reactor_roots: Vec<String>,
}

impl Default for SemanticOptions {
    fn default() -> Self {
        SemanticOptions {
            reactor_files: vec!["reactor.rs".to_string()],
            reactor_roots: vec!["run".to_string(), "serve".to_string()],
        }
    }
}

/// Output of the semantic pass.
#[derive(Debug, Default)]
pub struct SemanticReport {
    /// L008/L009 findings, sorted by (file, line, col).
    pub diagnostics: Vec<Diagnostic>,
    /// The full lock-acquisition graph in Graphviz DOT form.
    pub lock_graph_dot: String,
}

/// Method names that block the calling thread outright.
const BLOCKING_METHODS: [&str; 8] = [
    "write_all",
    "flush",
    "read_to_end",
    "read_to_string",
    "read_exact",
    "sync_all",
    "sync_data",
    "copy_to",
];

/// Free functions (typically `use std::fs::…`) that hit the filesystem.
const BLOCKING_FREE: [&str; 7] = [
    "create_dir_all",
    "remove_file",
    "remove_dir_all",
    "read_dir",
    "rename",
    "canonicalize",
    "sleep",
];

/// `File::…` / `OpenOptions::…` constructors that open file descriptors.
const BLOCKING_FILE_FNS: [&str; 4] = ["open", "create", "create_new", "options"];

struct FnNode<'a> {
    file: &'a str,
    func: &'a Function,
    /// `Type::name` or `name` — for witness paths.
    display: String,
}

/// One lock-acquisition site.
#[derive(Debug, Clone)]
struct LockSite {
    lock: String,
    line: usize,
    col: usize,
}

/// One direct blocking operation and the locks held across it.
#[derive(Debug, Clone)]
struct BlockingSite {
    what: String,
    held: Vec<String>,
    line: usize,
    col: usize,
}

/// One call site with the locks held when it happens.
#[derive(Debug, Clone)]
struct CallSite {
    targets: Vec<usize>,
    held: Vec<String>,
    in_spawn: bool,
    line: usize,
}

/// Per-function facts from the local guard-scope simulation.
#[derive(Debug, Default)]
struct LocalInfo {
    acquires: BTreeSet<String>,
    lock_sites: Vec<LockSite>,
    /// `(held, acquired, line)` — `acquired` taken while `held` was held.
    edges: Vec<(String, String, usize)>,
    blocking: Vec<BlockingSite>,
    calls: Vec<CallSite>,
}

/// Runs the semantic rules over every parsed file.
pub fn analyze(files: &[ParsedFile], opts: &SemanticOptions) -> SemanticReport {
    // Merged struct-field type map (struct names are workspace-unique for
    // every lock-owning type; a collision merges fields, which can only
    // widen the graph).
    let mut structs: BTreeMap<&str, &BTreeMap<String, String>> = BTreeMap::new();
    let mut merged: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
    for file in files {
        for (name, fields) in &file.structs {
            merged.entry(name.clone()).or_default().extend(fields.clone());
        }
    }
    for (name, fields) in &merged {
        structs.insert(name.as_str(), fields);
    }

    let mut fns: Vec<FnNode<'_>> = Vec::new();
    for file in files {
        for func in &file.functions {
            let display = match &func.impl_type {
                Some(t) => format!("{t}::{}", func.name),
                None => func.name.clone(),
            };
            fns.push(FnNode { file: &file.path, func, display });
        }
    }
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, node) in fns.iter().enumerate() {
        by_name.entry(node.func.name.as_str()).or_default().push(i);
    }

    let locals: Vec<LocalInfo> =
        fns.iter().map(|node| simulate(node, &fns, &by_name, &structs)).collect();

    let mut report = SemanticReport::default();
    let lock_graph = build_lock_graph(&fns, &locals);
    report.lock_graph_dot = render_dot(&lock_graph);
    rule_l008_cycles(&lock_graph, &mut report.diagnostics);
    rule_l009_reactor(&fns, &locals, opts, &mut report.diagnostics);
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    report.diagnostics.dedup();
    report
}

// ---------------------------------------------------------------------------
// Type and lock resolution
// ---------------------------------------------------------------------------

/// The base type named by a declared-type string (`"Arc < HandlerShared >"`
/// ⇒ `HandlerShared`): strips references, lifetimes, and the transparent
/// wrappers `Arc`/`Rc`/`Box`, then takes the last path segment.
fn base_type(ty: &str) -> Option<String> {
    let toks: Vec<&str> = ty.split_whitespace().collect();
    base_type_toks(&toks)
}

fn base_type_toks(toks: &[&str]) -> Option<String> {
    let mut j = 0usize;
    while j < toks.len()
        && (matches!(toks[j], "&" | "mut" | "dyn" | "impl") || toks[j].starts_with('\''))
    {
        j += 1;
    }
    let mut name: Option<&str> = None;
    while j < toks.len() {
        match toks[j] {
            ":" => j += 1,
            "<" => break,
            t if t.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_') => {
                name = Some(t);
                j += 1;
            }
            _ => break,
        }
    }
    let name = name?;
    if matches!(name, "Arc" | "Rc" | "Box") && toks.get(j) == Some(&"<") {
        let start = j + 1;
        let mut depth = 0i32;
        let mut k = j;
        while k < toks.len() {
            match toks[k] {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        return base_type_toks(&toks[start..k.min(toks.len())]);
    }
    Some(name.to_string())
}

/// Walks a dotted path (`self.shared.queue`) through the struct-field map.
/// Returns `(owner_of_last_field, field, base_type_of_field)`.
fn resolve_path(
    expr: &str,
    func: &Function,
    structs: &BTreeMap<&str, &BTreeMap<String, String>>,
) -> Option<(String, String, String)> {
    let segments: Vec<&str> = expr.split('.').filter(|s| !s.is_empty()).collect();
    let (&head, rest) = segments.split_first()?;
    if rest.is_empty() {
        return None;
    }
    let mut current =
        if head == "self" { func.impl_type.clone()? } else { base_type(func.params.get(head)?)? };
    let mut result = None;
    for seg in rest {
        let fields = structs.get(current.as_str())?;
        let ty = fields.get(*seg)?;
        let base = base_type(ty)?;
        result = Some((current.clone(), seg.to_string(), base.clone()));
        current = base;
    }
    result
}

/// The lock identity (`Owner.field`) of an acquisition expression, or
/// `None` when it does not resolve to a known struct field.
fn resolve_lock(
    expr: &str,
    func: &Function,
    structs: &BTreeMap<&str, &BTreeMap<String, String>>,
) -> Option<String> {
    let (owner, field, _) = resolve_path(expr, func, structs)?;
    Some(format!("{owner}.{field}"))
}

/// The base type a dotted receiver resolves to (`self.epoll` ⇒ `Epoll`),
/// or the impl type for a bare `self`.
fn resolve_recv_type(
    expr: &str,
    func: &Function,
    structs: &BTreeMap<&str, &BTreeMap<String, String>>,
) -> Option<String> {
    if expr == "self" {
        return func.impl_type.clone();
    }
    if !expr.contains('.') {
        return base_type(func.params.get(expr)?);
    }
    resolve_path(expr, func, structs).map(|(_, _, base)| base)
}

// ---------------------------------------------------------------------------
// Local simulation
// ---------------------------------------------------------------------------

struct Guard {
    lock: String,
    binding: Option<String>,
    depth: usize,
}

fn held_locks(guards: &[Guard]) -> Vec<String> {
    guards.iter().map(|g| g.lock.clone()).collect()
}

/// Simulates one function body: guard scopes, lock-order edges, direct
/// blocking operations, and resolved call targets.
fn simulate(
    node: &FnNode<'_>,
    fns: &[FnNode<'_>],
    by_name: &BTreeMap<&str, Vec<usize>>,
    structs: &BTreeMap<&str, &BTreeMap<String, String>>,
) -> LocalInfo {
    let func = node.func;
    let mut info = LocalInfo::default();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;

    for event in &func.body {
        match event {
            Event::Open => depth += 1,
            Event::Close => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            Event::Acquire { expr, binding, line, col } => {
                let Some(lock) = resolve_lock(expr, func, structs) else { continue };
                for g in &guards {
                    info.edges.push((g.lock.clone(), lock.clone(), *line));
                }
                info.acquires.insert(lock.clone());
                info.lock_sites.push(LockSite { lock: lock.clone(), line: *line, col: *col });
                if binding.is_some() {
                    guards.push(Guard { lock, binding: binding.clone(), depth });
                }
            }
            Event::Wait { guard, line, col } => {
                // A wait that takes an active guard releases that lock for
                // its duration; every *other* held lock stays held across a
                // blocking wait.
                let released: Option<String> = guards
                    .iter()
                    .find(|g| g.binding.as_deref() == Some(guard.as_str()))
                    .map(|g| g.lock.clone());
                let held: Vec<String> = guards
                    .iter()
                    .filter(|g| Some(&g.lock) != released.as_ref())
                    .map(|g| g.lock.clone())
                    .collect();
                info.blocking.push(BlockingSite {
                    what: "a condvar wait".to_string(),
                    held,
                    line: *line,
                    col: *col,
                });
            }
            Event::DropGuard { binding } => {
                if let Some(pos) =
                    guards.iter().rposition(|g| g.binding.as_deref() == Some(binding.as_str()))
                {
                    guards.remove(pos);
                }
            }
            Event::Call { name, qualifier, recv, method, arity, in_spawn, line, col } => {
                let recv_type = recv.as_deref().and_then(|r| resolve_recv_type(r, func, structs));
                // A blocking call inside a `spawn` closure runs on the
                // spawned thread, not this function's — it is never a
                // blocking site of the enclosing function.
                if !*in_spawn {
                    if let Some(what) = blocking_leaf(
                        name,
                        qualifier.as_deref(),
                        recv_type.as_deref(),
                        *method,
                        *arity,
                    ) {
                        info.blocking.push(BlockingSite {
                            what,
                            held: held_locks(&guards),
                            line: *line,
                            col: *col,
                        });
                        continue;
                    }
                }
                let targets = resolve_call(
                    name,
                    qualifier.as_deref(),
                    recv_type.as_deref(),
                    *method,
                    *arity,
                    node,
                    fns,
                    by_name,
                );
                if !targets.is_empty() {
                    info.calls.push(CallSite {
                        targets,
                        held: held_locks(&guards),
                        in_spawn: *in_spawn,
                        line: *line,
                    });
                }
            }
        }
    }
    info
}

/// Classifies a call as a direct blocking leaf, returning a description.
fn blocking_leaf(
    name: &str,
    qualifier: Option<&str>,
    recv_type: Option<&str>,
    method: bool,
    arity: usize,
) -> Option<String> {
    if method && BLOCKING_METHODS.contains(&name) {
        return Some(format!("`.{name}()`"));
    }
    if method && name == "join" && arity == 0 {
        return Some("`.join()` on a thread handle".to_string());
    }
    if method && (name == "wait" || name == "wait_timeout") {
        // `Epoll::wait` IS the reactor's event wait; anything else that
        // blocks by this name (condvar with a non-guard first argument,
        // a barrier) counts.
        if recv_type == Some("Epoll") {
            return None;
        }
        return Some(format!("`.{name}()`"));
    }
    if !method && qualifier == Some("fs") {
        return Some(format!("`fs::{name}`"));
    }
    if !method
        && matches!(qualifier, Some("File") | Some("OpenOptions"))
        && BLOCKING_FILE_FNS.contains(&name)
    {
        return Some(format!("`{}::{name}`", qualifier.unwrap_or_default()));
    }
    if !method && BLOCKING_FREE.contains(&name) {
        return Some(format!("`{name}(…)`"));
    }
    None
}

/// Conservative name+arity call resolution, narrowed by type only when
/// the receiver or qualifier type is known.
#[allow(clippy::too_many_arguments)]
fn resolve_call(
    name: &str,
    qualifier: Option<&str>,
    recv_type: Option<&str>,
    method: bool,
    arity: usize,
    caller: &FnNode<'_>,
    fns: &[FnNode<'_>],
    by_name: &BTreeMap<&str, Vec<usize>>,
) -> Vec<usize> {
    let Some(candidates) = by_name.get(name) else { return Vec::new() };
    let matching: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&i| fns[i].func.arity == arity && fns[i].func.has_self == method)
        .collect();
    if matching.is_empty() {
        return matching;
    }
    if let Some(q) = qualifier {
        if q.chars().next().is_some_and(char::is_uppercase) {
            // `Type::fn(…)`: a known type qualifier must match the impl
            // type — `Response::error` never targets another impl.
            return matching
                .into_iter()
                .filter(|&i| fns[i].func.impl_type.as_deref() == Some(q))
                .collect();
        }
        // Module-qualified free call: candidates are already free fns.
        return matching;
    }
    if method {
        if let Some(ty) = recv_type {
            // The receiver type is known: only its own impl qualifies. A
            // known foreign/std type (no workspace impl) resolves to no
            // one — the call is a leaf.
            return matching
                .into_iter()
                .filter(|&i| fns[i].func.impl_type.as_deref() == Some(ty))
                .collect();
        }
        // Unresolved receiver on a method the caller's own impl defines:
        // overwhelmingly a `self.helper(…)` pattern.
        let own: Vec<usize> = matching
            .iter()
            .copied()
            .filter(|&i| {
                caller.func.impl_type.is_some()
                    && fns[i].func.impl_type == caller.func.impl_type
                    && fns[i].file == caller.file
            })
            .collect();
        if !own.is_empty() {
            return own;
        }
    }
    matching
}

// ---------------------------------------------------------------------------
// Closures over the call graph
// ---------------------------------------------------------------------------

/// Transitive lock acquisitions per function (spawn boundaries excluded —
/// a child thread's locks are not held on this thread).
fn locks_closure(fns: &[FnNode<'_>], locals: &[LocalInfo]) -> Vec<BTreeSet<String>> {
    let mut result: Vec<BTreeSet<String>> = locals.iter().map(|l| l.acquires.clone()).collect();
    // Fixpoint: the graph is small (hundreds of nodes) and lock sets are
    // tiny, so a few sweeps settle it — no SCC machinery needed.
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            let mut additions: Vec<String> = Vec::new();
            for call in &locals[i].calls {
                if call.in_spawn {
                    continue;
                }
                for &t in &call.targets {
                    for lock in &result[t] {
                        if !result[i].contains(lock) {
                            additions.push(lock.clone());
                        }
                    }
                }
            }
            for lock in additions {
                changed |= result[i].insert(lock);
            }
        }
        if !changed {
            return result;
        }
    }
}

/// Does this function transitively perform a direct blocking op (spawn
/// boundaries excluded)? Returns a description for witness messages.
fn blocking_closure(fns: &[FnNode<'_>], locals: &[LocalInfo]) -> Vec<Option<String>> {
    let mut result: Vec<Option<String>> =
        locals.iter().map(|l| l.blocking.first().map(|b| b.what.clone())).collect();
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            if result[i].is_some() {
                continue;
            }
            for call in &locals[i].calls {
                if call.in_spawn {
                    continue;
                }
                if let Some(&t) = call.targets.iter().find(|&&t| result[t].is_some()) {
                    let inner = result[t].clone().unwrap_or_default();
                    result[i] = Some(format!("{inner} (via `{}`)", fns[t].display));
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            return result;
        }
    }
}

// ---------------------------------------------------------------------------
// L008 — lock-order cycles
// ---------------------------------------------------------------------------

fn build_lock_graph(
    fns: &[FnNode<'_>],
    locals: &[LocalInfo],
) -> BTreeMap<(String, String), String> {
    let closure = locks_closure(fns, locals);
    let mut edges: BTreeMap<(String, String), String> = BTreeMap::new();
    for (i, local) in locals.iter().enumerate() {
        for (from, to, line) in &local.edges {
            edges.entry((from.clone(), to.clone())).or_insert_with(|| {
                format!(
                    "`{}` acquires {to} while holding {from} ({}:{line})",
                    fns[i].display, fns[i].file
                )
            });
        }
        for call in &local.calls {
            if call.in_spawn || call.held.is_empty() {
                continue;
            }
            for &t in &call.targets {
                for to in &closure[t] {
                    for from in &call.held {
                        edges.entry((from.clone(), to.clone())).or_insert_with(|| {
                            format!(
                                "`{}` calls `{}` ({}:{}) which acquires {to} while {from} is held",
                                fns[i].display, fns[t].display, fns[i].file, call.line
                            )
                        });
                    }
                }
            }
        }
    }
    edges
}

fn render_dot(edges: &BTreeMap<(String, String), String>) -> String {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (from, to) in edges.keys() {
        nodes.insert(from);
        nodes.insert(to);
    }
    let mut out = String::from("digraph lock_order {\n");
    for node in nodes {
        out.push_str(&format!("    \"{node}\";\n"));
    }
    for ((from, to), witness) in edges {
        let label = witness.split(" (").next().unwrap_or(witness).replace('`', "");
        out.push_str(&format!("    \"{from}\" -> \"{to}\" [label=\"{label}\"];\n"));
    }
    out.push_str("}\n");
    out
}

fn rule_l008_cycles(edges: &BTreeMap<(String, String), String>, out: &mut Vec<Diagnostic>) {
    // Adjacency over lock ids; DFS with an explicit path for cycle
    // extraction. Each distinct cycle (canonicalized by rotation to its
    // smallest node) is reported once.
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut path: Vec<&str> = vec![start];
        let mut stack: Vec<std::vec::IntoIter<&str>> =
            vec![adj.get(start).cloned().unwrap_or_default().into_iter()];
        while let Some(iter) = stack.last_mut() {
            match iter.next() {
                Some(next) => {
                    if let Some(pos) = path.iter().position(|&n| n == next) {
                        let cycle: Vec<String> =
                            path[pos..].iter().map(|s| s.to_string()).collect();
                        let canonical = canonicalize_cycle(&cycle);
                        if seen_cycles.insert(canonical) {
                            report_cycle(&cycle, edges, out);
                        }
                        continue;
                    }
                    if path.len() > 32 {
                        continue; // runaway guard; workspace graphs are tiny
                    }
                    path.push(next);
                    stack.push(adj.get(next).cloned().unwrap_or_default().into_iter());
                }
                None => {
                    stack.pop();
                    path.pop();
                }
            }
        }
    }
}

fn canonicalize_cycle(cycle: &[String]) -> Vec<String> {
    let min_pos =
        cycle.iter().enumerate().min_by_key(|(_, s)| s.as_str()).map(|(i, _)| i).unwrap_or(0);
    cycle[min_pos..].iter().chain(cycle[..min_pos].iter()).cloned().collect()
}

fn report_cycle(
    cycle: &[String],
    edges: &BTreeMap<(String, String), String>,
    out: &mut Vec<Diagnostic>,
) {
    let canonical = canonicalize_cycle(cycle);
    let mut steps: Vec<String> = Vec::new();
    let mut first_site: Option<(String, usize)> = None;
    for i in 0..canonical.len() {
        let from = &canonical[i];
        let to = &canonical[(i + 1) % canonical.len()];
        if let Some(witness) = edges.get(&(from.clone(), to.clone())) {
            steps.push(witness.clone());
            if first_site.is_none() {
                first_site = parse_witness_site(witness);
            }
        }
    }
    let ring: Vec<&str> = canonical.iter().map(String::as_str).collect();
    let Some(&ring_head) = ring.first() else { return };
    let (file, line) = first_site.unwrap_or_else(|| ("<workspace>".to_string(), 1));
    out.push(Diagnostic {
        rule: Rule::L008,
        file,
        line,
        col: 1,
        message: format!(
            "lock-order cycle {} -> {}: two paths acquire these locks in opposite orders and \
             can deadlock. Witness: {}. Fix the acquisition order or narrow a guard scope; \
             justify a benign cycle with `// lint:allow(lock-order): …`",
            ring.join(" -> "),
            ring_head,
            steps.join("; ")
        ),
    });
}

/// Extracts `(file, line)` from a witness string's trailing `(file:line)`.
fn parse_witness_site(witness: &str) -> Option<(String, usize)> {
    let open = witness.rfind('(')?;
    let inner = witness[open + 1..].trim_end_matches(')');
    let colon = inner.rfind(':')?;
    let line = inner[colon + 1..].parse().ok()?;
    Some((inner[..colon].to_string(), line))
}

// ---------------------------------------------------------------------------
// L009 — blocking in the reactor
// ---------------------------------------------------------------------------

fn rule_l009_reactor(
    fns: &[FnNode<'_>],
    locals: &[LocalInfo],
    opts: &SemanticOptions,
    out: &mut Vec<Diagnostic>,
) {
    let roots: Vec<usize> = fns
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            opts.reactor_files.iter().any(|suffix| n.file.ends_with(suffix.as_str()))
                && opts.reactor_roots.contains(&n.func.name)
        })
        .map(|(i, _)| i)
        .collect();
    if roots.is_empty() {
        return;
    }

    // Hot locks: held across a blocking op somewhere in the workspace
    // (same-guard condvar waits excluded by the simulation). Acquiring one
    // on the reactor thread can stall behind that blocking holder.
    let block_cl = blocking_closure(fns, locals);
    let mut hot: BTreeMap<String, String> = BTreeMap::new();
    for (i, local) in locals.iter().enumerate() {
        for site in &local.blocking {
            for lock in &site.held {
                hot.entry(lock.clone()).or_insert_with(|| {
                    format!(
                        "`{}` holds it across {} ({}:{})",
                        fns[i].display, site.what, fns[i].file, site.line
                    )
                });
            }
        }
        for call in &local.calls {
            if call.in_spawn || call.held.is_empty() {
                continue;
            }
            for &t in &call.targets {
                if let Some(what) = &block_cl[t] {
                    for lock in &call.held {
                        hot.entry(lock.clone()).or_insert_with(|| {
                            format!(
                                "`{}` holds it while calling `{}`, which performs {what} \
                                 ({}:{})",
                                fns[i].display, fns[t].display, fns[i].file, call.line
                            )
                        });
                    }
                }
            }
        }
    }

    // BFS from the roots over same-thread call edges, with parents for
    // witness paths.
    let mut parent: Vec<Option<usize>> = vec![None; fns.len()];
    let mut visited: Vec<bool> = vec![false; fns.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &r in &roots {
        visited[r] = true;
        queue.push_back(r);
    }
    let mut order: Vec<usize> = Vec::new();
    while let Some(i) = queue.pop_front() {
        order.push(i);
        for call in &locals[i].calls {
            if call.in_spawn {
                continue;
            }
            for &t in &call.targets {
                if !visited[t] {
                    visited[t] = true;
                    parent[t] = Some(i);
                    queue.push_back(t);
                }
            }
        }
    }

    let path_to = |i: usize| -> String {
        let mut chain: Vec<&str> = Vec::new();
        let mut cur = Some(i);
        while let Some(c) = cur {
            chain.push(&fns[c].display);
            cur = parent[c];
        }
        chain.reverse();
        chain.join("` -> `")
    };

    for &i in &order {
        for site in &locals[i].blocking {
            out.push(Diagnostic {
                rule: Rule::L009,
                file: fns[i].file.to_string(),
                line: site.line,
                col: site.col,
                message: format!(
                    "{} is reachable from the reactor event loop (`{}`): one blocking call \
                     stalls every connection; move it behind the handler pool or justify with \
                     `// lint:allow(blocking-reactor): …`",
                    site.what,
                    path_to(i)
                ),
            });
        }
        for site in &locals[i].lock_sites {
            if let Some(why) = hot.get(&site.lock) {
                out.push(Diagnostic {
                    rule: Rule::L009,
                    file: fns[i].file.to_string(),
                    line: site.line,
                    col: site.col,
                    message: format!(
                        "the reactor event loop (`{}`) acquires {}, which is hot: {}; a blocked \
                         holder stalls every connection. Shorten the holder's critical section \
                         or justify with `// lint:allow(blocking-reactor): …`",
                        path_to(i),
                        site.lock,
                        why
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn analyze_sources(sources: &[(&str, &str)]) -> SemanticReport {
        let files: Vec<ParsedFile> =
            sources.iter().map(|(path, src)| parse_file(path, src)).collect();
        analyze(&files, &SemanticOptions::default())
    }

    #[test]
    fn base_types_unwrap_smart_pointers() {
        assert_eq!(base_type("Arc < HandlerShared >").as_deref(), Some("HandlerShared"));
        assert_eq!(base_type("& mut Vec < u8 >").as_deref(), Some("Vec"));
        assert_eq!(base_type("Mutex < VecDeque < Job > >").as_deref(), Some("Mutex"));
        assert_eq!(base_type("std : : sync : : Arc < Shared >").as_deref(), Some("Shared"));
    }

    #[test]
    fn two_lock_inversion_is_a_cycle_with_witness() {
        let src = "\
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn forward(&self) {
        let ga = lock(&self.a);
        let gb = lock(&self.b);
        drop(gb);
        drop(ga);
    }
    fn backward(&self) {
        let gb = lock(&self.b);
        let ga = lock(&self.a);
        drop(ga);
        drop(gb);
    }
}
";
        let report = analyze_sources(&[("src/locks.rs", src)]);
        let cycles: Vec<&Diagnostic> =
            report.diagnostics.iter().filter(|d| d.rule == Rule::L008).collect();
        assert_eq!(cycles.len(), 1, "{:?}", report.diagnostics);
        assert!(cycles[0].message.contains("S.a -> S.b -> S.a"), "{}", cycles[0].message);
        assert!(cycles[0].message.contains("S::forward"), "{}", cycles[0].message);
        assert!(cycles[0].message.contains("S::backward"), "{}", cycles[0].message);
    }

    #[test]
    fn consistent_order_is_clean_and_graphed() {
        let src = "\
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn one(&self) { let ga = lock(&self.a); let gb = lock(&self.b); drop(gb); drop(ga); }
    fn two(&self) { let ga = lock(&self.a); let gb = lock(&self.b); drop(gb); drop(ga); }
}
";
        let report = analyze_sources(&[("src/locks.rs", src)]);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        assert!(report.lock_graph_dot.contains("\"S.a\" -> \"S.b\""));
    }

    #[test]
    fn interprocedural_inversion_crosses_files() {
        let a = "\
struct Registry { inner: Mutex<u32> }
impl Registry {
    fn update(&self, cache: &Cache) {
        let g = lock(&self.inner);
        cache.store(1);
        drop(g);
    }
}
";
        let b = "\
struct Cache { map: Mutex<u32> }
impl Cache {
    fn store(&self, v: u32) { let g = lock(&self.map); drop(g); }
    fn evict(&self, reg: &Registry) {
        let g = lock(&self.map);
        reg.bump(v);
        drop(g);
    }
}
impl Registry {
    fn bump(&self, v: u32) { let g = lock(&self.inner); drop(g); }
}
";
        let report = analyze_sources(&[("src/registry.rs", a), ("src/cache.rs", b)]);
        let cycles: Vec<&Diagnostic> =
            report.diagnostics.iter().filter(|d| d.rule == Rule::L008).collect();
        assert_eq!(cycles.len(), 1, "{:?}", report.diagnostics);
        assert!(
            cycles[0].message.contains("Cache.map") && cycles[0].message.contains("Registry.inner"),
            "{}",
            cycles[0].message
        );
    }

    #[test]
    fn guard_scope_end_prevents_false_edges() {
        // The first guard dies with its block before the second lock.
        let src = "\
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn sequential(&self) {
        let v = { let ga = lock(&self.a); 1 };
        let gb = lock(&self.b);
        drop(gb);
    }
    fn reverse(&self) { let gb = lock(&self.b); let ga = lock(&self.a); drop(ga); drop(gb); }
}
";
        let report = analyze_sources(&[("src/locks.rs", src)]);
        assert!(
            report.diagnostics.iter().all(|d| d.rule != Rule::L008),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn reactor_reaching_file_io_is_flagged_with_path() {
        let reactor = "\
struct Reactor { state: u32 }
impl Reactor {
    fn serve(&mut self) {
        self.step();
    }
    fn step(&mut self) {
        persist_now(self.state);
    }
}
";
        let persist = "\
fn persist_now(v: u32) {
    fs::remove_file(path(v));
}
fn path(v: u32) -> u32 { v }
";
        let files: Vec<ParsedFile> = vec![
            parse_file("crates/serve/src/reactor.rs", reactor),
            parse_file("crates/serve/src/persist.rs", persist),
        ];
        let report = analyze(&files, &SemanticOptions::default());
        let l9: Vec<&Diagnostic> =
            report.diagnostics.iter().filter(|d| d.rule == Rule::L009).collect();
        assert_eq!(l9.len(), 1, "{:?}", report.diagnostics);
        assert_eq!(l9[0].file, "crates/serve/src/persist.rs");
        assert!(l9[0].message.contains("`fs::remove_file`"), "{}", l9[0].message);
        assert!(
            l9[0].message.contains("Reactor::serve` -> `Reactor::step` -> `persist_now"),
            "{}",
            l9[0].message
        );
    }

    #[test]
    fn spawned_closures_do_not_leak_into_the_reactor() {
        let reactor = "\
struct Reactor { state: u32 }
impl Reactor {
    fn serve(&mut self) {
        std::thread::Builder::new().spawn(move || worker(1)).unwrap();
    }
}
fn worker(v: u32) {
    fs::remove_file(v);
}
";
        let report = analyze_sources(&[("crates/serve/src/reactor.rs", reactor)]);
        // `worker` blocks, but only on its own thread.
        assert!(
            report.diagnostics.iter().all(|d| d.rule != Rule::L009),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn hot_lock_acquisition_in_reactor_is_flagged() {
        let src = "\
struct Shared { queue: Mutex<u32> }
struct Reactor { shared: Arc<Shared> }
impl Reactor {
    fn serve(&mut self) {
        let q = lock(&self.shared.queue);
        drop(q);
    }
}
struct Writer { shared: Arc<Shared> }
impl Writer {
    fn persist(&self, w: File) {
        let q = lock(&self.shared.queue);
        w.sync_all();
        drop(q);
    }
}
";
        let report = analyze_sources(&[("crates/serve/src/reactor.rs", src)]);
        let l9: Vec<&Diagnostic> =
            report.diagnostics.iter().filter(|d| d.rule == Rule::L009).collect();
        assert_eq!(l9.len(), 1, "{:?}", report.diagnostics);
        assert!(l9[0].message.contains("Shared.queue"), "{}", l9[0].message);
        assert!(l9[0].message.contains("Writer::persist"), "{}", l9[0].message);
    }

    #[test]
    fn short_critical_sections_keep_queue_lock_cold() {
        // The workspace idiom: reactor and handlers share a queue, but the
        // only waits are same-guard condvar waits — not hot.
        let src = "\
struct Shared { queue: Mutex<u32>, wake: Condvar }
struct Reactor { shared: Arc<Shared> }
impl Reactor {
    fn serve(&mut self) {
        let mut q = lock(&self.shared.queue);
        drop(q);
    }
}
fn handler_loop(shared: Arc<Shared>) {
    loop {
        let mut q = lock(&shared.queue);
        q = cond_wait(&shared.wake, q);
        drop(q);
    }
}
";
        let report = analyze_sources(&[("crates/serve/src/reactor.rs", src)]);
        assert!(
            report.diagnostics.iter().all(|d| d.rule != Rule::L009),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn epoll_wait_is_not_blocking() {
        let src = "\
struct Epoll { fd: i32 }
struct Reactor { epoll: Epoll }
impl Reactor {
    fn serve(&mut self) {
        self.epoll.wait(&mut events, 30);
    }
}
";
        let report = analyze_sources(&[("crates/serve/src/reactor.rs", src)]);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn dot_output_lists_nodes_and_edges() {
        let src = "\
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn f(&self) { let ga = lock(&self.a); let gb = lock(&self.b); drop(gb); drop(ga); }
}
";
        let report = analyze_sources(&[("src/l.rs", src)]);
        assert!(report.lock_graph_dot.starts_with("digraph lock_order {"));
        assert!(report.lock_graph_dot.contains("\"S.a\";"));
        assert!(report.lock_graph_dot.contains("\"S.a\" -> \"S.b\""));
    }
}
