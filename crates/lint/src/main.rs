//! `muds-lint` binary: lints the workspace against the project rule
//! catalogue (DESIGN.md §11). Exit codes: 0 clean/baseline-stable,
//! 1 new findings, 2 usage or I/O error.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    std::process::exit(muds_lint::run_cli(&args, &mut stdout));
}
