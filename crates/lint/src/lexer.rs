//! A lightweight, span-accurate Rust tokenizer.
//!
//! This is not a full Rust lexer — it knows exactly enough to drive the
//! rule engine safely: identifiers, punctuation, and literals come out as
//! tokens with `line:col` spans, while comments (line, block, nested
//! block) and every string-literal flavour (plain, raw `r#"…"#`, byte,
//! raw byte, char, lifetimes) are recognized so that rule patterns never
//! fire on text inside a string or a comment. Doc comments are comments.
//!
//! Columns are 1-based byte offsets within the line, matching what
//! editors and `rustc` print for ASCII source (the workspace is ASCII
//! outside string literals, where spans never point).

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, …).
    Ident,
    /// One punctuation byte (`.`, `{`, `!`, …). Multi-byte operators come
    /// out as consecutive tokens; rules only ever match single glyphs.
    Punct,
    /// String / raw-string / byte-string literal. `text` is the *decoded
    /// quote-free content is not needed* — it keeps the raw source slice.
    Str,
    /// Char literal (`'a'`, `'\n'`).
    Char,
    /// Numeric literal (`42`, `0xFF`, `1_000`, `2.5e3`).
    Number,
    /// Lifetime (`'a`) — kept distinct so it never looks like a char.
    Lifetime,
}

/// One token with its source span.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    /// Raw source text of the token (including quotes for literals).
    pub text: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (byte offset within the line).
    pub col: usize,
}

/// One comment with the line it starts on. Block comments keep their full
/// text (newlines included).
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: usize,
}

/// Tokenizer output: the token stream plus every comment encountered.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// All comments that start on `line`.
    pub fn comments_on(&self, line: usize) -> impl Iterator<Item = &Comment> {
        self.comments.iter().filter(move |c| c.line == line)
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.bytes.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes `source`. Unterminated constructs (string, block comment) are
/// consumed to end-of-file rather than reported — the compiler owns syntax
/// errors; the linter only needs to never mis-classify what follows.
pub fn lex(source: &str) -> Lexed {
    let mut cur = Cursor { bytes: source.as_bytes(), pos: 0, line: 1, col: 1 };
    let mut out = Lexed::default();

    while let Some(b) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let start = cur.pos;
                while cur.peek().is_some_and(|c| c != b'\n') {
                    cur.bump();
                }
                out.comments.push(Comment {
                    text: String::from_utf8_lossy(&cur.bytes[start..cur.pos]).into_owned(),
                    line,
                });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                let start = cur.pos;
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    text: String::from_utf8_lossy(&cur.bytes[start..cur.pos]).into_owned(),
                    line,
                });
            }
            b'r' | b'b' if raw_string_hashes(&cur).is_some() => {
                let hashes = raw_string_hashes(&cur).unwrap_or(0);
                let text = lex_raw_string(&mut cur, hashes);
                out.tokens.push(Token { kind: TokenKind::Str, text, line, col });
            }
            b'b' if cur.peek_at(1) == Some(b'"') => {
                cur.bump();
                let text = lex_quoted(&mut cur, b'"');
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: format!("b{text}"),
                    line,
                    col,
                });
            }
            b'b' if cur.peek_at(1) == Some(b'\'') => {
                cur.bump();
                let text = lex_quoted(&mut cur, b'\'');
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    text: format!("b{text}"),
                    line,
                    col,
                });
            }
            b'"' => {
                let text = lex_quoted(&mut cur, b'"');
                out.tokens.push(Token { kind: TokenKind::Str, text, line, col });
            }
            b'\'' => {
                // Lifetime (`'a`, `'static`) vs char literal (`'a'`,
                // `'\n'`): a lifetime is `'` + ident with no closing quote.
                if cur.peek_at(1).is_some_and(is_ident_start) && cur.peek_at(2) != Some(b'\'') {
                    cur.bump();
                    let start = cur.pos;
                    while cur.peek().is_some_and(is_ident_continue) {
                        cur.bump();
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: format!("'{}", String::from_utf8_lossy(&cur.bytes[start..cur.pos])),
                        line,
                        col,
                    });
                } else {
                    let text = lex_quoted(&mut cur, b'\'');
                    out.tokens.push(Token { kind: TokenKind::Char, text, line, col });
                }
            }
            b if b.is_ascii_digit() => {
                let start = cur.pos;
                while cur.peek().is_some_and(|c| {
                    c.is_ascii_alphanumeric()
                        || c == b'_'
                        || c == b'.' && {
                            // `1..n` is a range, not a float: only eat `.` when
                            // followed by a digit.
                            cur.peek_at(1).is_some_and(|d| d.is_ascii_digit())
                        }
                }) {
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    text: String::from_utf8_lossy(&cur.bytes[start..cur.pos]).into_owned(),
                    line,
                    col,
                });
            }
            b if is_ident_start(b) => {
                let start = cur.pos;
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: String::from_utf8_lossy(&cur.bytes[start..cur.pos]).into_owned(),
                    line,
                    col,
                });
            }
            _ => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (b as char).to_string(),
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// Does the cursor sit on a raw-string opener (`r"`, `r#"`, `br##"`, …)?
/// Returns the hash count when it does.
fn raw_string_hashes(cur: &Cursor<'_>) -> Option<usize> {
    let mut offset = 1;
    if cur.peek() == Some(b'b') {
        if cur.peek_at(1) != Some(b'r') {
            return None;
        }
        offset = 2;
    } else if cur.peek() != Some(b'r') {
        return None;
    }
    let mut hashes = 0;
    while cur.peek_at(offset + hashes) == Some(b'#') {
        hashes += 1;
    }
    (cur.peek_at(offset + hashes) == Some(b'"')).then_some(hashes)
}

/// Consumes a raw (byte) string literal — `r"…"`, `r##"…"##`, `br#"…"#` —
/// whose opener the cursor sits on with `hashes` hash marks (as reported by
/// [`raw_string_hashes`]). Raw strings have no escapes: the literal ends at
/// the first `"` followed by exactly `hashes` `#` bytes, so a `"#` inside an
/// `r##"…"##` body stays part of the string. Returns the raw source text
/// including prefix, hashes, and quotes.
fn lex_raw_string(cur: &mut Cursor<'_>, hashes: usize) -> String {
    let start = cur.pos;
    // Prefix (`r` or `br`) and opening hashes, up to the quote.
    while cur.peek() != Some(b'"') {
        cur.bump();
    }
    cur.bump(); // opening quote
    let closer: Vec<u8> = std::iter::once(b'"').chain(std::iter::repeat_n(b'#', hashes)).collect();
    loop {
        if cur.peek().is_none() {
            break;
        }
        if cur.bytes[cur.pos..].starts_with(&closer) {
            for _ in 0..closer.len() {
                cur.bump();
            }
            break;
        }
        cur.bump();
    }
    String::from_utf8_lossy(&cur.bytes[start..cur.pos]).into_owned()
}

/// Consumes a `quote`-delimited literal with `\` escapes, returning its raw
/// text including the quotes.
fn lex_quoted(cur: &mut Cursor<'_>, quote: u8) -> String {
    let start = cur.pos;
    cur.bump(); // opening quote
    while let Some(b) = cur.peek() {
        if b == b'\\' {
            cur.bump();
            cur.bump();
        } else if b == quote {
            cur.bump();
            break;
        } else {
            cur.bump();
        }
    }
    String::from_utf8_lossy(&cur.bytes[start..cur.pos]).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).tokens.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        let toks = kinds("let x = 42;");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "let".into()),
                (TokenKind::Ident, "x".into()),
                (TokenKind::Punct, "=".into()),
                (TokenKind::Number, "42".into()),
                (TokenKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn spans_are_line_col_accurate() {
        let lexed = lex("fn a() {\n    x.unwrap();\n}\n");
        let unwrap = lexed.tokens.iter().find(|t| t.text == "unwrap").unwrap();
        assert_eq!((unwrap.line, unwrap.col), (2, 7));
    }

    #[test]
    fn strings_hide_their_content_from_the_stream() {
        let toks = kinds(r#"emit("fake .unwrap() inside")"#);
        assert_eq!(toks.len(), 4, "{toks:?}"); // emit ( "…" )
        assert_eq!(toks[2].0, TokenKind::Str);
        assert!(toks.iter().all(|(_, text)| text != "unwrap" || text.starts_with('"')));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"quote " inside"#; x"###);
        assert_eq!(toks[3].0, TokenKind::Str);
        assert_eq!(toks[3].1, r###"r#"quote " inside"#"###);
        assert_eq!(toks.last().unwrap().1, "x");
    }

    #[test]
    fn raw_strings_with_two_or_more_hashes() {
        // An embedded `"#` must not close an `r##"…"##` literal.
        let toks = kinds(r####"let s = r##"has "# inside"##; x"####);
        assert_eq!(toks[3].0, TokenKind::Str);
        assert_eq!(toks[3].1, r####"r##"has "# inside"##"####);
        assert_eq!(toks.last().unwrap().1, "x");
        let three = kinds(r#####"r###"deep "## nest"###"#####);
        assert_eq!(three, vec![(TokenKind::Str, r#####"r###"deep "## nest"###"#####.into())]);
    }

    #[test]
    fn raw_byte_strings() {
        let toks = kinds(r####"f(br"plain", br#"quote " inside"#, br##"hash "# inside"##)"####);
        let strs: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Str).map(|(_, t)| t.as_str()).collect();
        assert_eq!(
            strs,
            vec![r#"br"plain""#, r##"br#"quote " inside"#"##, r###"br##"hash "# inside"##"###]
        );
    }

    #[test]
    fn raw_strings_hide_their_content_from_the_stream() {
        let toks = kinds(r###"emit(r#"fake .unwrap() and fn lie() {}"#)"###);
        assert_eq!(toks.len(), 4, "{toks:?}"); // emit ( r#"…"# )
        assert!(toks.iter().all(|(_, t)| t != "unwrap" && t != "lie"));
    }

    #[test]
    fn spans_stay_accurate_after_multiline_raw_strings() {
        let lexed =
            lex("let s = r##\"line one\nline two \"# not closed\nstill\"##;\n    after.lock();\n");
        let raw = lexed.tokens.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        assert_eq!((raw.line, raw.col), (1, 9));
        assert!(raw.text.contains("line two"));
        let lock = lexed.tokens.iter().find(|t| t.text == "lock").unwrap();
        assert_eq!((lock.line, lock.col), (4, 11));
    }

    #[test]
    fn unterminated_raw_string_consumes_to_eof() {
        let lexed = lex("x; r##\"never closed \"# trailing");
        assert_eq!(lexed.tokens.last().unwrap().kind, TokenKind::Str);
        assert_eq!(lexed.tokens.len(), 3); // x ; r##"…
    }

    #[test]
    fn byte_and_char_literals() {
        let toks = kinds(r#"(b"bytes", b'\n', 'c', '\'')"#);
        let kinds_only: Vec<TokenKind> = toks.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            kinds_only,
            vec![
                TokenKind::Punct,
                TokenKind::Str,
                TokenKind::Punct,
                TokenKind::Char,
                TokenKind::Punct,
                TokenKind::Char,
                TokenKind::Punct,
                TokenKind::Char,
                TokenKind::Punct,
            ]
        );
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) {}");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert!(toks.iter().all(|(k, _)| *k != TokenKind::Char));
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let lexed = lex("x; // trailing .unwrap()\n/* block\nspanning */ y;");
        assert_eq!(lexed.tokens.iter().filter(|t| t.text == "unwrap").count(), 0);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].line, 2);
        assert!(lexed.comments[1].text.contains("spanning"));
        let y = lexed.tokens.iter().find(|t| t.text == "y").unwrap();
        assert_eq!(y.line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still comment */ token");
        assert_eq!(lexed.tokens.len(), 1);
        assert_eq!(lexed.tokens[0].text, "token");
    }

    #[test]
    fn ranges_do_not_become_floats() {
        let toks = kinds("for i in 0..10 {}");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Number && t == "0"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Number && t == "10"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Punct && t == "."));
        let floats = kinds("let f = 2.5e3;");
        assert!(floats.iter().any(|(k, t)| *k == TokenKind::Number && t == "2.5e3"));
    }
}
