//! A lightweight item/signature/block parser on top of the span-accurate
//! lexer — just enough structure for flow-aware rules.
//!
//! This is not a Rust parser. It recognizes the subset the semantic rules
//! need: struct definitions (field → declared type, for lock identity),
//! impl/trait blocks (so `self` resolves to a type), function signatures
//! (name, arity, parameter types), and an ordered event stream per function
//! body: block open/close (guard scopes), lock acquisitions
//! (`lock(&expr)` / `expr.lock()`), condvar waits (`cond_wait(&cv, guard)`,
//! `guard`-first `.wait(...)`), explicit `drop(binding)`, and every call
//! with its name, qualifier, receiver, and arity. Calls inside a `spawn(…)`
//! argument list are marked `in_spawn` so thread bodies never count as
//! same-thread control flow.
//!
//! `#[cfg(test)]` modules and `#[test]` functions are skipped entirely:
//! test code locks in arbitrary orders and blocks freely, and must not
//! contribute edges to the workspace graphs.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::BTreeMap;

/// One parsed source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Workspace-relative path (as handed to [`parse_file`]).
    pub path: String,
    /// struct name → field name → declared type (token texts joined with
    /// single spaces, e.g. `"Arc < HandlerShared >"`).
    pub structs: BTreeMap<String, BTreeMap<String, String>>,
    pub functions: Vec<Function>,
}

/// One function (free or method) with its body event stream.
#[derive(Debug)]
pub struct Function {
    pub name: String,
    /// `Some(type)` when defined inside `impl Type` / `impl Trait for Type`
    /// / `trait Type` — what `self` resolves to.
    pub impl_type: Option<String>,
    pub has_self: bool,
    /// Parameter count excluding `self` — the call-site matching key.
    pub arity: usize,
    /// Parameter name → declared type text (single-ident patterns only).
    pub params: BTreeMap<String, String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    pub body: Vec<Event>,
}

/// One body event, in source order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `{` — a nested block opens (guard scope boundary).
    Open,
    /// `}` — the innermost block closes; guards bound inside it die.
    Close,
    /// A lock acquisition: `lock(&EXPR)` or `EXPR.lock()`. `expr` is the
    /// dotted receiver path (`self.shared.queue`); `binding` is the guard
    /// variable when the result is `let`-bound (`None` ⇒ a temporary that
    /// dies at the end of the statement).
    Acquire { expr: String, binding: Option<String>, line: usize, col: usize },
    /// A condvar wait that takes a guard by value: `cond_wait(&cv, guard)`,
    /// `cond_wait_timeout(&cv, guard, dur)`, or `recv.wait(guard)`.
    Wait { guard: String, line: usize, col: usize },
    /// `drop(binding)` — an explicit early guard release.
    DropGuard { binding: String },
    /// Any other call. `qualifier` is the last path segment before a `::`
    /// call (`fs::remove_file` ⇒ `Some("fs")`); `recv` is the dotted
    /// receiver of a method call when it is a plain path (`self.epoll`).
    Call {
        name: String,
        qualifier: Option<String>,
        recv: Option<String>,
        /// `true` for `x.name(…)` even when the receiver is not a plain
        /// path (`recv: None`) — e.g. a call-result receiver.
        method: bool,
        arity: usize,
        in_spawn: bool,
        line: usize,
        col: usize,
    },
}

/// Parses one file. `path` is carried through for diagnostics.
pub fn parse_file(path: &str, source: &str) -> ParsedFile {
    let tokens = lex(source).tokens;
    let mut out = ParsedFile { path: path.to_string(), ..ParsedFile::default() };
    let mut p = Parser { toks: &tokens, i: 0 };
    p.items(&mut out, None, usize::MAX);
    out
}

struct Parser<'a> {
    toks: &'a [Token],
    i: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self, off: usize) -> Option<&'a Token> {
        self.toks.get(self.i + off)
    }

    fn at_punct(&self, off: usize, p: &str) -> bool {
        self.peek(off).is_some_and(|t| t.kind == TokenKind::Punct && t.text == p)
    }

    fn at_ident(&self, off: usize, name: &str) -> bool {
        self.peek(off).is_some_and(|t| t.kind == TokenKind::Ident && t.text == name)
    }

    /// Advances past a balanced `open`…`close` region whose `open` the
    /// cursor sits on. Tolerates EOF (consumes the rest).
    fn skip_balanced(&mut self, open: &str, close: &str) {
        let mut depth = 0usize;
        while let Some(t) = self.peek(0) {
            if t.kind == TokenKind::Punct && t.text == open {
                depth += 1;
            } else if t.kind == TokenKind::Punct && t.text == close {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// Skips a generic parameter list the cursor's `<` opens. `->` never
    /// counts as closing a bracket.
    fn skip_generics(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.peek(0) {
            if t.kind == TokenKind::Punct && t.text == "<" {
                depth += 1;
            } else if t.kind == TokenKind::Punct && t.text == ">" {
                let arrow = self.i > 0 && self.toks[self.i - 1].text == "-";
                if !arrow {
                    depth -= 1;
                    if depth == 0 {
                        self.i += 1;
                        return;
                    }
                }
            }
            self.i += 1;
        }
    }

    /// Item-level scan until the brace depth drops below `stop_depth` (or
    /// EOF). `impl_type` is the enclosing impl/trait type, if any.
    fn items(&mut self, out: &mut ParsedFile, impl_type: Option<&str>, stop_depth: usize) {
        let mut depth = 0usize;
        let mut attrs: Vec<String> = Vec::new();
        while let Some(t) = self.peek(0) {
            match (t.kind, t.text.as_str()) {
                (TokenKind::Punct, "#") if self.at_punct(1, "[") => {
                    let start = self.i;
                    self.i += 1; // `#`
                    self.skip_balanced("[", "]");
                    let text: Vec<&str> =
                        self.toks[start..self.i].iter().map(|t| t.text.as_str()).collect();
                    attrs.push(text.concat());
                }
                (TokenKind::Punct, "{") => {
                    depth += 1;
                    self.i += 1;
                    attrs.clear();
                }
                (TokenKind::Punct, "}") => {
                    self.i += 1;
                    if depth == 0 {
                        if stop_depth != usize::MAX {
                            // Closes the region our caller opened.
                            return;
                        }
                    } else {
                        depth -= 1;
                    }
                    attrs.clear();
                }
                (TokenKind::Ident, "struct") => {
                    self.parse_struct(out);
                    attrs.clear();
                }
                (TokenKind::Ident, "impl") | (TokenKind::Ident, "trait") => {
                    self.parse_impl(out);
                    attrs.clear();
                }
                (TokenKind::Ident, "mod") => {
                    let test_mod = attrs.iter().any(|a| a.contains("cfg(test)"));
                    attrs.clear();
                    self.i += 1; // `mod`
                    if self.peek(0).is_some_and(|t| t.kind == TokenKind::Ident) {
                        self.i += 1; // name
                    }
                    if self.at_punct(0, "{") && test_mod {
                        self.skip_balanced("{", "}");
                    }
                    // Non-test inline mods fall through: their `{`/`}` are
                    // tracked by the depth counter and items parse normally.
                }
                (TokenKind::Ident, "fn") => {
                    let skip = attrs.iter().any(|a| a.contains("test"));
                    attrs.clear();
                    self.parse_fn(out, impl_type, skip);
                }
                (TokenKind::Ident, "use")
                | (TokenKind::Ident, "static")
                | (TokenKind::Ident, "const")
                | (TokenKind::Ident, "type") => {
                    // Skip to `;` (or `{` for a const fn — handled above
                    // since `fn` follows `const` and wins the match first
                    // only if we don't swallow it here).
                    if self.at_ident(1, "fn") {
                        self.i += 1; // just drop the `const`
                    } else {
                        while let Some(t) = self.peek(0) {
                            if t.kind == TokenKind::Punct && t.text == ";" {
                                self.i += 1;
                                break;
                            }
                            if t.kind == TokenKind::Punct && t.text == "{" {
                                self.skip_balanced("{", "}");
                                // A `;` may still follow (const X: T = {..};)
                            }
                            self.i += 1;
                        }
                    }
                    attrs.clear();
                }
                _ => {
                    self.i += 1;
                }
            }
        }
    }

    /// `struct Name { field: Type, … }` — unit and tuple structs are
    /// skipped (they hold no named locks).
    fn parse_struct(&mut self, out: &mut ParsedFile) {
        self.i += 1; // `struct`
        let Some(name_tok) = self.peek(0) else { return };
        if name_tok.kind != TokenKind::Ident {
            return;
        }
        let name = name_tok.text.clone();
        self.i += 1;
        if self.at_punct(0, "<") {
            self.skip_generics();
        }
        // `where` clause, if any, runs to the `{`.
        while let Some(t) = self.peek(0) {
            if t.kind == TokenKind::Punct && (t.text == "{" || t.text == ";" || t.text == "(") {
                break;
            }
            self.i += 1;
        }
        if !self.at_punct(0, "{") {
            // Unit (`;`) or tuple (`(`) struct: consume its terminator.
            if self.at_punct(0, "(") {
                self.skip_balanced("(", ")");
            }
            return;
        }
        let body_start = self.i;
        self.skip_balanced("{", "}");
        let body = &self.toks[body_start + 1..self.i - 1];
        let mut fields = BTreeMap::new();
        let mut j = 0usize;
        while j < body.len() {
            // Skip field attributes and visibility.
            if body[j].text == "#" {
                j = skip_balanced_in(body, j + 1, "[", "]");
                continue;
            }
            if body[j].text == "pub" {
                j += 1;
                if j < body.len() && body[j].text == "(" {
                    j = skip_balanced_in(body, j, "(", ")");
                }
                continue;
            }
            if body[j].kind == TokenKind::Ident
                && j + 1 < body.len()
                && body[j + 1].text == ":"
                && (j + 2 >= body.len() || body[j + 2].text != ":")
            {
                let fname = body[j].text.clone();
                let ty_start = j + 2;
                let mut k = ty_start;
                let mut angle = 0i32;
                while k < body.len() {
                    match body[k].text.as_str() {
                        "<" => angle += 1,
                        ">" if body[k - 1].text != "-" => angle -= 1,
                        "," if angle == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                let ty: Vec<&str> = body[ty_start..k].iter().map(|t| t.text.as_str()).collect();
                fields.insert(fname, ty.join(" "));
                j = k + 1;
            } else {
                j += 1;
            }
        }
        out.structs.entry(name).or_default().extend(fields);
    }

    /// `impl [<…>] Type [for Trait] { … }` / `trait Name { … }` — recurses
    /// into the block with the impl type bound.
    fn parse_impl(&mut self, out: &mut ParsedFile) {
        let is_trait = self.at_ident(0, "trait");
        self.i += 1; // `impl` / `trait`
        if self.at_punct(0, "<") {
            self.skip_generics();
        }
        // Collect the type path up to `{`, `for`, or `where`; remember the
        // last plain ident before generics as the type name.
        let mut name: Option<String> = None;
        while let Some(t) = self.peek(0) {
            match (t.kind, t.text.as_str()) {
                (TokenKind::Punct, "{") => break,
                (TokenKind::Punct, ";") => {
                    // `impl Trait for Type;` style marker impls.
                    self.i += 1;
                    return;
                }
                (TokenKind::Ident, "for") if !is_trait => {
                    // Everything before `for` was the trait; the type follows.
                    name = None;
                    self.i += 1;
                }
                (TokenKind::Ident, "where") => {
                    self.i += 1;
                }
                (TokenKind::Punct, "<") => self.skip_generics(),
                (TokenKind::Ident, _) => {
                    name = Some(t.text.clone());
                    self.i += 1;
                }
                _ => {
                    self.i += 1;
                }
            }
        }
        if !self.at_punct(0, "{") {
            return;
        }
        self.i += 1; // `{`
        let ty = name.unwrap_or_default();
        self.items(out, if ty.is_empty() { None } else { Some(&ty) }, 0);
    }

    /// `fn name[<…>](params) [-> ret] [where …] { body }` — `skip` still
    /// consumes the function but records nothing (`#[test]` fns).
    fn parse_fn(&mut self, out: &mut ParsedFile, impl_type: Option<&str>, skip: bool) {
        let fn_line = self.toks[self.i].line;
        self.i += 1; // `fn`
        let Some(name_tok) = self.peek(0) else { return };
        if name_tok.kind != TokenKind::Ident {
            return;
        }
        let name = name_tok.text.clone();
        self.i += 1;
        if self.at_punct(0, "<") {
            self.skip_generics();
        }
        if !self.at_punct(0, "(") {
            return;
        }
        let params_start = self.i;
        self.skip_balanced("(", ")");
        let param_toks = &self.toks[params_start + 1..self.i - 1];
        let (has_self, arity, params) = parse_params(param_toks);

        // Return type / where clause: scan to the body `{` or a `;`
        // (trait method declaration — no body).
        loop {
            match self.peek(0) {
                None => return,
                Some(t) if t.text == ";" => {
                    self.i += 1;
                    return;
                }
                Some(t) if t.text == "{" => break,
                Some(t) if t.text == "<" => self.skip_generics(),
                Some(_) => self.i += 1,
            }
        }
        let body_start = self.i;
        self.skip_balanced("{", "}");
        if skip {
            return;
        }
        let body_toks = &self.toks[body_start + 1..self.i - 1];
        out.functions.push(Function {
            name,
            impl_type: impl_type.map(str::to_string),
            has_self,
            arity,
            params,
            line: fn_line,
            body: scan_body(body_toks),
        });
    }
}

/// Advances past a balanced region inside a token slice; `start` indexes
/// the opening token. Returns the index after the closer.
fn skip_balanced_in(toks: &[Token], start: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut j = start;
    while j < toks.len() {
        if toks[j].text == open {
            depth += 1;
        } else if toks[j].text == close {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Splits a parameter list into (has_self, arity-excluding-self,
/// name → type for single-ident patterns).
fn parse_params(toks: &[Token]) -> (bool, usize, BTreeMap<String, String>) {
    let mut has_self = false;
    let mut arity = 0usize;
    let mut params = BTreeMap::new();
    let mut j = 0usize;
    while j < toks.len() {
        // One parameter: tokens up to the next top-level comma.
        let start = j;
        let mut angle = 0i32;
        let mut paren = 0i32;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "<" => angle += 1,
                ">" if j > start && toks[j - 1].text != "-" => angle -= 1,
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "," if angle == 0 && paren == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let param = &toks[start..j];
        j += 1; // past the comma
                // Strip leading `&`, lifetimes, and `mut`.
        let mut k = 0usize;
        while k < param.len()
            && (param[k].text == "&"
                || param[k].kind == TokenKind::Lifetime
                || param[k].text == "mut")
        {
            k += 1;
        }
        if k < param.len() && param[k].text == "self" {
            has_self = true;
            continue;
        }
        if param.is_empty() {
            continue;
        }
        arity += 1;
        if k + 1 < param.len() && param[k].kind == TokenKind::Ident && param[k + 1].text == ":" {
            let ty: Vec<&str> = param[k + 2..].iter().map(|t| t.text.as_str()).collect();
            params.insert(param[k].text.clone(), ty.join(" "));
        }
    }
    (has_self, arity, params)
}

/// Statement keywords that look like `ident (` but are not calls.
const NON_CALLS: [&str; 10] =
    ["if", "while", "for", "match", "loop", "return", "Some", "Ok", "Err", "None"];

/// Produces the ordered event stream for one function body.
fn scan_body(toks: &[Token]) -> Vec<Event> {
    let mut events = Vec::new();
    let mut paren_depth = 0usize;
    // Paren depths at which a `spawn(`'s argument list opened; calls are
    // `in_spawn` while any is active (the closure body runs on another
    // thread).
    let mut spawn_depths: Vec<usize> = Vec::new();
    let mut j = 0usize;
    while j < toks.len() {
        let t = &toks[j];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "{") => {
                events.push(Event::Open);
                j += 1;
            }
            (TokenKind::Punct, "}") => {
                events.push(Event::Close);
                j += 1;
            }
            (TokenKind::Punct, "(") => {
                paren_depth += 1;
                j += 1;
            }
            (TokenKind::Punct, ")") => {
                paren_depth = paren_depth.saturating_sub(1);
                while spawn_depths.last().is_some_and(|d| *d > paren_depth) {
                    spawn_depths.pop();
                }
                j += 1;
            }
            (TokenKind::Ident, name)
                if j + 1 < toks.len()
                    && toks[j + 1].text == "("
                    && !NON_CALLS.contains(&name)
                    && !(j > 0 && toks[j - 1].text == "fn") =>
            {
                let is_method = j > 0 && toks[j - 1].text == ".";
                let is_path = j > 1 && toks[j - 1].text == ":" && toks[j - 2].text == ":";
                let qualifier = if is_path {
                    // Last path segment before `::name(`.
                    (j >= 3 && toks[j - 3].kind == TokenKind::Ident)
                        .then(|| toks[j - 3].text.clone())
                } else {
                    None
                };
                let recv = if is_method { receiver_path(toks, j - 1) } else { None };
                let args_end = skip_balanced_in(toks, j + 1, "(", ")");
                let args = split_args(&toks[j + 2..args_end - 1]);
                let arity = args.len();
                let in_spawn = !spawn_depths.is_empty();
                let (line, col) = (t.line, t.col);

                // A first argument that is a single bare identifier (the
                // guard passed to `.wait(guard)` / `drop(guard)`).
                let lone_first: Option<String> = match args.first() {
                    Some([t]) if t.kind == TokenKind::Ident => Some(t.text.clone()),
                    _ => None,
                };
                match (name, is_method, arity) {
                    ("lock", false, 1) => {
                        if let Some(&arg) = args.first() {
                            events.push(Event::Acquire {
                                expr: arg_path(arg),
                                binding: binding_before(toks, j),
                                line,
                                col,
                            });
                        }
                    }
                    ("lock", true, 0) => {
                        if let Some(expr) = recv {
                            events.push(Event::Acquire {
                                expr,
                                binding: binding_before_recv(toks, j),
                                line,
                                col,
                            });
                        }
                    }
                    ("cond_wait", false, 2) | ("cond_wait_timeout", false, 3) => {
                        if let Some(&guard) = args.get(1) {
                            events.push(Event::Wait { guard: arg_path(guard), line, col });
                        }
                    }
                    ("wait", true, 1) | ("wait_timeout", true, 2) if lone_first.is_some() => {
                        if let Some(guard) = lone_first {
                            events.push(Event::Wait { guard, line, col });
                        }
                    }
                    ("drop", false, 1) if lone_first.is_some() => {
                        if let Some(binding) = lone_first {
                            events.push(Event::DropGuard { binding });
                        }
                    }
                    _ => {
                        if name == "spawn" {
                            spawn_depths.push(paren_depth + 1);
                        }
                        events.push(Event::Call {
                            name: name.to_string(),
                            qualifier,
                            recv,
                            method: is_method,
                            arity,
                            in_spawn,
                            line,
                            col,
                        });
                    }
                }
                // Continue INSIDE the argument list so nested calls are
                // seen; only the call head is consumed.
                j += 1;
            }
            _ => {
                j += 1;
            }
        }
    }
    events
}

/// The dotted receiver path of a method call, scanning left from the `.`
/// at `dot`: `self.shared.queue.lock()` ⇒ `"self.shared.queue"`. Returns
/// `None` when the receiver is not a plain path (e.g. a call result).
fn receiver_path(toks: &[Token], dot: usize) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot; // toks[j] == "."
    loop {
        if j == 0 {
            break;
        }
        let prev = &toks[j - 1];
        if prev.kind == TokenKind::Ident {
            parts.push(prev.text.clone());
            if j >= 3 && toks[j - 2].text == "." {
                j -= 2;
                continue;
            }
        }
        break;
    }
    if parts.is_empty() {
        return None;
    }
    parts.reverse();
    Some(parts.join("."))
}

/// Splits an argument token list on top-level commas. Closure literals
/// (`|a, b| …`) count as part of one argument: commas between a pair of
/// top-level `|`s are skipped.
fn split_args(toks: &[Token]) -> Vec<&[Token]> {
    if toks.is_empty() {
        return Vec::new();
    }
    let mut args = Vec::new();
    let mut start = 0usize;
    let mut paren = 0i32;
    let mut angle = 0i32;
    let mut in_closure = false;
    let mut j = 0usize;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => paren += 1,
            ")" | "]" | "}" => paren -= 1,
            "<" if toks[j].kind == TokenKind::Punct => angle += 1,
            ">" if j > 0 && toks[j - 1].text != "-" => angle = (angle - 1).max(0),
            "|" if paren == 0 => in_closure = !in_closure,
            "," if paren == 0 && angle == 0 && !in_closure => {
                args.push(&toks[start..j]);
                start = j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    args.push(&toks[start..]);
    args
}

/// The dotted path of an argument expression, with leading `&`/`mut`/`*`
/// stripped: `&self.shared.queue` ⇒ `"self.shared.queue"`.
fn arg_path(arg: &[Token]) -> String {
    let mut parts: Vec<&str> = Vec::new();
    for t in arg {
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "&") | (TokenKind::Punct, "*") => continue,
            (TokenKind::Ident, "mut") => continue,
            (TokenKind::Ident, s) => parts.push(s),
            (TokenKind::Punct, ".") => continue,
            _ => break,
        }
    }
    parts.join(".")
}

/// The `let`-binding a call's result lands in, if the statement is
/// `let [mut] NAME = name(…)` or `NAME = name(…)`. `head` indexes the
/// call's name token.
fn binding_before(toks: &[Token], head: usize) -> Option<String> {
    if head < 2 || toks[head - 1].text != "=" {
        return None;
    }
    let name = &toks[head - 2];
    if name.kind != TokenKind::Ident || name.text == "mut" {
        return None;
    }
    // Reassignment (`queue = lock(…)`) or fresh binding: both name a guard.
    Some(name.text.clone())
}

/// Like [`binding_before`], but for a method call `EXPR.lock()`: walks left
/// past the receiver path to find `let [mut] NAME = EXPR.lock()`.
fn binding_before_recv(toks: &[Token], head: usize) -> Option<String> {
    // head indexes `lock`; step left over `.` then the receiver path.
    let mut j = head;
    while j >= 2 && toks[j - 1].text == "." && toks[j - 2].kind == TokenKind::Ident {
        j -= 2;
    }
    binding_before(toks, j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(src: &str) -> ParsedFile {
        parse_file("test.rs", src)
    }

    #[test]
    fn structs_record_field_types() {
        let p = parsed(
            "struct Shared { queue: Mutex<VecDeque<Job>>, wake: Condvar }\n\
             pub struct Owner { pub shared: Arc<Shared> }",
        );
        assert_eq!(p.structs["Shared"]["queue"], "Mutex < VecDeque < Job > >");
        assert_eq!(p.structs["Owner"]["shared"], "Arc < Shared >");
    }

    #[test]
    fn impl_methods_carry_type_and_arity() {
        let p = parsed(
            "impl Owner {\n    fn take(&mut self, n: usize) -> u32 { helper(n) }\n}\n\
             fn helper(n: usize) -> u32 { n as u32 }",
        );
        let take = p.functions.iter().find(|f| f.name == "take").unwrap();
        assert_eq!(take.impl_type.as_deref(), Some("Owner"));
        assert!(take.has_self);
        assert_eq!(take.arity, 1);
        assert_eq!(take.params["n"], "usize");
        let helper = p.functions.iter().find(|f| f.name == "helper").unwrap();
        assert_eq!(helper.impl_type, None);
        assert!(!helper.has_self);
    }

    #[test]
    fn lock_sites_resolve_binding_and_expr() {
        let p = parsed(
            "impl S { fn f(&self) {\n\
                 let mut inner = lock(&self.inner);\n\
                 lock(&self.other).push(1);\n\
                 drop(inner);\n\
             } }",
        );
        let f = &p.functions[0];
        let acquires: Vec<&Event> =
            f.body.iter().filter(|e| matches!(e, Event::Acquire { .. })).collect();
        assert_eq!(acquires.len(), 2);
        assert_eq!(
            acquires[0],
            &Event::Acquire {
                expr: "self.inner".into(),
                binding: Some("inner".into()),
                line: 2,
                col: 17
            }
        );
        assert!(matches!(
            acquires[1],
            Event::Acquire { expr, binding: None, .. } if expr == "self.other"
        ));
        assert!(f
            .body
            .iter()
            .any(|e| matches!(e, Event::DropGuard { binding } if binding == "inner")));
    }

    #[test]
    fn cond_wait_names_the_guard() {
        let p = parsed(
            "fn w(shared: &Shared) {\n\
                 let mut queue = lock(&shared.queue);\n\
                 queue = cond_wait(&shared.wake, queue);\n\
             }",
        );
        assert!(p.functions[0]
            .body
            .iter()
            .any(|e| matches!(e, Event::Wait { guard, .. } if guard == "queue")));
    }

    #[test]
    fn spawn_closure_calls_are_marked() {
        let p = parsed(
            "fn boot() {\n\
                 std::thread::Builder::new().spawn(move || worker(1, 2)).unwrap();\n\
                 direct(3);\n\
             }",
        );
        let f = &p.functions[0];
        let worker = f
            .body
            .iter()
            .find_map(|e| match e {
                Event::Call { name, in_spawn, arity, .. } if name == "worker" => {
                    Some((*in_spawn, *arity))
                }
                _ => None,
            })
            .unwrap();
        assert_eq!(worker, (true, 2));
        let direct = f
            .body
            .iter()
            .find_map(|e| match e {
                Event::Call { name, in_spawn, .. } if name == "direct" => Some(*in_spawn),
                _ => None,
            })
            .unwrap();
        assert!(!direct);
    }

    #[test]
    fn cfg_test_mods_and_test_fns_are_skipped() {
        let p = parsed(
            "fn real() {}\n\
             #[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn t() {}\n}\n\
             #[test]\nfn stray() {}\n",
        );
        let names: Vec<&str> = p.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn method_calls_record_receiver_and_qualifier() {
        let p = parsed(
            "impl R { fn go(&mut self) {\n\
                 self.epoll.wait(&mut events, 30);\n\
                 fs::remove_file(path);\n\
                 Response::error(503, msg).write_to(w);\n\
             } }",
        );
        let f = &p.functions[0];
        let calls: Vec<(&str, Option<&str>, Option<&str>, usize)> = f
            .body
            .iter()
            .filter_map(|e| match e {
                Event::Call { name, qualifier, recv, arity, .. } => {
                    Some((name.as_str(), qualifier.as_deref(), recv.as_deref(), *arity))
                }
                _ => None,
            })
            .collect();
        assert!(calls.contains(&("wait", None, Some("self.epoll"), 2)));
        assert!(calls.contains(&("remove_file", Some("fs"), None, 1)));
        assert!(calls.contains(&("error", Some("Response"), None, 2)));
        // Receiver of write_to is a call result — recv is None.
        assert!(calls.contains(&("write_to", None, None, 1)));
    }

    #[test]
    fn closure_commas_do_not_inflate_arity() {
        let p = parsed("fn f() { items.retain(|(k, v)| keep(k, v)); }");
        let retain = p.functions[0]
            .body
            .iter()
            .find_map(|e| match e {
                Event::Call { name, arity, .. } if name == "retain" => Some(*arity),
                _ => None,
            })
            .unwrap();
        assert_eq!(retain, 1);
    }
}
