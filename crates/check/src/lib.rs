//! Differential fuzzing oracle for the holistic profiler.
//!
//! The fuzz loop rotates through adversarial [`strategy`] generators,
//! runs every pipeline plus the exponential naive oracles on each
//! generated table, and checks the structural invariants in
//! [`oracle::CheckSuite`]. On a disagreement (or a panic anywhere in a
//! pipeline) the failing table is delta-debugged down to a minimal repro
//! by [`shrink::shrink`] and persisted as a CSV regression seed by
//! [`corpus::write_repro`].
//!
//! Everything is deterministic in the campaign seed: iteration `i` of a
//! campaign derives its own `StdRng` from `seed` and `i` alone, so any
//! reported failure can be re-generated without the corpus file.

mod corpus;
mod oracle;
mod shrink;
mod strategy;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use muds_table::Table;
use rand::prelude::*;

pub use corpus::write_repro;
pub use oracle::{check_overwide_rejection, CheckSuite, FailureDetail};
pub use shrink::{shrink, ShrinkStats};
pub use strategy::{SizeBounds, Strategy, STRATEGIES};

/// A fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Campaign seed; every iteration derives from it deterministically.
    pub seed: u64,
    /// Number of tables to generate and check.
    pub iters: usize,
    /// Size bounds handed to the narrow strategies.
    pub bounds: SizeBounds,
    /// The invariant suite to run on each table.
    pub suite: CheckSuite,
    /// Where to write shrunken repros; `None` disables corpus output.
    pub corpus_dir: Option<PathBuf>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 42,
            iters: 500,
            bounds: SizeBounds::default(),
            suite: CheckSuite::default(),
            corpus_dir: None,
        }
    }
}

/// One confirmed failure, post-shrinking.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Iteration that generated the failing table.
    pub iteration: usize,
    /// Strategy that generated it.
    pub strategy: &'static str,
    /// Failure signature: an invariant name, or `"panic"`.
    pub invariant: String,
    /// Human-readable disagreement (or panic payload).
    pub detail: String,
    /// Shrunken repro dimensions (columns, rows).
    pub shrunken: (usize, usize),
    /// Shrinker effort.
    pub shrink_stats: ShrinkStats,
    /// Corpus file, when a directory was configured and the repro is
    /// CSV-representable.
    pub corpus_file: Option<PathBuf>,
}

/// Campaign summary.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Iterations executed.
    pub iterations: usize,
    /// All failures found, in iteration order.
    pub failures: Vec<Failure>,
}

impl FuzzReport {
    /// True when the campaign finished without a single disagreement.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// SplitMix64-style avalanche so per-iteration seeds don't correlate.
fn mix(seed: u64, iteration: u64) -> u64 {
    let mut z = seed ^ iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Outcome of one check pass: clean, an invariant violation, or a panic
/// somewhere inside a pipeline.
fn run_check(suite: &CheckSuite, table: &Table) -> Option<(String, String)> {
    match catch_unwind(AssertUnwindSafe(|| suite.check(table))) {
        Ok(None) => None,
        Ok(Some(f)) => Some((f.invariant.to_string(), f.detail)),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Some(("panic".to_string(), msg))
        }
    }
}

/// Runs a fuzz campaign. Emits `check.*` counters to the ambient
/// [`muds_obs`] registry; install one before calling to collect them.
pub fn run_fuzz(config: &FuzzConfig) -> FuzzReport {
    let mut report = FuzzReport::default();
    for iteration in 0..config.iters {
        let strategy = &STRATEGIES[iteration % STRATEGIES.len()];
        let mut rng = StdRng::seed_from_u64(mix(config.seed, iteration as u64));
        let table = strategy.generate(&mut rng, &config.bounds);
        muds_obs::add("check.iterations", 1);
        muds_obs::add(&format!("check.strategy.{}", strategy.name), 1);

        let mut failure = run_check(&config.suite, &table).map(|(invariant, detail)| {
            let signature = invariant.clone();
            let mut still_fails = |candidate: &Table| {
                run_check(&config.suite, candidate).is_some_and(|(inv, _)| inv == signature)
            };
            let (small, shrink_stats) = shrink(&table, &mut still_fails);
            muds_obs::add("check.shrink_candidates", shrink_stats.candidates_tried as u64);
            let corpus_file = config.corpus_dir.as_ref().and_then(|dir| {
                write_repro(dir, &small, &invariant, config.seed, iteration).ok().flatten()
            });
            if corpus_file.is_some() {
                muds_obs::add("check.corpus_files", 1);
            }
            Failure {
                iteration,
                strategy: strategy.name,
                invariant,
                detail,
                shrunken: (small.num_columns(), small.num_rows()),
                shrink_stats,
                corpus_file,
            }
        });

        // Width guard: on wide-boundary iterations, also prove that any
        // width beyond the 256-column `ColumnSet` limit is rejected with
        // the typed error instead of panicking inside the bitset.
        if failure.is_none() && strategy.name == "wide-boundary" {
            let over = rng.gen_range(257..=300usize);
            failure = check_overwide_rejection(over).map(|f| Failure {
                iteration,
                strategy: strategy.name,
                invariant: f.invariant.to_string(),
                detail: f.detail,
                shrunken: (0, 0),
                shrink_stats: ShrinkStats::default(),
                corpus_file: None,
            });
        }

        if let Some(f) = failure {
            muds_obs::add("check.failures", 1);
            report.failures.push(f);
        }
        report.iterations += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full suite is clean over at least one rotation of every
    /// strategy. (The long campaign runs in CI via `mudsprof fuzz`.)
    #[test]
    fn short_campaign_is_clean() {
        let config = FuzzConfig { seed: 42, iters: STRATEGIES.len() * 2, ..Default::default() };
        let report = run_fuzz(&config);
        assert_eq!(report.iterations, config.iters);
        assert!(report.clean(), "fuzzer found disagreements: {:#?}", report.failures);
    }

    /// Shrinker self-test demanded by the acceptance criteria: inject a
    /// deliberate mutation (drop the first FD before the naive-oracle
    /// comparison) and confirm the resulting failure is caught and
    /// reduced to a tiny repro.
    #[test]
    fn sabotaged_validator_is_caught_and_shrunk() {
        let suite = CheckSuite { sabotage_drop_first_fd: true, ..Default::default() };
        let config = FuzzConfig { seed: 7, iters: STRATEGIES.len(), suite, ..Default::default() };
        let report = run_fuzz(&config);
        let f = report
            .failures
            .iter()
            .find(|f| f.invariant == "naive-fd")
            .expect("the sabotaged comparison must be detected");
        let (cols, rows) = f.shrunken;
        assert!(cols <= 6 && rows <= 20, "repro should be tiny, got {cols} cols x {rows} rows");
    }

    #[test]
    fn campaigns_are_deterministic_in_the_seed() {
        let config = FuzzConfig { seed: 9, iters: 4, ..Default::default() };
        let a = run_fuzz(&config);
        let b = run_fuzz(&config);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.failures.len(), b.failures.len());
    }
}
